"""Legacy shim so `pip install -e .` works without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables
setuptools' legacy editable-install path on environments that lack
`bdist_wheel` (e.g. offline machines).
"""

from setuptools import setup

setup()
