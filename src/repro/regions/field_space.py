"""Field spaces: the typed columns of a region.

A Legion region is a table: the index space names its rows, the field space
names its columns.  Fields have stable integer ids so the dependence oracle
can intersect field sets cheaply.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Tuple

import numpy as np

__all__ = ["Field", "FieldSpace"]

_fs_ids = itertools.count()


class Field:
    """A single named, typed column of a field space."""

    __slots__ = ("fid", "name", "dtype")

    def __init__(self, fid: int, name: str, dtype: np.dtype):
        self.fid = fid
        self.name = name
        self.dtype = dtype

    def __hash__(self) -> int:
        return hash(self.fid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Field) and other.fid == self.fid

    def __repr__(self) -> str:  # pragma: no cover
        return f"Field({self.name}:{self.dtype}, fid={self.fid})"


class FieldSpace:
    """An ordered collection of named, typed fields.

    Field ids are globally unique, so fields from different field spaces
    never collide in the dependence analysis.
    """

    _next_fid = itertools.count()

    def __init__(self, fields: Iterable[Tuple[str, object]] = (), name: str = ""):
        self.uid = next(_fs_ids)
        self.name = name or f"fspace{self.uid}"
        self._by_name: Dict[str, Field] = {}
        for fname, dtype in fields:
            self.add_field(fname, dtype)

    def add_field(self, name: str, dtype: object) -> Field:
        """Allocate a new field; names must be unique within the space."""
        if name in self._by_name:
            raise ValueError(f"duplicate field {name!r} in {self.name}")
        field = Field(next(FieldSpace._next_fid), name, np.dtype(dtype))
        self._by_name[name] = field
        return field

    def remove_field(self, name: str) -> None:
        """Deallocate a field (used by deferred-deletion tests)."""
        del self._by_name[name]

    def field(self, name: str) -> Field:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Field:
        return self._by_name[name]

    @property
    def fields(self) -> Tuple[Field, ...]:
        return tuple(self._by_name.values())

    def field_ids(self) -> FrozenSet[int]:
        return frozenset(f.fid for f in self._by_name.values())

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FieldSpace) and other.uid == self.uid

    def __repr__(self) -> str:  # pragma: no cover
        names = ", ".join(self._by_name)
        return f"FieldSpace({self.name}: {names})"
