"""n-dimensional integer points and rectangles.

These are the geometric primitives underlying Legion-style index spaces:
every structured index space is a :class:`Rect` (a dense box of integer
points), and partitions carve boxes into sub-boxes.  Rectangles use
*inclusive* bounds on both ends, matching Legion's convention, so the 1-D
rect ``Rect((0,), (3,))`` contains the four points 0, 1, 2, 3.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

__all__ = ["Point", "Rect"]


Point = Tuple[int, ...]
"""An n-dimensional integer point, represented as a tuple of ints."""


def _as_point(value: Sequence[int] | int) -> Point:
    if isinstance(value, int):
        return (value,)
    return tuple(int(v) for v in value)


@dataclass(frozen=True)
class Rect:
    """A dense n-dimensional box of integer points with inclusive bounds.

    Parameters
    ----------
    lo, hi:
        Inclusive lower and upper corners.  ``lo[d] > hi[d]`` in any
        dimension denotes the empty rectangle of that dimensionality.
    """

    lo: Point
    hi: Point

    def __init__(self, lo: Sequence[int] | int, hi: Sequence[int] | int):
        lo_p, hi_p = _as_point(lo), _as_point(hi)
        if len(lo_p) != len(hi_p):
            raise ValueError(
                f"Rect corners must have equal dimensionality: {lo_p} vs {hi_p}"
            )
        object.__setattr__(self, "lo", lo_p)
        object.__setattr__(self, "hi", hi_p)

    # -- basic geometry ----------------------------------------------------

    @property
    def dim(self) -> int:
        """Dimensionality of the rectangle."""
        return len(self.lo)

    @property
    def empty(self) -> bool:
        """True when the rectangle contains no points."""
        return any(l > h for l, h in zip(self.lo, self.hi))

    @property
    def volume(self) -> int:
        """Number of integer points contained in the rectangle."""
        if self.empty:
            return 0
        vol = 1
        for l, h in zip(self.lo, self.hi):
            vol *= h - l + 1
        return vol

    @property
    def extents(self) -> Point:
        """Per-dimension side lengths (0 for empty rects)."""
        return tuple(max(0, h - l + 1) for l, h in zip(self.lo, self.hi))

    def contains(self, point: Sequence[int] | int) -> bool:
        """True when ``point`` lies inside the rectangle."""
        p = _as_point(point)
        if len(p) != self.dim:
            return False
        return all(l <= x <= h for x, l, h in zip(p, self.lo, self.hi))

    def contains_rect(self, other: "Rect") -> bool:
        """True when every point of ``other`` lies inside ``self``."""
        if other.empty:
            return True
        if other.dim != self.dim:
            return False
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def intersection(self, other: "Rect") -> "Rect":
        """The (possibly empty) rectangle of points common to both boxes."""
        if other.dim != self.dim:
            raise ValueError("cannot intersect rects of different dimensionality")
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        return Rect(lo, hi)

    def overlaps(self, other: "Rect") -> bool:
        """True when the two rectangles share at least one point."""
        return not self.intersection(other).empty

    def union_bounds(self, other: "Rect") -> "Rect":
        """Smallest rectangle containing both boxes (a bounding box)."""
        if self.empty:
            return other
        if other.empty:
            return self
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return Rect(lo, hi)

    # -- iteration ----------------------------------------------------------

    def __iter__(self) -> Iterator[Point]:
        if self.empty:
            return iter(())
        ranges = [range(l, h + 1) for l, h in zip(self.lo, self.hi)]
        return iter(itertools.product(*ranges))

    def __len__(self) -> int:
        return self.volume

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rect(lo={self.lo}, hi={self.hi})"

    # -- slicing helpers ----------------------------------------------------

    def slice_dim(self, dim: int, lo: int, hi: int) -> "Rect":
        """Restrict dimension ``dim`` to ``[lo, hi]`` (inclusive)."""
        if not 0 <= dim < self.dim:
            raise ValueError(f"dimension {dim} out of range for {self.dim}-D rect")
        new_lo = tuple(lo if d == dim else v for d, v in enumerate(self.lo))
        new_hi = tuple(hi if d == dim else v for d, v in enumerate(self.hi))
        return Rect(new_lo, new_hi)

    def to_slices(self) -> Tuple[slice, ...]:
        """NumPy slices selecting this rect within a 0-based array."""
        return tuple(slice(l, h + 1) for l, h in zip(self.lo, self.hi))

    def translated(self, offset: Sequence[int]) -> "Rect":
        """The rectangle shifted by ``offset`` in each dimension."""
        off = _as_point(offset)
        if len(off) != self.dim:
            raise ValueError("offset dimensionality mismatch")
        return Rect(
            tuple(l + o for l, o in zip(self.lo, off)),
            tuple(h + o for h, o in zip(self.hi, off)),
        )
