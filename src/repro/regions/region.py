"""Logical regions and partitions: Legion's hierarchical data model.

A :class:`LogicalRegion` is a table (index space x field space).  Regions can
be *partitioned* into subregions, which can themselves be partitioned, so
programs build *region trees* by recursively partitioning a root region.  The
key structural property used throughout the dependence analysis (paper §4) is
that **any region in the tree is a superset of every region in its subtree**,
so a partition is a sound upper bound for the set of subregions a group task
launch touches.

Partitions carry two symbolic properties the analysis exploits:

* *disjoint* — no two subregions share a point (e.g. a tiling); aliased
  partitions (e.g. ghost partitions) may overlap.
* *complete* — the subregions cover the parent exactly.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from .field_space import FieldSpace
from .index_space import IndexSpace
from .point import Rect

__all__ = ["LogicalRegion", "Partition"]

_region_ids = itertools.count()
_partition_ids = itertools.count()


class LogicalRegion:
    """A node of a region tree: an index space crossed with a field space.

    ``parent`` is the partition this region is a subregion of (``None`` for
    the root).  ``tree_id`` identifies the whole tree; regions in different
    trees never alias.
    """

    __slots__ = ("uid", "name", "index_space", "field_space", "parent",
                 "partitions", "tree_id", "depth")

    def __init__(
        self,
        index_space: IndexSpace,
        field_space: FieldSpace,
        name: str = "",
        parent: Optional["Partition"] = None,
    ):
        self.uid = next(_region_ids)
        self.name = name or f"region{self.uid}"
        self.index_space = index_space
        self.field_space = field_space
        self.parent = parent
        self.partitions: List["Partition"] = []
        if parent is None:
            self.tree_id = self.uid
            self.depth = 0
        else:
            self.tree_id = parent.parent_region.tree_id
            self.depth = parent.parent_region.depth + 1

    # -- tree structure ------------------------------------------------------

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def root(self) -> "LogicalRegion":
        node = self
        while node.parent is not None:
            node = node.parent.parent_region
        return node

    def ancestors(self) -> Iterator["LogicalRegion"]:
        """This region followed by every ancestor up to the root."""
        node: Optional[LogicalRegion] = self
        while node is not None:
            yield node
            node = node.parent.parent_region if node.parent else None

    def is_ancestor_of(self, other: "LogicalRegion") -> bool:
        """True when ``self`` lies on ``other``'s path to the root (inclusive)."""
        return any(anc is self for anc in other.ancestors())

    # -- partitioning ---------------------------------------------------------

    def partition_by_spaces(
        self,
        subspaces: Dict[Hashable, IndexSpace],
        disjoint: Optional[bool] = None,
        complete: Optional[bool] = None,
        name: str = "",
    ) -> "Partition":
        """Partition this region into subregions with the given index spaces.

        ``disjoint``/``complete`` may be supplied when the caller knows them
        symbolically; otherwise they are computed geometrically.
        """
        part = Partition(self, subspaces, disjoint=disjoint, complete=complete,
                         name=name)
        self.partitions.append(part)
        return part

    def partition_equal(self, num_pieces: int, dim: int = 0, name: str = "") -> "Partition":
        """Disjoint, complete blockwise partition along one dimension.

        This is Legion's ``partition equal``: the index space is split into
        ``num_pieces`` contiguous, near-equal blocks.
        """
        rect = self.index_space.rect
        lo, hi = rect.lo[dim], rect.hi[dim]
        extent = hi - lo + 1
        subspaces: Dict[Hashable, IndexSpace] = {}
        for color in range(num_pieces):
            start = lo + (extent * color) // num_pieces
            stop = lo + (extent * (color + 1)) // num_pieces - 1
            sub = rect.slice_dim(dim, start, stop)
            subspaces[color] = IndexSpace(rect=sub, name=f"{self.name}.eq{color}")
        return self.partition_by_spaces(
            subspaces, disjoint=True, complete=True,
            name=name or f"{self.name}_equal{num_pieces}")

    def partition_tiles(
        self, tiles: Tuple[int, ...], name: str = ""
    ) -> "Partition":
        """Disjoint, complete n-D tiling with ``tiles[d]`` blocks along dim d.

        Colors are n-D tuples (or plain ints for 1-D).
        """
        rect = self.index_space.rect
        if len(tiles) != rect.dim:
            raise ValueError("tiles must match index-space dimensionality")
        subspaces: Dict[Hashable, IndexSpace] = {}
        for color in itertools.product(*(range(t) for t in tiles)):
            sub = rect
            for d, (c, t) in enumerate(zip(color, tiles)):
                lo, hi = rect.lo[d], rect.hi[d]
                extent = hi - lo + 1
                start = lo + (extent * c) // t
                stop = lo + (extent * (c + 1)) // t - 1
                sub = sub.slice_dim(d, start, stop)
            key: Hashable = color if len(color) > 1 else color[0]
            subspaces[key] = IndexSpace(rect=sub, name=f"{self.name}.tile{color}")
        return self.partition_by_spaces(
            subspaces, disjoint=True, complete=True,
            name=name or f"{self.name}_tiles{tiles}")

    def partition_ghost(
        self, base: "Partition", halo: int, dim: Optional[int] = None, name: str = ""
    ) -> "Partition":
        """Aliased ghost partition: each subregion of ``base`` grown by ``halo``.

        The grown boxes are clamped to this region's bounds.  Growing happens
        in every dimension unless ``dim`` is given.  The result is aliased
        (neighboring ghosts overlap) which is exactly the case that forces
        conservative cross-shard fences in the coarse analysis (paper §4.1).
        """
        bounds = self.index_space.rect
        subspaces: Dict[Hashable, IndexSpace] = {}
        for color, sub in base.subregions.items():
            r = sub.index_space.rect
            lo = list(r.lo)
            hi = list(r.hi)
            dims = range(r.dim) if dim is None else (dim,)
            for d in dims:
                lo[d] = max(bounds.lo[d], lo[d] - halo)
                hi[d] = min(bounds.hi[d], hi[d] + halo)
            subspaces[color] = IndexSpace(
                rect=Rect(tuple(lo), tuple(hi)), name=f"{self.name}.ghost{color}")
        return self.partition_by_spaces(
            subspaces, disjoint=False, complete=True,
            name=name or f"{self.name}_ghost{halo}")

    # -- identity ---------------------------------------------------------------

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LogicalRegion) and other.uid == self.uid

    def __repr__(self) -> str:  # pragma: no cover
        return f"LogicalRegion({self.name}, ispace={self.index_space.name})"


class Partition:
    """A set of (colored) subregions of a parent region.

    Partitions are first-class: group task launches name a partition plus a
    *projection function* from launch-space points to colors, and the coarse
    analysis treats the partition itself as the upper bound of everything the
    group touches.
    """

    __slots__ = ("uid", "name", "parent_region", "subregions",
                 "disjoint", "complete")

    def __init__(
        self,
        parent_region: LogicalRegion,
        subspaces: Dict[Hashable, IndexSpace],
        disjoint: Optional[bool] = None,
        complete: Optional[bool] = None,
        name: str = "",
    ):
        self.uid = next(_partition_ids)
        self.name = name or f"partition{self.uid}"
        self.parent_region = parent_region
        self.subregions: Dict[Hashable, LogicalRegion] = {}
        for color, space in subspaces.items():
            if not parent_region.index_space.bounds().contains_rect(space.bounds()):
                raise ValueError(
                    f"subspace {space.name} escapes parent {parent_region.name}")
            self.subregions[color] = LogicalRegion(
                space, parent_region.field_space,
                name=f"{self.name}[{color}]", parent=self)
        self.disjoint = self._compute_disjoint() if disjoint is None else disjoint
        self.complete = self._compute_complete() if complete is None else complete

    def _compute_disjoint(self) -> bool:
        subs = list(self.subregions.values())
        for i, a in enumerate(subs):
            for b in subs[i + 1:]:
                if a.index_space.intersects(b.index_space):
                    return False
        return True

    def _compute_complete(self) -> bool:
        total = sum(s.index_space.volume for s in self.subregions.values())
        if self.disjoint:
            return total == self.parent_region.index_space.volume
        covered = set()
        for s in self.subregions.values():
            covered |= s.index_space.point_set()
        return covered == self.parent_region.index_space.point_set()

    # -- access -----------------------------------------------------------------

    def __getitem__(self, color: Hashable) -> LogicalRegion:
        return self.subregions[color]

    def __iter__(self) -> Iterator[LogicalRegion]:
        return iter(self.subregions.values())

    def __len__(self) -> int:
        return len(self.subregions)

    @property
    def colors(self) -> Iterable[Hashable]:
        return self.subregions.keys()

    def color_of(self, region: LogicalRegion) -> Hashable:
        for color, sub in self.subregions.items():
            if sub is region:
                return color
        raise KeyError(f"{region.name} is not a subregion of {self.name}")

    def __hash__(self) -> int:
        return hash(("partition", self.uid))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Partition) and other.uid == self.uid

    def __repr__(self) -> str:  # pragma: no cover
        kind = "disjoint" if self.disjoint else "aliased"
        return f"Partition({self.name}, {kind}, |subs|={len(self.subregions)})"
