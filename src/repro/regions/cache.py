"""Memoized region-tree predicates: the analysis hot path's fast path.

The coarse and fine stages ask the same two questions over and over —
"may these regions alias?" and "does this region contain that one?" — for
a small working set of region pairs (the partitions and subregions of the
application's handful of region trees).  Both answers are *immutable* for
a given pair: region uids are never reused, a region's index space never
changes, and region trees only grow (new partitions never change the
relationship between existing nodes).  That makes an LRU keyed on
``(region uid, region uid)`` sound forever, with no invalidation protocol.

Execution Templates (Mashayekhi et al.) and DePa (Westrick et al., PPoPP
'22) both rest on the same observation: control-plane decisions repeat, so
caching them is what keeps dependence machinery within its advertised
complexity class.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .region import LogicalRegion
from .tree import may_alias

__all__ = ["PairCache", "cached_may_alias", "cached_region_contains",
           "region_contains", "clear_region_caches", "region_cache_stats",
           "register_cache_clearer"]

# Other layers keep their own uid-keyed memo tables (the analysis core's
# interned decision tables) whose soundness rests on the same "uids are
# never reused" argument.  They register a clearer here so every path
# that resets the region caches — tests, benchmarks, fresh_id_epoch's
# uid-counter rewind — resets them in the same breath.
_extra_clearers: list = []


def register_cache_clearer(fn) -> None:
    """Run ``fn`` whenever :func:`clear_region_caches` is called."""
    _extra_clearers.append(fn)


class PairCache:
    """A bounded LRU of boolean answers keyed on region-uid pairs.

    A plain dict doubles as the recency list (insertion order): hits are
    reinserted at the tail, evictions pop the head.  Bounded so pathological
    programs (millions of transient subregions) cannot grow it without
    limit; the default is far above any working set in this repo.
    """

    __slots__ = ("_data", "maxsize", "hits", "misses")

    def __init__(self, maxsize: int = 1 << 16) -> None:
        self._data: Dict[Tuple[int, int], bool] = {}
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple[int, int]):
        data = self._data
        hit = data.get(key)
        if hit is not None:
            self.hits += 1
            # Refresh recency: move to the tail of the insertion order.
            del data[key]
            data[key] = hit
        return hit

    def put(self, key: Tuple[int, int], value: bool) -> None:
        self.misses += 1
        data = self._data
        if len(data) >= self.maxsize:
            del data[next(iter(data))]
        data[key] = value

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)


_alias_cache = PairCache()
_contains_cache = PairCache()


def cached_may_alias(a: LogicalRegion, b: LogicalRegion) -> bool:
    """Memoized :func:`repro.regions.may_alias` (symmetric key)."""
    if a is b:
        return not a.index_space.empty
    key = (a.uid, b.uid) if a.uid <= b.uid else (b.uid, a.uid)
    hit = _alias_cache.get(key)
    if hit is not None:
        return hit
    result = may_alias(a, b)
    _alias_cache.put(key, result)
    return result


def region_contains(outer: LogicalRegion, inner: LogicalRegion) -> bool:
    """True when ``outer`` provably covers every point of ``inner``.

    Ancestry first (symbolic, exact by the region-tree superset property),
    then rectangle containment, then the explicit point-set fallback.
    """
    if outer.tree_id != inner.tree_id:
        return False
    if outer.is_ancestor_of(inner):
        return True
    if outer.index_space.structured and inner.index_space.structured:
        return outer.index_space.rect.contains_rect(inner.index_space.rect)
    return inner.index_space.point_set() <= outer.index_space.point_set()


def cached_region_contains(outer: LogicalRegion, inner: LogicalRegion) -> bool:
    """Memoized :func:`region_contains` (asymmetric key)."""
    if outer is inner:
        return True
    key = (outer.uid, inner.uid)
    hit = _contains_cache.get(key)
    if hit is not None:
        return hit
    result = region_contains(outer, inner)
    _contains_cache.put(key, result)
    return result


def clear_region_caches() -> None:
    """Drop both caches and every registered dependent table.

    Required for correctness only when region uids are about to be reused
    (``fresh_id_epoch``); otherwise a test/benchmark hygiene hook."""
    _alias_cache.clear()
    _contains_cache.clear()
    for fn in _extra_clearers:
        fn()


def region_cache_stats() -> Dict[str, int]:
    return {
        "alias_hits": _alias_cache.hits,
        "alias_misses": _alias_cache.misses,
        "contains_hits": _contains_cache.hits,
        "contains_misses": _contains_cache.misses,
    }
