"""Index spaces: named sets of points that name the rows of regions.

An :class:`IndexSpace` is the Legion abstraction for "a set of points".
Structured index spaces are dense rectangles; unstructured ones are explicit
point sets (used e.g. by the circuit app, whose graph partitioning is
irregular).  Index spaces are value objects with a stable identity so that
the dependence analysis can memoize intersection queries between them.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, Iterator, Optional, Sequence

from .point import Point, Rect

__all__ = ["IndexSpace"]

_ids = itertools.count()


class IndexSpace:
    """A named set of n-dimensional integer points.

    Two representations are supported:

    * *structured*: a dense :class:`Rect` (the common case; O(1) storage and
      intersection tests);
    * *unstructured*: an explicit frozenset of points.

    Index spaces compare by identity (`uid`), mirroring Legion where each
    `ispace` creation returns a fresh handle even for equal bounds.
    """

    __slots__ = ("uid", "name", "_rect", "_points", "_pset")

    def __init__(
        self,
        rect: Optional[Rect] = None,
        points: Optional[Iterable[Point]] = None,
        name: str = "",
    ):
        if (rect is None) == (points is None):
            raise ValueError("provide exactly one of rect= or points=")
        self.uid = next(_ids)
        self.name = name or f"ispace{self.uid}"
        self._rect = rect
        self._points: Optional[FrozenSet[Point]] = (
            frozenset(points) if points is not None else None
        )
        self._pset: Optional[FrozenSet[Point]] = self._points
        if self._points is not None:
            dims = {len(p) for p in self._points}
            if len(dims) > 1:
                raise ValueError("all points must share dimensionality")

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_extent(cls, *extents: int, name: str = "") -> "IndexSpace":
        """Dense 0-based index space with the given per-dimension extents."""
        if not extents:
            raise ValueError("at least one extent required")
        return cls(
            rect=Rect(tuple(0 for _ in extents), tuple(e - 1 for e in extents)),
            name=name,
        )

    @classmethod
    def line(cls, n: int, name: str = "") -> "IndexSpace":
        """1-D index space of ``n`` points 0..n-1."""
        return cls.from_extent(n, name=name)

    # -- queries --------------------------------------------------------------

    @property
    def structured(self) -> bool:
        return self._rect is not None

    @property
    def rect(self) -> Rect:
        if self._rect is None:
            raise ValueError(f"{self.name} is unstructured")
        return self._rect

    @property
    def dim(self) -> int:
        if self._rect is not None:
            return self._rect.dim
        if not self._points:
            return 0
        return len(next(iter(self._points)))

    @property
    def volume(self) -> int:
        if self._rect is not None:
            return self._rect.volume
        return len(self._points or ())

    @property
    def empty(self) -> bool:
        return self.volume == 0

    def bounds(self) -> Rect:
        """Tight bounding rectangle of the point set."""
        if self._rect is not None:
            return self._rect
        pts = self._points or frozenset()
        if not pts:
            return Rect((0,), (-1,))
        dim = len(next(iter(pts)))
        lo = tuple(min(p[d] for p in pts) for d in range(dim))
        hi = tuple(max(p[d] for p in pts) for d in range(dim))
        return Rect(lo, hi)

    def contains(self, point: Sequence[int] | int) -> bool:
        if self._rect is not None:
            return self._rect.contains(point)
        p = (point,) if isinstance(point, int) else tuple(point)
        return p in (self._points or frozenset())

    def point_set(self) -> FrozenSet[Point]:
        """The explicit point set, materialized once and cached.

        Index spaces are immutable, so the materialization (expensive for
        big rects) is safe to keep for the life of the space.
        """
        if self._pset is None:
            self._pset = frozenset(self._rect)  # type: ignore[arg-type]
        return self._pset

    def intersects(self, other: "IndexSpace") -> bool:
        """True when the two index spaces share at least one point."""
        if self.empty or other.empty:
            return False
        if self.dim != other.dim:
            return False
        if self.structured and other.structured:
            return self.rect.overlaps(other.rect)
        # Mixed / unstructured: bounding-box reject then exact check.
        if not self.bounds().overlaps(other.bounds()):
            return False
        small, large = sorted((self, other), key=lambda s: s.volume)
        return any(large.contains(p) for p in small.point_set())

    # -- set algebra -----------------------------------------------------------

    def union(self, other: "IndexSpace", name: str = "") -> "IndexSpace":
        """A new index space holding every point of either operand."""
        self._check_dim(other)
        return IndexSpace(points=self.point_set() | other.point_set(),
                          name=name or f"{self.name}|{other.name}")

    def intersection_space(self, other: "IndexSpace",
                           name: str = "") -> "IndexSpace":
        """A new index space holding the points common to both operands."""
        self._check_dim(other)
        if self.structured and other.structured:
            inter = self.rect.intersection(other.rect)
            if not inter.empty:
                return IndexSpace(rect=inter,
                                  name=name or f"{self.name}&{other.name}")
            return IndexSpace(points=[],
                              name=name or f"{self.name}&{other.name}")
        return IndexSpace(points=self.point_set() & other.point_set(),
                          name=name or f"{self.name}&{other.name}")

    def difference(self, other: "IndexSpace", name: str = "") -> "IndexSpace":
        """A new index space holding this space's points not in ``other``.

        The core of Legion's dependent-partitioning difference operator —
        e.g. ``interior = owned - boundary``.
        """
        self._check_dim(other)
        return IndexSpace(points=self.point_set() - other.point_set(),
                          name=name or f"{self.name}-{other.name}")

    def _check_dim(self, other: "IndexSpace") -> None:
        if not (self.empty or other.empty) and self.dim != other.dim:
            raise ValueError("set algebra requires equal dimensionality")

    def __iter__(self) -> Iterator[Point]:
        if self._rect is not None:
            return iter(self._rect)
        return iter(sorted(self._points or ()))

    def __len__(self) -> int:
        return self.volume

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IndexSpace) and other.uid == self.uid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._rect is not None:
            return f"IndexSpace({self.name}, rect={self._rect})"
        return f"IndexSpace({self.name}, |points|={len(self._points or ())})"
