"""Region-tree queries used by the dependence analysis.

The coarse analysis over-approximates any set of regions by their least
common ancestor in the region tree (paper §4), and the dependence oracle
needs a *may-alias* test between two regions of the same tree.  Two regions
provably do not alias when the partition at which their root paths diverge
is disjoint; otherwise we fall back to an exact geometric intersection test
on their index spaces (which is sound because our index spaces are concrete).
"""

from __future__ import annotations

from typing import Optional, Tuple

from .region import LogicalRegion, Partition

__all__ = ["lowest_common_ancestor", "divergence_partition", "may_alias",
           "upper_bound"]


def _path_to_root(region: LogicalRegion) -> Tuple[LogicalRegion, ...]:
    return tuple(region.ancestors())


def lowest_common_ancestor(
    a: LogicalRegion, b: LogicalRegion
) -> Optional[LogicalRegion]:
    """The deepest region that is an ancestor of both, or None across trees."""
    if a.tree_id != b.tree_id:
        return None
    path_a = _path_to_root(a)[::-1]
    path_b = _path_to_root(b)[::-1]
    lca: Optional[LogicalRegion] = None
    for ra, rb in zip(path_a, path_b):
        if ra is rb:
            lca = ra
        else:
            break
    return lca


def divergence_partition(
    a: LogicalRegion, b: LogicalRegion
) -> Optional[Partition]:
    """The partition at which the root paths of ``a`` and ``b`` diverge.

    Returns ``None`` when one region is an ancestor of the other, when the
    regions are in different trees, or when the paths diverge through
    *different* partitions of the LCA (in which case no partition's
    disjointness helps).
    """
    lca = lowest_common_ancestor(a, b)
    if lca is None or lca is a or lca is b:
        return None
    part_a = _child_partition_below(lca, a)
    part_b = _child_partition_below(lca, b)
    if part_a is not None and part_a is part_b:
        return part_a
    return None


def _child_partition_below(
    ancestor: LogicalRegion, descendant: LogicalRegion
) -> Optional[Partition]:
    """The partition of ``ancestor`` that ``descendant``'s path goes through."""
    node = descendant
    while node.parent is not None:
        if node.parent.parent_region is ancestor:
            return node.parent
        node = node.parent.parent_region
    return None


def may_alias(a: LogicalRegion, b: LogicalRegion) -> bool:
    """Sound may-alias test between two regions.

    Symbolic fast paths (same region, different trees, ancestor relation,
    divergence at a disjoint partition) before the exact geometric test.
    """
    if a is b:
        return True
    if a.tree_id != b.tree_id:
        return False
    lca = lowest_common_ancestor(a, b)
    if lca is a or lca is b:
        # An ancestor is a superset of every descendant, so they share points
        # unless the descendant is empty.
        return not (a.index_space.empty or b.index_space.empty)
    part = divergence_partition(a, b)
    if part is not None and part.disjoint:
        # Distinct subregions of a disjoint partition: different colors of
        # ``part`` on each path, hence provably disjoint point sets.
        return False
    return a.index_space.intersects(b.index_space)


def upper_bound(a: LogicalRegion, b: LogicalRegion) -> Optional[LogicalRegion]:
    """A region guaranteed to contain both ``a`` and ``b`` (their LCA)."""
    return lowest_common_ancestor(a, b)
