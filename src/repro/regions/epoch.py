"""Fresh resource-id epochs for differential runs.

Region, partition, index-space, field-space and field ids are allocated
from process-global counters, so two identical control programs run in the
same process produce different absolute ids — and the determinism hasher
records field ids, making the two runs' digest vectors differ even though
the programs are byte-identical.  The differential fuzz tier compares one
program across backends *within one process*, so it needs every run to
allocate from the same id origin.

:func:`fresh_id_epoch` rewinds all five counters to zero for the duration
of a ``with`` block and restores the global sequence afterwards.  The
uid-keyed region caches are cleared on entry and exit (their soundness
argument assumes uids are never reused).  Objects created inside an epoch
must not outlive it into later region analysis — the intended use is a
self-contained ``Runtime.execute`` per epoch.
"""

from __future__ import annotations

import contextlib
import itertools

from . import field_space as _fspace
from . import index_space as _ispace
from . import region as _region
from .cache import clear_region_caches

__all__ = ["fresh_id_epoch"]


@contextlib.contextmanager
def fresh_id_epoch():
    # Peeking consumes one id from each counter; the gap is harmless.
    saved = (next(_region._region_ids), next(_region._partition_ids),
             next(_ispace._ids), next(_fspace._fs_ids),
             next(_fspace.FieldSpace._next_fid))
    clear_region_caches()
    _region._region_ids = itertools.count()
    _region._partition_ids = itertools.count()
    _ispace._ids = itertools.count()
    _fspace._fs_ids = itertools.count()
    _fspace.FieldSpace._next_fid = itertools.count()
    try:
        yield
    finally:
        clear_region_caches()
        (_region._region_ids, _region._partition_ids, _ispace._ids,
         _fspace._fs_ids, _fspace.FieldSpace._next_fid) = (
            itertools.count(saved[0] + 1), itertools.count(saved[1] + 1),
            itertools.count(saved[2] + 1), itertools.count(saved[3] + 1),
            itertools.count(saved[4] + 1))
