"""Legion-style data model: points, index spaces, fields, regions, partitions.

This package is the substrate the dependence analysis operates on.  See
DESIGN.md §3 for the module map.
"""

from .cache import (PairCache, cached_may_alias, cached_region_contains,
                    clear_region_caches, region_cache_stats,
                    region_contains, register_cache_clearer)
from .dependent import (partition_by_field, partition_by_image,
                        partition_by_preimage)
from .epoch import fresh_id_epoch
from .field_space import Field, FieldSpace
from .index_space import IndexSpace
from .point import Point, Rect
from .region import LogicalRegion, Partition
from .tree import (divergence_partition, lowest_common_ancestor, may_alias,
                   upper_bound)

__all__ = [
    "partition_by_field", "partition_by_image", "partition_by_preimage",
    "Field", "FieldSpace", "IndexSpace", "Point", "Rect",
    "LogicalRegion", "Partition",
    "divergence_partition", "lowest_common_ancestor", "may_alias",
    "upper_bound",
    "PairCache", "cached_may_alias", "cached_region_contains",
    "region_contains", "clear_region_caches", "region_cache_stats",
    "register_cache_clearer",
    "fresh_id_epoch",
]
