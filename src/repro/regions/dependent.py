"""Dependent partitioning operators (Treichler et al., OOPSLA'13/'16).

The paper's data model cites Legion's dependent-partitioning sublanguage
([49, 50]): new partitions computed *from data* — a color field, or pointer
(index) fields relating two regions.  These are what real Legion programs
like the circuit simulation use to build their dynamically computed
communication structure:

* :func:`partition_by_field` — piece = the value of a color field;
* :func:`partition_by_image` — the nodes each wire piece points at
  (``image(wires_part, wire.in_ptr)``);
* :func:`partition_by_preimage` — the wires pointing into each node piece.

All three return ordinary (usually aliased) partitions of the destination
region, so everything downstream — upper bounds, fence insertion, may-alias
— works unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Optional, Sequence

from .index_space import IndexSpace
from .point import Point
from .region import LogicalRegion, Partition

__all__ = ["partition_by_field", "partition_by_image",
           "partition_by_preimage"]


def partition_by_field(region: LogicalRegion,
                       colors: Sequence[Hashable],
                       color_of: Callable[[Point], Hashable],
                       name: str = "") -> Partition:
    """Partition ``region`` by a per-point color (Legion's partition-by-field).

    ``color_of`` plays the role of the color field's contents: it must be a
    pure function of the point (in a replicated context, derived from region
    data or other control-deterministic inputs).  Points whose color is not
    in ``colors`` are dropped — matching Legion, where such rows simply land
    in no subregion.  The result is disjoint by construction.
    """
    buckets: Dict[Hashable, list] = {c: [] for c in colors}
    for p in region.index_space:
        c = color_of(p)
        if c in buckets:
            buckets[c].append(p)
    spaces = {
        c: IndexSpace(points=pts, name=f"{name or region.name}_byfield[{c}]")
        for c, pts in buckets.items()
    }
    return region.partition_by_spaces(
        spaces, disjoint=True, complete=None,
        name=name or f"{region.name}_byfield")


def partition_by_image(dest: LogicalRegion, source: Partition,
                       pointer: Callable[[Point], Iterable[Point]],
                       name: str = "") -> Partition:
    """Image partition: subregion c = the points of ``dest`` that the points
    of ``source[c]`` point at.

    ``pointer(p)`` yields the destination points point ``p`` refers to (a
    wire's endpoints, a cell's neighbor list).  Images generally overlap —
    two pieces' wires can share a node — so the result is aliased unless
    proven otherwise geometrically.
    """
    spaces: Dict[Hashable, IndexSpace] = {}
    for color, sub in source.subregions.items():
        pts = set()
        for p in sub.index_space:
            for q in pointer(p):
                q = (q,) if isinstance(q, int) else tuple(q)
                if dest.index_space.contains(q):
                    pts.add(q)
        spaces[color] = IndexSpace(
            points=pts, name=f"{name or dest.name}_image[{color}]")
    return region_partition(dest, spaces, name or f"{dest.name}_image")


def partition_by_preimage(dest: LogicalRegion, target: Partition,
                          pointer: Callable[[Point], Iterable[Point]],
                          name: str = "") -> Partition:
    """Preimage partition: subregion c = the points of ``dest`` whose
    pointers land inside ``target[c]``.

    The preimage of a disjoint target under a single-valued pointer is
    disjoint; with multi-valued pointers (a wire touching two node pieces)
    pieces may overlap, which the constructor detects geometrically.
    """
    spaces: Dict[Hashable, set] = {c: set() for c in target.colors}
    membership = {
        color: sub.index_space.point_set()
        for color, sub in target.subregions.items()
    }
    for p in dest.index_space:
        for q in pointer(p):
            q = (q,) if isinstance(q, int) else tuple(q)
            for color, pts in membership.items():
                if q in pts:
                    spaces[color].add(p)
    return region_partition(
        dest,
        {c: IndexSpace(points=pts,
                       name=f"{name or dest.name}_preimage[{c}]")
         for c, pts in spaces.items()},
        name or f"{dest.name}_preimage")


def region_partition(region: LogicalRegion,
                     spaces: Dict[Hashable, IndexSpace],
                     name: str) -> Partition:
    """Attach computed subspaces to the region, with geometric disjointness."""
    return region.partition_by_spaces(spaces, name=name)
