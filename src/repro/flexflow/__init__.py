"""FlexFlow: hybrid data/model-parallel DNN training over DCR (paper §5.3)."""

from .search import search_strategy
from .training import make_regression, reference_train_mlp, train_mlp
from .strategy import (LayerConfig, LayerSpec, Strategy,
                       data_parallel_strategy, gradient_bytes_per_gpu,
                       iteration_time)

__all__ = [
    "search_strategy",
    "make_regression", "reference_train_mlp", "train_mlp",
    "LayerConfig", "LayerSpec", "Strategy", "data_parallel_strategy",
    "gradient_bytes_per_gpu", "iteration_time",
]
