"""FlexFlow-style parallelization strategies (paper §5.3).

FlexFlow searches, per network layer, over how to parallelize that layer
across the machine.  We model the two dimensions that matter for the
paper's experiments:

* **data parallelism** (degree D): the batch is split over D replicas; each
  replica holds full layer weights, so gradients must be all-reduced across
  replicas every iteration;
* **model parallelism** (degree M): the layer's weights are split over M
  GPUs (within a node, using NVLink); each weight shard's gradient is only
  synchronized across the D = G/M data replicas, cutting gradient traffic by
  M at the price of intra-node activation exchanges.

The CANDLE MLP's 768M weights make pure data parallelism communication-
bound; FlexFlow's hybrid strategy reduces per-GPU gradient traffic ~20x
(paper §5.3), which the search below rediscovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..sim.machine import MachineSpec

__all__ = ["LayerSpec", "LayerConfig", "Strategy", "iteration_time",
           "gradient_bytes_per_gpu", "data_parallel_strategy"]

# Effective per-GPU throughput for dense layers (V100-class, mixed precision
# falling well short of peak on memory-bound MLPs).
GPU_FLOPS = 10.0e12


@dataclass(frozen=True)
class LayerSpec:
    """One network layer: enough structure to cost both parallel modes."""

    name: str
    params: int                  # weight count
    flops_per_sample: float      # forward FLOPs for one sample
    activation_size: int         # output activations per sample (elements)


@dataclass(frozen=True)
class LayerConfig:
    """Parallelization of one layer: model-parallel degree M (divides the
    GPUs of one node); data-parallel degree is ``gpus / M``."""

    model_degree: int = 1


@dataclass
class Strategy:
    configs: List[LayerConfig]

    def model_degree(self, i: int) -> int:
        return self.configs[i].model_degree

    def describe(self, layers: Sequence[LayerSpec]) -> str:
        return ", ".join(
            f"{l.name}:M{c.model_degree}" for l, c in zip(layers, self.configs))


def data_parallel_strategy(layers: Sequence[LayerSpec]) -> Strategy:
    return Strategy([LayerConfig(1) for _ in layers])


def gradient_bytes_per_gpu(layers: Sequence[LayerSpec],
                           strategy: Strategy) -> float:
    """Bytes of gradient each GPU must all-reduce per iteration."""
    return sum(4.0 * l.params / strategy.model_degree(i)
               for i, l in enumerate(layers))


def iteration_time(layers: Sequence[LayerSpec], strategy: Strategy,
                   machine: MachineSpec, batch_per_gpu: int = 64) -> float:
    """Modeled time of one training iteration under a strategy.

    Compute (fwd + 2x bwd) overlaps nothing; gradient all-reduce uses the
    ring model over the data-parallel replicas; model-parallel layers add
    intra-node activation gather/scatter on NVLink.
    """
    gpus = max(1, machine.nodes * machine.gpus_per_node)
    t = 0.0
    for i, layer in enumerate(layers):
        m_deg = strategy.model_degree(i)
        d_deg = max(1, gpus // m_deg)
        # Compute: the batch seen by one model shard group.
        samples = batch_per_gpu * m_deg      # its data replica's share
        t += 3.0 * samples * layer.flops_per_sample / m_deg / GPU_FLOPS
        # Gradient synchronization across data replicas (ring all-reduce).
        if d_deg > 1:
            gbytes = 4.0 * layer.params / m_deg
            ring = 2.0 * gbytes * (d_deg - 1) / d_deg / machine.inter_bw
            t += ring + machine.inter_lat * max(1, (d_deg - 1).bit_length())
        # Activation exchange for model parallelism (both passes): over
        # NVLink while the shards fit in one node, over the interconnect
        # when the layer spans nodes.
        if m_deg > 1:
            abytes = 4.0 * batch_per_gpu * m_deg * layer.activation_size
            bw = (machine.intra_bw if m_deg <= machine.gpus_per_node
                  else machine.inter_bw)
            lat = (machine.intra_lat if m_deg <= machine.gpus_per_node
                   else machine.inter_lat)
            t += 2.0 * abytes / bw + 2 * lat
    return t
