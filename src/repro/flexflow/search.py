"""FlexFlow's strategy search, as Markov-chain Monte Carlo (paper §5.3).

FlexFlow explores the space of per-layer parallelization configurations
with an MCMC search guided by a simulated execution cost.  This module
reproduces that loop over the :mod:`repro.flexflow.strategy` cost model:
propose a random single-layer change, accept it if it improves the modeled
iteration time (or with Metropolis probability otherwise), keep the best.

Deterministic: driven by the counter-based RNG so replicated control
programs can run the search and agree on the result (§3).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..core.rng import CounterRNG
from ..sim.machine import MachineSpec
from .strategy import (LayerConfig, LayerSpec, Strategy,
                       data_parallel_strategy, iteration_time)

__all__ = ["search_strategy"]


def _candidate_degrees(machine: MachineSpec) -> List[int]:
    """Model-parallel degrees: divisors of the node width, then node
    multiples (model parallelism may span nodes for very large layers)."""
    per_node = max(1, machine.gpus_per_node)
    out = [d for d in range(1, per_node + 1) if per_node % d == 0]
    span, gpus = per_node * 2, max(1, machine.nodes * per_node)
    while span <= min(gpus, per_node * 8):
        out.append(span)
        span *= 2
    return out


def search_strategy(layers: Sequence[LayerSpec], machine: MachineSpec,
                    batch_per_gpu: int = 64, steps: int = 2000,
                    seed: int = 17, temperature: float = 0.05
                    ) -> Tuple[Strategy, float]:
    """MCMC over per-layer model-parallel degrees; returns (best, time)."""
    rng = CounterRNG(seed)
    degrees = _candidate_degrees(machine)
    gpus = max(1, machine.nodes * machine.gpus_per_node)
    degrees = [d for d in degrees if gpus % d == 0]

    current = data_parallel_strategy(layers)
    current_t = iteration_time(layers, current, machine, batch_per_gpu)
    best, best_t = current, current_t
    for _ in range(steps):
        li = rng.randint(0, len(layers) - 1)
        new_deg = degrees[rng.randint(0, len(degrees) - 1)]
        if new_deg == current.model_degree(li):
            continue
        configs = list(current.configs)
        configs[li] = LayerConfig(new_deg)
        proposal = Strategy(configs)
        t = iteration_time(layers, proposal, machine, batch_per_gpu)
        if t < current_t:
            accept = True
        else:
            # Metropolis acceptance on relative slowdown.
            rel = (t - current_t) / max(current_t, 1e-12)
            accept = rng.random() < math.exp(-rel / temperature)
        if accept:
            current, current_t = proposal, t
            if t < best_t:
                best, best_t = proposal, t
    return best, best_t
