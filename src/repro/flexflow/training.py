"""Functional data-parallel DNN training on the replicated runtime.

`repro.apps.dnn` models training performance (Figs. 15/18); this module
executes the FlexFlow-on-Legion structure for real at mini scale: a
two-layer MLP trained by data-parallel SGD, where each tile's task computes
forward+backward on its batch shard against broadcast weights, gradient
partials land in a per-tile region, and a combining task (the functional
stand-in for the gradient all-reduce) updates the weights every next
iteration reads.  Verified bit-for-bit against a plain-NumPy trainer.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.rng import CounterRNG
from ..runtime.runtime import Context

__all__ = ["train_mlp", "reference_train_mlp", "make_regression"]


def make_regression(n: int, f: int, seed: int = 12
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic regression data with a planted nonlinear target."""
    rng = CounterRNG(seed)
    x = np.array([rng.random() - 0.5 for _ in range(n * f)]).reshape(n, f)
    w = np.array([rng.random() - 0.5 for _ in range(f)])
    y = np.tanh(x @ w) + 0.1 * (x ** 2) @ np.abs(w)
    return x, y


def _init_weights(f: int, h: int, seed: int
                  ) -> Tuple[np.ndarray, np.ndarray]:
    rng = CounterRNG(seed, stream=5)
    w1 = np.array([rng.random() - 0.5
                   for _ in range(f * h)]).reshape(f, h) * 0.5
    w2 = np.array([rng.random() - 0.5 for _ in range(h)]) * 0.5
    return w1, w2


def _fwd_bwd(x, y, w1, w2):
    """Forward + backward of the tanh MLP under MSE; returns grads, loss."""
    z = x @ w1                    # (n, h)
    a = np.tanh(z)
    pred = a @ w2                 # (n,)
    err = pred - y
    n = len(y)
    g2 = a.T @ err / n
    da = np.outer(err, w2) * (1 - a ** 2)
    g1 = x.T @ da / n
    return g1, g2, float((err ** 2).mean())


def train_mlp(ctx: Context, x_data: np.ndarray, y_data: np.ndarray,
              hidden: int = 6, epochs: int = 12, lr: float = 0.5,
              tiles: int = 4, seed: int = 12):
    """Train the MLP data-parallel over ``tiles``; returns (w1, w2, losses).
    """
    n, f = x_data.shape
    w1_0, w2_0 = _init_weights(f, hidden, seed)
    gsize = f * hidden + hidden

    dfs = ctx.create_field_space([("x", "f8")], "DataF")
    yfs = ctx.create_field_space([("y", "f8")], "LabelF")
    wfs = ctx.create_field_space([("w", "f8")], "WeightF")
    gfs = ctx.create_field_space([("g", "f8"), ("loss", "f8")], "GradF")
    xr = ctx.create_region(ctx.create_index_space((n, f)), dfs, "X")
    yr = ctx.create_region(ctx.create_index_space(n), yfs, "y")
    wr = ctx.create_region(ctx.create_index_space(gsize), wfs, "W")
    gr = ctx.create_region(ctx.create_index_space((tiles, gsize)), gfs,
                           "grads")
    x_tiles = ctx.partition_equal(xr, tiles, dim=0, name="x_tiles")
    y_tiles = ctx.partition_equal(yr, tiles, name="y_tiles")
    g_tiles = ctx.partition_equal(gr, tiles, dim=0, name="g_tiles")
    ctx.fill(gr, ["g", "loss"], 0.0)
    ctx.fill(wr, "w", 0.0)

    def init(x_arg, y_arg, w_arg, xs, ys, w1f, w2f):
        x_arg["x"].view[...] = np.array(xs).reshape(n, f)
        y_arg["y"].view[...] = np.array(ys)
        w_arg["w"].view[...] = np.concatenate(
            [np.array(w1f), np.array(w2f)])

    ctx.launch(init, [(xr, "x", "rw"), (yr, "y", "rw"), (wr, "w", "rw")],
               args=(tuple(x_data.reshape(-1)), tuple(y_data),
                     tuple(w1_0.reshape(-1)), tuple(w2_0)))

    def fwd_bwd(point, x_arg, y_arg, w_arg, g_arg):
        w_flat = w_arg["w"].view
        w1 = w_flat[:f * hidden].reshape(f, hidden)
        w2 = w_flat[f * hidden:]
        g1, g2, loss = _fwd_bwd(x_arg["x"].view, y_arg["y"].view, w1, w2)
        g_arg["g"].view[...] = np.concatenate(
            [g1.reshape(-1), g2])[None, :]
        g_arg["loss"].view[...] = loss

    def combine_update(g_arg, w_arg, step):
        grads = g_arg["g"].view            # (tiles, gsize)
        losses = g_arg["loss"].view[:, 0]
        mean_grad = grads.mean(axis=0)
        w_arg["w"].view[...] -= step * mean_grad
        return float(losses.mean())

    dom = list(range(tiles))
    losses: List[float] = []
    for _epoch in range(epochs):
        ctx.index_launch(
            fwd_bwd, dom,
            [(x_tiles, "x", "ro"), (y_tiles, "y", "ro"), (wr, "w", "ro"),
             (g_tiles, ["g", "loss"], "rw")])
        fut = ctx.launch(combine_update,
                         [(gr, ["g", "loss"], "ro"), (wr, "w", "rw")],
                         args=(lr,))
        losses.append(ctx.get_value(fut))
    return wr, losses


def reference_train_mlp(x: np.ndarray, y: np.ndarray, hidden: int = 6,
                        epochs: int = 12, lr: float = 0.5, tiles: int = 4,
                        seed: int = 12
                        ) -> Tuple[np.ndarray, List[float]]:
    """NumPy trainer with the identical tile-averaged gradient math."""
    n, f = x.shape
    w1, w2 = _init_weights(f, hidden, seed)
    w = np.concatenate([w1.reshape(-1), w2])
    bounds = [(n * t // tiles, n * (t + 1) // tiles) for t in range(tiles)]
    losses = []
    for _ in range(epochs):
        grads, tile_losses = [], []
        w1c = w[:f * hidden].reshape(f, hidden)
        w2c = w[f * hidden:]
        for lo, hi in bounds:
            g1, g2, loss = _fwd_bwd(x[lo:hi], y[lo:hi], w1c, w2c)
            grads.append(np.concatenate([g1.reshape(-1), g2]))
            tile_losses.append(loss)
        w = w - lr * np.mean(grads, axis=0)
        losses.append(float(np.mean(tile_losses)))
    return w, losses
