"""CLI: regenerate the paper's evaluation figures.

Usage::

    python -m repro.evaluation                 # list available figures
    python -m repro.evaluation 12a 21          # print selected figures
    python -m repro.evaluation --all           # everything
    python -m repro.evaluation 18 --csv out/   # CSV dump per figure
"""

from __future__ import annotations

import argparse
import csv
import os
import sys

from .figures import FIGURES


def _print_table(name: str, header, rows) -> None:
    print(f"\n=== Figure {name} — {FIGURES[name].__doc__} ===")
    print("  ".join(f"{h:>16}" for h in header))
    for row in rows:
        cells = [f"{v:16.5g}" if isinstance(v, float) else f"{v!s:>16}"
                 for v in row]
        print("  ".join(cells))


def _print_markdown(name: str, header, rows) -> None:
    print(f"\n### Figure {name} — {FIGURES[name].__doc__}\n")
    print("| " + " | ".join(str(h) for h in header) + " |")
    print("|" + "---|" * len(header))
    for row in rows:
        cells = [f"{v:.4g}" if isinstance(v, float) else str(v)
                 for v in row]
        print("| " + " | ".join(cells) + " |")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate evaluation figures of the DCR paper on the "
                    "simulated machine.")
    parser.add_argument("figures", nargs="*",
                        help=f"figure ids ({', '.join(sorted(FIGURES))})")
    parser.add_argument("--all", action="store_true",
                        help="regenerate every figure")
    parser.add_argument("--csv", metavar="DIR",
                        help="also write figure_<id>.csv files to DIR")
    parser.add_argument("--markdown", action="store_true",
                        help="emit GitHub-flavored markdown tables "
                             "(paste-ready for EXPERIMENTS.md)")
    args = parser.parse_args(argv)

    wanted = sorted(FIGURES) if args.all else args.figures
    if not wanted:
        print("available figures:", ", ".join(sorted(FIGURES)))
        print("run e.g.:  python -m repro.evaluation 12a 18 21")
        return 0
    unknown = [f for f in wanted if f not in FIGURES]
    if unknown:
        parser.error(f"unknown figure(s): {', '.join(unknown)}")

    for name in wanted:
        header, rows = FIGURES[name]()
        if args.markdown:
            _print_markdown(name, header, rows)
        else:
            _print_table(name, header, rows)
        if args.csv:
            os.makedirs(args.csv, exist_ok=True)
            path = os.path.join(args.csv, f"figure_{name}.csv")
            with open(path, "w", newline="") as fh:
                writer = csv.writer(fh)
                writer.writerow(header)
                writer.writerows(rows)
            print(f"  -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
