"""Programmatic regeneration of every evaluation figure (paper §5).

Each ``figure*`` function runs the corresponding sweep on the simulated
machine and returns ``(header, rows)``; the benchmark modules add the
shape assertions on top, and the CLI (``python -m repro.evaluation``)
prints or CSV-dumps any figure on demand.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from ..apps import (candle, circuit, htr, pennant, resnet, soleil, stencil,
                    taskbench)
from ..flexflow import data_parallel_strategy, gradient_bytes_per_gpu
from ..legate import cg_program, logreg_program
from ..models import (DaskModel, DCRModel, ExplicitModel, LegionNoCRModel,
                      SCRModel, TensorFlowModel)
from ..sim.machine import (DGX1V, LASSEN, PIZ_DAINT, QUARTZ, SIERRA, SUMMIT,
                           MachineSpec)

__all__ = ["FIGURES", "figure12a", "figure12b", "figure13a", "figure13b",
           "figure14", "figure15", "figure16", "figure17a", "figure17b",
           "figure18", "figure19", "figure20", "figure21"]

Table = Tuple[Sequence[str], List[Sequence]]

STENCIL_NODES = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]


def _stencil_like(app_module, weak: bool, per_node: bool,
                  nodes=STENCIL_NODES) -> Table:
    rows = []
    for n in nodes:
        machine = PIZ_DAINT.with_nodes(n)
        build = lambda: app_module.build_program(machine, weak=weak)
        nocr = LegionNoCRModel(machine).run(build())
        scr = SCRModel(machine).run(build())
        dcr = DCRModel(machine).run(build())
        pick = (lambda r: r.throughput_per_node) if per_node \
            else (lambda r: r.throughput)
        rows.append((n, pick(nocr), pick(scr), pick(dcr)))
    return (["nodes", "no-CR", "static-CR", "dynamic-CR"], rows)


def figure12a(nodes=STENCIL_NODES) -> Table:
    """2-D stencil weak scaling: cells/s per node."""
    return _stencil_like(stencil, weak=True, per_node=True, nodes=nodes)


def figure12b(nodes=STENCIL_NODES) -> Table:
    """2-D stencil strong scaling: total cells/s."""
    return _stencil_like(stencil, weak=False, per_node=False, nodes=nodes)


def figure13a(nodes=STENCIL_NODES) -> Table:
    """Circuit weak scaling: wires/s per node."""
    return _stencil_like(circuit, weak=True, per_node=True, nodes=nodes)


def figure13b(nodes=STENCIL_NODES) -> Table:
    """Circuit strong scaling: total wires/s."""
    return _stencil_like(circuit, weak=False, per_node=False, nodes=nodes)


def figure14(nodes=(1, 2, 4, 8, 16, 32)) -> Table:
    """Pennant weak scaling vs. MPI: iterations/s."""
    rows = []
    for n in nodes:
        machine = DGX1V.with_nodes(n)
        cpu = ExplicitModel(machine, label="mpi-cpu").run(
            pennant.build_program(machine, cpu=True))
        cuda = ExplicitModel(machine, label="mpi-cuda",
                             intra_via_host=True).run(
            pennant.build_program(machine))
        gpudirect = ExplicitModel(machine.with_gpudirect(True),
                                  label="mpi-gpudirect").run(
            pennant.build_program(machine))
        nocr = LegionNoCRModel(machine).run(pennant.build_program(machine))
        dcr = DCRModel(machine).run(pennant.build_program(machine))
        rows.append((n, 8 * n, cpu.throughput, cuda.throughput,
                     gpudirect.throughput, nocr.throughput, dcr.throughput))
    return (["nodes", "gpus", "mpi-cpu", "mpi-cuda", "mpi-gpudirect",
             "legion-nocr", "legion-dcr"], rows)


def _summit_for(gpus: int) -> MachineSpec:
    if gpus < SUMMIT.gpus_per_node:
        return dataclasses.replace(SUMMIT, nodes=1, gpus_per_node=gpus)
    return SUMMIT.with_nodes(gpus // SUMMIT.gpus_per_node)


def figure15(gpu_points=(1, 3, 6, 12, 24, 48, 96, 192, 384, 768)) -> Table:
    """ResNet-50 per-epoch training time (minutes)."""
    rows = []
    for gpus in gpu_points:
        m = _summit_for(gpus)
        iters = resnet.EPOCH_ITERATIONS(gpus)
        minutes = lambda r: r.iteration_time * iters / 60.0
        tf = TensorFlowModel(m).run(resnet.build_program(m))
        nocr = LegionNoCRModel(m).run(resnet.build_program(m))
        dcr = DCRModel(m).run(resnet.build_program(m))
        rows.append((gpus, minutes(tf), minutes(nocr), minutes(dcr)))
    return (["gpus", "tensorflow", "flexflow-nocr", "flexflow-dcr"], rows)


def figure16(gpu_points=(4, 8, 16, 32, 64, 128, 256, 512, 1024)) -> Table:
    """Soleil-X weak scaling: throughput/node and efficiency."""
    rows = []
    base = None
    for gpus in gpu_points:
        m = SIERRA.with_nodes(gpus // SIERRA.gpus_per_node)
        r = DCRModel(m).run(soleil.build_program(m))
        tpn = r.throughput_per_node
        base = base if base is not None else tpn
        rows.append((gpus, tpn / 1e6, tpn / base))
    return (["gpus", "Mcells/s/node", "efficiency"], rows)


def figure17a(node_points=(1, 2, 4, 8, 16, 32, 64, 128, 256)) -> Table:
    """HTR weak scaling on Quartz: parallel efficiency."""
    rows, base = [], None
    for n in node_points:
        m = QUARTZ.with_nodes(n)
        r = DCRModel(m).run(htr.build_program(m, gpu=False))
        tpn = r.throughput_per_node
        base = base if base is not None else tpn
        rows.append((36 * n, tpn / base))
    return (["cores", "efficiency"], rows)


def figure17b(node_points=(1, 2, 4, 8, 16, 32, 64, 128)) -> Table:
    """HTR weak scaling on Lassen: parallel efficiency."""
    rows, base = [], None
    for n in node_points:
        m = LASSEN.with_nodes(n)
        r = DCRModel(m).run(htr.build_program(m, gpu=True))
        tpn = r.throughput_per_node
        base = base if base is not None else tpn
        rows.append((4 * n, tpn / base))
    return (["gpus", "efficiency"], rows)


def figure18(gpu_points=(6, 12, 24, 48, 96, 192, 384, 768)) -> Table:
    """CANDLE per-epoch training time (hours), TF vs. FlexFlow hybrid."""
    layers = candle.candle_layers()
    dp_bytes = gradient_bytes_per_gpu(layers, data_parallel_strategy(layers))
    rows = []
    for gpus in gpu_points:
        m = SUMMIT.with_nodes(max(1, gpus // SUMMIT.gpus_per_node))
        iters = candle.EPOCH_ITERATIONS(gpus)
        hours = lambda r: r.iteration_time * iters / 3600.0
        tf = TensorFlowModel(m).run(candle.build_program(m, hybrid=False))
        prog = candle.build_program(m, hybrid=True)
        ff = DCRModel(m).run(prog)
        rows.append((gpus, hours(tf), hours(ff), hours(tf) / hours(ff),
                     dp_bytes / prog.gradient_bytes_per_gpu))
    return (["gpus", "tensorflow", "flexflow-dcr", "speedup",
             "comm-reduction"], rows)


def socket_machine(sockets: int) -> MachineSpec:
    """The Fig. 19/20 cluster viewed as sockets of 20 cores / 1 GPU."""
    return MachineSpec("dgx-sockets", nodes=sockets, cpus_per_node=20,
                       gpus_per_node=1, intra_bw=150e9, inter_bw=12.5e9)


def _legate_sweep(builder, sockets) -> Table:
    rows = []
    for s in sockets:
        m = socket_machine(s)
        cpu = DCRModel(m).run(builder(m, gpu=False))
        gpu = DCRModel(m).run(builder(m, gpu=True))
        dask = DaskModel(m).run(builder(m, gpu=False, chunks_per_socket=1))
        rows.append((s, 20 * s, dask.throughput, cpu.throughput,
                     gpu.throughput))
    return (["sockets", "cores", "dask-cpu", "legate-dcr-cpu",
             "legate-dcr-gpu"], rows)


def figure19(sockets=(1, 2, 4, 8, 16, 32, 64, 128, 256)) -> Table:
    """Legate logistic regression weak scaling: iterations/s."""
    return _legate_sweep(logreg_program, sockets)


def figure20(sockets=(1, 2, 4, 8, 16, 32, 64, 128, 256)) -> Table:
    """Legate preconditioned CG weak scaling: iterations/s."""
    return _legate_sweep(cg_program, sockets)


def figure21(node_points=(1, 2, 4, 8, 16, 32, 64, 128)) -> Table:
    """METG(50%) in milliseconds across {trace} x {safe}."""
    rows = []
    for n in node_points:
        m = MachineSpec("metg-cluster", nodes=n, cpus_per_node=1,
                        gpus_per_node=0)
        vals = {
            (tr, safe): taskbench.metg(m, tracing=tr, safe=safe)
            for tr in (False, True) for safe in (False, True)
        }
        rows.append((n,
                     vals[(False, False)] * 1e3, vals[(False, True)] * 1e3,
                     vals[(True, False)] * 1e3, vals[(True, True)] * 1e3))
    return (["nodes", "notrace/nosafe", "notrace/safe", "trace/nosafe",
             "trace/safe"], rows)


def figure21p(node_points=(4, 16, 64),
              patterns=("trivial", "no_comm", "stencil_1d", "fft", "tree",
                        "spread")) -> Table:
    """Extension: METG(50%) by Task Bench dependence pattern (ms, traced)."""
    rows = []
    for n in node_points:
        m = MachineSpec("metg-cluster", nodes=n, cpus_per_node=1,
                        gpus_per_node=0)
        row = [n]
        for pattern in patterns:
            row.append(taskbench.metg(m, tracing=True, safe=True,
                                      pattern=pattern) * 1e3)
        rows.append(tuple(row))
    return (["nodes", *patterns], rows)


FIGURES = {
    "12a": figure12a, "12b": figure12b, "13a": figure13a, "13b": figure13b,
    "14": figure14, "15": figure15, "16": figure16, "17a": figure17a,
    "17b": figure17b, "18": figure18, "19": figure19, "20": figure20,
    "21": figure21, "21p": figure21p,
}
