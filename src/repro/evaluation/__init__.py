"""Evaluation harness: regenerate all figures of paper §5 programmatically.

``python -m repro.evaluation --all`` prints every figure's series; the
``benchmarks/`` pytest modules wrap the same sweeps with shape assertions.
"""

from .figures import FIGURES

__all__ = ["FIGURES"]
