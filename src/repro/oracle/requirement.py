"""Region requirements: (region, fields, privilege) triples.

A task launch carries one :class:`RegionRequirement` per region argument —
the complete statement of what data the task touches and how.  The oracle
compares requirement pairs; everything above it (group launches, the coarse
analysis) builds on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

from ..regions import Field, LogicalRegion
from .privileges import Privilege

__all__ = ["RegionRequirement"]


@dataclass(frozen=True)
class RegionRequirement:
    """What one task argument touches: a region, a field set, a privilege."""

    region: LogicalRegion
    fields: FrozenSet[Field]
    privilege: Privilege

    def __init__(self, region: LogicalRegion, fields: Iterable[Field] | Field,
                 privilege: Privilege):
        if isinstance(fields, Field):
            fields = (fields,)
        fset = frozenset(fields)
        if not fset:
            raise ValueError("a region requirement must name at least one field")
        for f in fset:
            if f not in region.field_space.fields:
                raise ValueError(
                    f"field {f.name} is not part of {region.name}'s field space")
        object.__setattr__(self, "region", region)
        object.__setattr__(self, "fields", fset)
        object.__setattr__(self, "privilege", privilege)
        object.__setattr__(self, "_fids", frozenset(f.fid for f in fset))
        # Requirements are hashed on every epoch-membership insert; the
        # value hash (identical to the dataclass-generated one) is
        # precomputed since all three fields are immutable.
        object.__setattr__(self, "_hash", hash((region, fset, privilege)))

    def field_ids(self) -> FrozenSet[int]:
        return self._fids

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover
        names = ",".join(sorted(f.name for f in self.fields))
        return f"Req({self.privilege!r} {self.region.name}.{{{names}}})"
