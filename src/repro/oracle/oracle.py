"""The pairwise dependence oracle (paper §4.1, final paragraph).

Two task calls t1(r1) and t2(r2) depend on each other exactly when, for some
pair of their region requirements:

1. the regions share at least one index point (checked symbolically via the
   region tree, falling back to geometry — :func:`repro.regions.may_alias`);
2. the requirements access at least one field in common; and
3. the privileges conflict (at least one writes, or they reduce with
   different operators).

This is the standard Legion dynamic dependence analysis; DCR reuses it
unmodified, both in the sequential semantics (the model's "oracle") and in
the fine analysis stage.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..regions import cached_may_alias, may_alias
from .requirement import RegionRequirement

__all__ = ["requirements_conflict", "requirements_conflict_uncached",
           "tasks_interfere", "DependenceOracle"]


def requirements_conflict(a: RegionRequirement, b: RegionRequirement) -> bool:
    """True when two region requirements must be ordered.

    The privilege test hits the conflict table, the field test compares
    precomputed fid sets, and the alias test goes through the region-pair
    LRU — each leg is memoized because the fine stage asks this question
    once per (point, epoch entry) pair on the hot path.
    """
    if not a.privilege.conflicts_with(b.privilege):
        return False
    if not (a.field_ids() & b.field_ids()):
        return False
    return cached_may_alias(a.region, b.region)


def requirements_conflict_uncached(a: RegionRequirement,
                                   b: RegionRequirement) -> bool:
    """The same predicate with no memoization anywhere on the path.

    Kept as the reference the differential tests compare the indexed
    analysis against (tests/helpers.py).
    """
    if not a.privilege._conflicts_uncached(b.privilege):
        return False
    if not (frozenset(f.fid for f in a.fields)
            & frozenset(f.fid for f in b.fields)):
        return False
    return may_alias(a.region, b.region)


def tasks_interfere(
    reqs_a: Sequence[RegionRequirement], reqs_b: Sequence[RegionRequirement]
) -> bool:
    """True when any requirement pair across the two tasks conflicts."""
    return any(
        requirements_conflict(ra, rb) for ra in reqs_a for rb in reqs_b
    )


class DependenceOracle:
    """Memoizing wrapper: the ``*`` / ``⇒`` relation of the formal model.

    The model of §2 assumes an oracle answering "are t1 and t2 independent?".
    Tasks are identified by objects exposing ``.requirements``; results are
    cached per unordered pair, since interference is symmetric.
    """

    def __init__(self) -> None:
        self._cache: dict = {}
        self.queries = 0          # total oracle consultations (incl. cached)
        self.misses = 0           # actual pairwise requirement scans

    def interfere(self, task_a, task_b) -> bool:
        """Symmetric interference test with memoization."""
        self.queries += 1
        key = (id(task_a), id(task_b)) if id(task_a) <= id(task_b) \
            else (id(task_b), id(task_a))
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        self.misses += 1
        result = tasks_interfere(task_a.requirements, task_b.requirements)
        self._cache[key] = result
        return result

    def independent(self, task_a, task_b) -> bool:
        """The ``t1 * t2`` relation: no ordering needed."""
        return not self.interfere(task_a, task_b)

    def depends(self, earlier, later) -> bool:
        """The ``earlier ⇒ later`` relation, given program order."""
        return self.interfere(earlier, later)
