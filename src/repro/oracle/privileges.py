"""Access privileges on region arguments.

Legion tasks declare, per region argument, what they may do with each field.
The dependence oracle only needs the classic read/write/reduce lattice:

* two readers never conflict;
* two reducers with the *same* reduction operator never conflict (their
  updates commute);
* everything else involving a writer conflicts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["Privilege", "PrivilegeKind", "READ_ONLY", "READ_WRITE",
           "WRITE_DISCARD", "reduce_priv"]


class PrivilegeKind(enum.Enum):
    """The four Legion privilege kinds."""

    READ_ONLY = "ro"
    READ_WRITE = "rw"
    WRITE_DISCARD = "wd"
    REDUCE = "red"


@dataclass(frozen=True)
class Privilege:
    """A privilege kind, plus the reduction operator name for REDUCE."""

    kind: PrivilegeKind
    redop: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is PrivilegeKind.REDUCE and not self.redop:
            raise ValueError("REDUCE privilege requires a reduction operator")
        if self.kind is not PrivilegeKind.REDUCE and self.redop:
            raise ValueError("only REDUCE privileges carry a reduction operator")

    @property
    def reads(self) -> bool:
        return self.kind in (PrivilegeKind.READ_ONLY, PrivilegeKind.READ_WRITE)

    @property
    def writes(self) -> bool:
        return self.kind in (PrivilegeKind.READ_WRITE,
                             PrivilegeKind.WRITE_DISCARD)

    @property
    def is_reduce(self) -> bool:
        return self.kind is PrivilegeKind.REDUCE

    def conflicts_with(self, other: "Privilege") -> bool:
        """True when two accesses to the *same data* must be ordered.

        Answers come from a table keyed on the (tiny) set of distinct
        privilege values a program uses — the epoch scans ask this for
        every entry pair, so even the enum comparisons are worth skipping.
        """
        key = (self, other)
        hit = _CONFLICT_TABLE.get(key)
        if hit is None:
            hit = self._conflicts_uncached(other)
            _CONFLICT_TABLE[key] = hit
        return hit

    def _conflicts_uncached(self, other: "Privilege") -> bool:
        if self.kind is PrivilegeKind.READ_ONLY and \
                other.kind is PrivilegeKind.READ_ONLY:
            return False
        if self.is_reduce and other.is_reduce:
            return self.redop != other.redop
        return True

    def __repr__(self) -> str:  # pragma: no cover
        if self.is_reduce:
            return f"Privilege(REDUCE<{self.redop}>)"
        return f"Privilege({self.kind.name})"


# The privilege-conflict table: populated lazily, one entry per ordered
# pair of distinct privilege values (a handful in any real program).
_CONFLICT_TABLE: dict = {}

READ_ONLY = Privilege(PrivilegeKind.READ_ONLY)
READ_WRITE = Privilege(PrivilegeKind.READ_WRITE)
WRITE_DISCARD = Privilege(PrivilegeKind.WRITE_DISCARD)


def reduce_priv(redop: str) -> Privilege:
    """Reduction privilege with the named commutative operator (e.g. '+')."""
    return Privilege(PrivilegeKind.REDUCE, redop)
