"""Dependence oracle: privileges, region requirements, pairwise tests."""

from .oracle import (DependenceOracle, requirements_conflict,
                     requirements_conflict_uncached, tasks_interfere)
from .privileges import (READ_ONLY, READ_WRITE, WRITE_DISCARD, Privilege,
                         PrivilegeKind, reduce_priv)
from .requirement import RegionRequirement

__all__ = [
    "DependenceOracle", "requirements_conflict",
    "requirements_conflict_uncached", "tasks_interfere",
    "READ_ONLY", "READ_WRITE", "WRITE_DISCARD", "Privilege", "PrivilegeKind",
    "reduce_priv", "RegionRequirement",
]
