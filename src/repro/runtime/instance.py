"""Physical-instance tracking: the data movement a run implies.

Legion's physical analysis (the lower half of the fine stage, Fig. 9's
``make_valid_region``) maintains *valid copies* of each field per memory
and issues copies when a task reads data its node does not hold.  The
functional layer executes against one authoritative store, so this module
reconstructs the movement after the fact: it replays the recorded point
tasks in program order through a directory-based validity protocol
(MESI-like, per point per field) and reports every transfer a distributed
execution would have performed.

Used by tests to pin down communication volumes exactly — e.g. a row-tiled
2-D stencil must move exactly its ghost rows per step — and by the
analysis report for observability.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..core.operation import PointTask
from ..runtime.runtime import Runtime

__all__ = ["Transfer", "MovementReport", "track_movement"]


@dataclass(frozen=True)
class Transfer:
    """One point-to-point copy of one field's data."""

    field_name: str
    src_node: int
    dst_node: int
    points: int
    nbytes: int


@dataclass
class MovementReport:
    """All transfers a distributed execution of the run would perform."""

    transfers: List[Transfer] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """Bytes moved across all transfers."""
        return sum(t.nbytes for t in self.transfers)

    @property
    def total_points_moved(self) -> int:
        """Field-points moved across all transfers."""
        return sum(t.points for t in self.transfers)

    def bytes_by_field(self) -> Dict[str, int]:
        """Bytes moved, broken down by field name."""
        out: Dict[str, int] = defaultdict(int)
        for t in self.transfers:
            out[t.field_name] += t.nbytes
        return dict(out)

    def bytes_between(self, src: int, dst: int) -> int:
        """Bytes moved from node ``src`` to node ``dst``."""
        return sum(t.nbytes for t in self.transfers
                   if t.src_node == src and t.dst_node == dst)


def _node_of(task: PointTask, num_nodes: int) -> int:
    """Execution placement: the blocked mapping the models use (a point's
    shard doubles as its node for the functional layer)."""
    return task.shard % max(1, num_nodes)


def track_movement(runtime: Runtime, num_nodes: int = 0) -> MovementReport:
    """Replay a finished run through the validity protocol.

    ``num_nodes`` defaults to the shard count (one shard per node, the
    paper's usual configuration).
    """
    num_nodes = num_nodes or runtime.num_shards
    report = MovementReport()
    # Directory: (tree, fid, point) -> set of nodes holding a valid copy.
    valid: Dict[Tuple[int, int, Tuple[int, ...]], Set[int]] = {}

    tasks = sorted(runtime.pipeline.fine_result.graph.tasks,
                   key=lambda t: (t.op.seq, str(t.point)))
    for task in tasks:
        node = _node_of(task, num_nodes)
        for req in task.requirements:
            tree = req.region.tree_id
            points = sorted(req.region.index_space.point_set())
            for f in sorted(req.fields, key=lambda f: f.fid):
                itemsize = f.dtype.itemsize
                if req.privilege.reads:
                    # Pull every point not valid here, grouped by source.
                    pulls: Dict[int, int] = defaultdict(int)
                    for p in points:
                        key = (tree, f.fid, p)
                        holders = valid.get(key)
                        if holders is None:
                            # Never written: fills/attaches initialize
                            # everywhere; treat as valid on all nodes.
                            continue
                        if node not in holders:
                            src = min(holders)
                            pulls[src] += 1
                            holders.add(node)
                    for src, count in sorted(pulls.items()):
                        report.transfers.append(Transfer(
                            f.name, src, node, count, count * itemsize))
                if req.privilege.writes or req.privilege.is_reduce:
                    for p in points:
                        valid[(tree, f.fid, p)] = {node}
    return report
