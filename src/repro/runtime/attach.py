"""Attach/detach: tying external resources to regions (paper §4.3).

Attach operations associate external memory (a NumPy array handed in by
other code) or files (``.npy`` here, HDF5 in Legion) with a region; detach
flushes updates back and severs the association.  Under DCR these are
sharded like any other operation: a plain attach/detach is performed by a
single owner shard, while the *group* variants attach one file per
subregion of a partition, modeling parallel file I/O.

All functions are control-deterministic API calls (hashed), and detach may
be issued from a finalizer via :meth:`Context.finalizer`, exercising the
deferred-operation consensus.
"""

from __future__ import annotations

import os
from typing import Callable, Hashable

import numpy as np

from ..core import CoarseRequirement, Operation
from ..oracle import READ_ONLY, READ_WRITE
from ..regions import LogicalRegion, Partition
from .runtime import Context

__all__ = ["attach_array", "detach_array", "attach_file", "detach_file",
           "attach_file_group", "detach_file_group"]


def _issue(ctx: Context, kind: str, region: LogicalRegion, field_name: str,
           writes_region: bool) -> None:
    f = region.field_space[field_name]
    priv = READ_WRITE if writes_region else READ_ONLY
    op = Operation(kind, [CoarseRequirement(region, frozenset([f]), priv)],
                   owner_shard=ctx.runtime._effective_owner(0),
                   name=f"{kind}({region.name}.{field_name})")
    if ctx.is_driver:
        ctx.runtime.pipeline.analyze(op)


def attach_array(ctx: Context, region: LogicalRegion, field_name: str,
                 array: np.ndarray) -> None:
    """Associate an external allocation with ``region.field``: copy it in.

    Only the *shape* of the attachment is control (and hashed); the array
    contents are data — the driver may already have mutated them through an
    earlier attach by the time later shards replay this call.
    """
    ctx._record("attach_array", region, field_name,
                list(array.shape), str(array.dtype))
    _issue(ctx, "attach", region, field_name, writes_region=True)
    if ctx.is_driver:
        f = region.field_space[field_name]
        dst = ctx.runtime.store.raw(region.tree_id, f)
        rect = region.index_space.rect
        dst[rect.to_slices()] = np.asarray(array).reshape(rect.extents)


def detach_array(ctx: Context, region: LogicalRegion, field_name: str,
                 array: np.ndarray) -> None:
    """Flush the region's contents back into the external allocation."""
    ctx._record("detach_array", region, field_name)
    _issue(ctx, "detach", region, field_name, writes_region=False)
    if ctx.is_driver:
        f = region.field_space[field_name]
        src = ctx.runtime.store.raw(region.tree_id, f)
        rect = region.index_space.rect
        np.copyto(array.reshape(rect.extents), src[rect.to_slices()])


def attach_file(ctx: Context, region: LogicalRegion, field_name: str,
                path: str) -> None:
    """Read a ``.npy`` file into the region; performed by one owner shard."""
    ctx._record("attach_file", region, field_name, path)
    _issue(ctx, "attach", region, field_name, writes_region=True)
    if ctx.is_driver:
        data = np.load(path)
        f = region.field_space[field_name]
        dst = ctx.runtime.store.raw(region.tree_id, f)
        rect = region.index_space.rect
        dst[rect.to_slices()] = data.reshape(rect.extents)


def detach_file(ctx: Context, region: LogicalRegion, field_name: str,
                path: str) -> None:
    """Write the region's contents to a ``.npy`` file and detach."""
    ctx._record("detach_file", region, field_name, path)
    _issue(ctx, "detach", region, field_name, writes_region=False)
    if ctx.is_driver:
        f = region.field_space[field_name]
        src = ctx.runtime.store.raw(region.tree_id, f)
        rect = region.index_space.rect
        np.save(path, src[rect.to_slices()])


def attach_file_group(ctx: Context, partition: Partition, field_name: str,
                      path_of: Callable[[Hashable], str]) -> None:
    """Parallel file attach: one file per subregion, sharded like a group op."""
    colors = sorted(partition.colors, key=str)
    ctx._record("attach_file_group", partition, field_name,
                [path_of(c) for c in colors])
    for color in colors:
        sub = partition[color]
        _issue(ctx, "attach", sub, field_name, writes_region=True)
        if ctx.is_driver:
            data = np.load(path_of(color))
            f = sub.field_space[field_name]
            dst = ctx.runtime.store.raw(sub.tree_id, f)
            rect = sub.index_space.rect
            dst[rect.to_slices()] = data.reshape(rect.extents)


def detach_file_group(ctx: Context, partition: Partition, field_name: str,
                      path_of: Callable[[Hashable], str]) -> None:
    """Parallel file detach: flush one file per subregion."""
    colors = sorted(partition.colors, key=str)
    ctx._record("detach_file_group", partition, field_name,
                [path_of(c) for c in colors])
    for color in colors:
        sub = partition[color]
        _issue(ctx, "detach", sub, field_name, writes_region=False)
        if ctx.is_driver:
            f = sub.field_space[field_name]
            src = ctx.runtime.store.raw(sub.tree_id, f)
            rect = sub.index_space.rect
            os.makedirs(os.path.dirname(path_of(color)) or ".", exist_ok=True)
            np.save(path_of(color), src[rect.to_slices()])
