"""Futures: deferred task return values.

In the replicated runtime all shards receive the *same* future object for
the same launch (resources are interned by creation order), so reading a
future's value is control deterministic by construction.  ``is_ready`` is
the one timing-dependent query (paper §3, Fig. 5); the runtime routes it
through a *timing oracle* so tests can simulate shard-dependent timing and
demonstrate the determinism checker catching the violation.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Hashable, Optional

__all__ = ["Future", "FutureMap"]

_future_ids = itertools.count()


class Future:
    """A handle for a value a task will produce."""

    __slots__ = ("uid", "_value", "_resolved", "_timing_oracle")

    def __init__(self, timing_oracle: Optional[Callable[["Future"], bool]] = None):
        self.uid = next(_future_ids)
        self._value: Any = None
        self._resolved = False
        self._timing_oracle = timing_oracle

    def resolve(self, value: Any) -> None:
        """Install the producing task's value."""
        self._value = value
        self._resolved = True

    def get(self) -> Any:
        """Block for (here: return) the value; identical on every shard."""
        if not self._resolved:
            raise RuntimeError("future read before its producing task ran")
        return self._value

    def is_ready(self) -> bool:
        """Timing-dependent readiness probe.

        **Branching on this value is a control-determinism hazard** (Fig. 5)
        unless every shard observes the same answer.  The default oracle
        reports the true resolution state (deterministic in this synchronous
        runtime); tests install per-shard oracles to model real timing skew.
        """
        if self._timing_oracle is not None:
            return self._timing_oracle(self)
        return self._resolved

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Future) and other.uid == self.uid


class FutureMap:
    """One future per point of an index launch."""

    __slots__ = ("uid", "_futures")

    def __init__(self, futures: Dict[Hashable, Future]):
        self.uid = next(_future_ids)
        self._futures = dict(futures)

    def __getitem__(self, point: Hashable) -> Future:
        return self._futures[point]

    def get_all(self) -> Dict[Hashable, Any]:
        """All point values, keyed by launch point."""
        return {p: f.get() for p, f in self._futures.items()}

    def reduce(self, op: Callable[[Any, Any], Any]) -> Any:
        """Combine all point values in deterministic (sorted-point) order."""
        items = [self._futures[p].get() for p in sorted(self._futures)]
        if not items:
            raise ValueError("empty future map")
        acc = items[0]
        for v in items[1:]:
            acc = op(acc, v)
        return acc

    def __len__(self) -> int:
        return len(self._futures)

    def __iter__(self):
        return iter(sorted(self._futures))
