"""Nested task launches with privilege subsumption.

The paper's model (§2) replicates a top-level task, but the implementation
allows any task to launch (optionally replicated) subtasks of its own.  The
functional runtime supports the inner-task idiom: a task body that asks for
a :class:`TaskContext` may launch child tasks over *subregions of its own
privileges*.  Legion's safety rule applies and is enforced here:

    a child's region requirement must be **subsumed** by one of the
    parent's — contained region, subset of fields, and no stronger
    privilege —

which is what makes the child analysis locally scopeable (it can never
introduce a dependence the parent's requirement did not already cover).
Children execute eagerly in program order within the parent, a legal
schedule of the parent-scoped analysis.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

from ..oracle import Privilege, RegionRequirement
from ..regions import LogicalRegion, Partition
from .runtime import Context, PRIVILEGES, RegionArg
from .store import PrivilegeError

__all__ = ["TaskContext", "launch_with_context"]


def _privilege(spec) -> Privilege:
    if isinstance(spec, Privilege):
        return spec
    if spec in PRIVILEGES:
        return PRIVILEGES[spec]
    from ..oracle import reduce_priv
    if isinstance(spec, str) and spec.startswith("red"):
        return reduce_priv(spec[len("red"):].strip("<>") or "+")
    raise ValueError(f"unknown privilege spec {spec!r}")


def _region_contained(outer: LogicalRegion, inner: LogicalRegion) -> bool:
    if outer.tree_id != inner.tree_id:
        return False
    if outer.is_ancestor_of(inner):
        return True
    if outer.index_space.structured and inner.index_space.structured:
        return outer.index_space.rect.contains_rect(inner.index_space.rect)
    return inner.index_space.point_set() <= outer.index_space.point_set()


def _privilege_subsumes(parent: Privilege, child: Privilege) -> bool:
    """May a task holding ``parent`` grant ``child`` to a subtask?"""
    if parent.writes:
        return True                       # RW/WD grant anything
    if parent.is_reduce:
        return child.is_reduce and child.redop == parent.redop
    # Read-only parents grant only reads.
    return not child.writes and not child.is_reduce


class TaskContext:
    """What a task body uses to launch children within its privileges."""

    def __init__(self, ctx: Context, parent_reqs: Sequence[RegionRequirement],
                 parent_name: str):
        self._ctx = ctx
        self._parent_reqs = tuple(parent_reqs)
        self._parent_name = parent_name
        self.children_launched = 0

    # -- subsumption ---------------------------------------------------------

    def _check_subsumed(self, region: LogicalRegion, fields, priv: Privilege
                        ) -> None:
        for parent in self._parent_reqs:
            if not _region_contained(parent.region, region):
                continue
            if not set(fields) <= parent.fields:
                continue
            if _privilege_subsumes(parent.privilege, priv):
                return
        raise PrivilegeError(
            f"child launch in task {self._parent_name!r} requests "
            f"{priv!r} on {region.name} which no parent requirement "
            f"subsumes")

    # -- child launches -----------------------------------------------------------

    def launch(self, fn: Callable[..., Any], reqs: Sequence[Tuple],
               args: Sequence[Any] = ()) -> Any:
        """Launch one child task inline; returns its value."""
        store = self._ctx.runtime.store
        child_reqs: List[RegionRequirement] = []
        for spec in reqs:
            region, fields, priv = spec[0], spec[1], _privilege(spec[2])
            names = [fields] if isinstance(fields, str) else sorted(fields)
            fobjs = frozenset(region.field_space[n] for n in names)
            self._check_subsumed(region, fobjs, priv)
            child_reqs.append(RegionRequirement(region, fobjs, priv))
        self.children_launched += 1
        self._ctx.runtime.executed_points += 1
        region_args = [RegionArg(store, r) for r in child_reqs]
        return fn(*region_args, *args)

    def index_launch(self, fn: Callable[..., Any],
                     domain: Sequence, reqs: Sequence[Tuple],
                     args: Sequence[Any] = ()) -> List[Any]:
        """Launch a child group over subregions; returns per-point values."""
        out = []
        for point in domain:
            point_reqs = []
            for spec in reqs:
                target = spec[0]
                region = target[point] if isinstance(target, Partition) \
                    else target
                point_reqs.append((region, spec[1], spec[2]))
            out.append(self.launch(lambda *a, _p=point: fn(_p, *a),
                                   point_reqs, args))
        return out


def launch_with_context(ctx: Context, fn: Callable[..., Any],
                        reqs: Sequence[Tuple], args: Sequence[Any] = (),
                        **kwargs) -> Any:
    """Launch a task whose body receives a :class:`TaskContext` first.

    The body signature becomes ``fn(task_ctx, *region_args, *args)`` (or
    with the launch point after ``task_ctx`` for index launches).
    """
    def wrapper(*call_args):
        # The runtime passes region args then scalars; rebuild the child
        # context from the outer task's requirements.
        n_regions = len(reqs)
        region_args = call_args[:n_regions]
        rest = call_args[n_regions:]
        parent_reqs = [ra.req for ra in region_args]
        tctx = TaskContext(ctx, parent_reqs, fn.__name__)
        return fn(tctx, *region_args, *rest)

    wrapper.__name__ = fn.__name__
    wrapper.__qualname__ = fn.__qualname__
    return ctx.launch(wrapper, reqs, args=args, **kwargs)
