"""The implicitly parallel runtime with dynamic control replication.

This is the functional (really-executes) layer of the reproduction: a
Legion-like tasking runtime whose top-level control program can be
*dynamically control replicated*.  ``Runtime.execute(control)`` runs the
control function once per shard:

* **shard 0** drives the real work — every launch flows through the
  two-stage DCR analysis pipeline (:mod:`repro.core.pipeline`) and executes
  its point tasks synchronously (program order is a legal topological order
  of the precise task graph, so results equal a sequential execution);
* **shards 1..N-1** replay the control program against the shard-0 resource
  and future logs: resources are interned by creation order, so all shards
  hold identical handles, and every runtime API call is hashed and checked
  by the control-determinism monitor (§3).  A shard that launches different
  work, in a different order, or branches differently raises
  :class:`~repro.core.determinism.ControlDeterminismViolation`.

The division of labor with the simulator layer is deliberate (DESIGN.md
§2): this layer proves the algorithms (graph equivalence, fence soundness,
determinism checking, deferred deletions); the simulator reproduces the
paper's scaling numbers.
"""

from __future__ import annotations

import contextlib
import itertools
from typing import (Any, Callable, Dict, Hashable, Iterable, List, Optional,
                    Sequence, Tuple, Union)

import numpy as np

from ..core import (CoarseRequirement, Collectives, DCRPipeline,
                    DeferredOpManager, DeterminismMonitor,
                    IDENTITY_PROJECTION, Operation, PointTask,
                    ProjectionFunction)
from ..core.determinism import ControlDeterminismViolation
from ..core.rng import CounterRNG
from ..faults.injector import FaultInjector, ShardCrash
from ..obs.events import (CAT_CONTROL, CAT_EXEC, CAT_FAULT, CAT_RESILIENCE,
                          CONTROL_SHARD, EV_CONTROL_REPLAY, EV_EXEC_POINT,
                          EV_QUARANTINE, EV_RECOVERY, EV_SHARD_CRASH,
                          EV_SNAPSHOT)
from ..obs.profiler import Profiler, get_profiler
from ..resilience import (RecoveryPolicy, RecoveryReport, ResilienceConfig,
                          diagnosis_to_dict, identify_culprits)
from ..core.sharding import ShardingFunction
from ..oracle import (Privilege, READ_ONLY, READ_WRITE, RegionRequirement,
                      WRITE_DISCARD, reduce_priv)
from ..regions import (Field, FieldSpace, IndexSpace, LogicalRegion,
                       Partition, Rect)
from .future import Future, FutureMap
from .mapper import DefaultMapper, Mapper
from .store import FieldAccessor, RegionStore

__all__ = ["Runtime", "Context", "RegionArg", "PRIVILEGES"]

PRIVILEGES = {
    "ro": READ_ONLY,
    "rw": READ_WRITE,
    "wd": WRITE_DISCARD,
}


def _privilege(spec: Union[str, Privilege]) -> Privilege:
    if isinstance(spec, Privilege):
        return spec
    if spec in PRIVILEGES:
        return PRIVILEGES[spec]
    if spec.startswith("red"):
        return reduce_priv(spec[len("red"):].strip("<>") or "+")
    raise ValueError(f"unknown privilege spec {spec!r}")


class RegionArg:
    """What a task body receives for one region requirement."""

    def __init__(self, store: RegionStore, req: RegionRequirement):
        self._store = store
        self.req = req
        self.region = req.region
        self.privilege = req.privilege

    def __getitem__(self, field_name: str) -> FieldAccessor:
        f = self.region.field_space[field_name]
        return self._store.accessor(self.req, f)

    def fields(self) -> Tuple[Field, ...]:
        """The requirement's fields, in stable fid order."""
        return tuple(sorted(self.req.fields, key=lambda f: f.fid))


class Runtime:
    """Owner of storage, analysis pipeline, and the shard logs."""

    def __init__(self, num_shards: int = 1, mapper: Optional[Mapper] = None,
                 safe_checks: bool = True, check_batch: int = 32,
                 timing_oracle: Optional[Callable[[int, Future], bool]] = None,
                 auto_trace: bool = False,
                 auto_trace_config=None,
                 profiler: Optional[Profiler] = None,
                 injector: Optional[FaultInjector] = None,
                 resilience: Optional[ResilienceConfig] = None,
                 backend: str = "inprocess", check_coalesce: int = 1):
        from ..dist.transport import PROCESS_BACKENDS
        if backend not in ("inprocess", "loopback") + PROCESS_BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected "
                             f"'inprocess', 'loopback' or one of "
                             f"{PROCESS_BACKENDS}")
        self.backend = backend
        self._process_backend = backend in PROCESS_BACKENDS
        self.num_shards = num_shards
        self.mapper = mapper or DefaultMapper()
        self.store = RegionStore()
        # One profiler spans analysis, collectives, determinism checks and
        # execution; it is the disabled global no-op unless a live one is
        # passed (or the global one is enabled), and never perturbs results.
        self.profiler = profiler if profiler is not None else get_profiler()
        # Fault injection + recovery: both default to the environment
        # (REPRO_FAULT_SEED / REPRO_FAULT_POLICY) and are None in normal
        # runs — the same zero-perturbation discipline as the profiler.
        self.injector = injector if injector is not None \
            else FaultInjector.from_env()
        self.resilience = resilience if resilience is not None \
            else ResilienceConfig.from_env()
        if backend != "inprocess" and self.resilience is not None:
            # Recovery re-runs shards inside one process against shared
            # logs; forked/threaded replicas cannot be restarted in place.
            raise ValueError(
                f"the {backend} backend does not support recovery "
                "policies; drop resilience= (or REPRO_FAULT_POLICY) or "
                "use backend='inprocess'")
        if backend == "loopback" and timing_oracle is not None:
            # The oracle dispatches on runtime._current_shard, which
            # concurrent replica threads race on.
            raise ValueError("the loopback backend does not support a "
                             "timing_oracle; use backend='inprocess'")
        self._safe_checks = safe_checks
        self._check_batch = check_batch
        self._check_coalesce = max(1, check_coalesce)
        self._auto_trace = auto_trace
        self._auto_trace_config = auto_trace_config
        # The driver shard performs effects; replicas replay against its
        # logs.  Normally shard 0 — recovery re-elects min(active) when the
        # driver itself is quarantined.
        self.driver_shard = 0
        self.quarantined: set = set()
        self.reports: List[RecoveryReport] = []
        self._recoveries = 0
        self._latest_snapshot: Optional[Dict[str, Any]] = None
        self._prefix_expectation: Optional[Tuple[int, int, int]] = None
        self._sharding_cache: Dict[Tuple[int, frozenset], ShardingFunction] \
            = {}
        # One collectives instance spans determinism checks and recovery
        # localization, so CollectiveStats accumulates retransmission and
        # backoff accounting across the whole run (including retries).
        self.collectives = Collectives(num_shards, profiler=self.profiler,
                                       injector=self.injector)
        # auto_trace turns on transparent trace identification: repeated
        # fragments of the launch stream are memoized and replayed without
        # any begin_trace/end_trace calls in the control program.
        self.pipeline = DCRPipeline(num_shards, auto_trace=auto_trace,
                                    auto_trace_config=auto_trace_config,
                                    profiler=self.profiler,
                                    injector=self.injector)
        self.monitor = self._make_monitor()
        self.deferred = DeferredOpManager(num_shards)
        self.timing_oracle = timing_oracle
        # Driver logs replayed by the other shards, keyed by call order.
        self._resources: List[Any] = []
        self._futures: List[Union[Future, FutureMap]] = []
        self._deferred_keys: Dict[int, Any] = {}
        self.executed_points: int = 0
        self._result: Any = None
        # Multiprocess backend: per-replica verification summaries and
        # profiler snapshots, shipped back over the result pipes.
        self.replica_reports: List[Dict[str, Any]] = []
        self.replica_profiles: List[Dict[str, Any]] = []
        self.dist_checks: int = 0
        # Callbacks run before deferred-deletion draining (frontends hook
        # their own GC-deferred frees here, e.g. the legate field manager).
        self._drain_hooks: List[Callable[[], None]] = []

    def _make_monitor(self) -> DeterminismMonitor:
        policy = self.resilience.policy if self.resilience is not None \
            else None
        monitor = DeterminismMonitor(
            self.num_shards, batch=self._check_batch,
            enabled=self._safe_checks, collectives=self.collectives,
            profiler=self.profiler, injector=self.injector,
            localize=policy is not None and policy is not
            RecoveryPolicy.ABORT,
            on_batch=(self._take_batch_snapshot
                      if self.resilience is not None else None))
        for s in self.quarantined:
            monitor.quarantine(s)
        return monitor

    # -- replicated execution ------------------------------------------------------

    def execute(self, control: Callable[..., Any], *args: Any) -> Any:
        """Run ``control(ctx, *args)`` replicated across all shards.

        Returns the driver shard's return value.  Raises
        :class:`ControlDeterminismViolation` if any shard diverges —
        unless a :class:`~repro.resilience.ResilienceConfig` with a
        recovering policy (DEGRADE/RESTART) is attached, in which case the
        runtime quarantines or restarts the failed shard and completes the
        program on the survivors (Theorem 1 guarantees the identical task
        graph).
        """
        if getattr(self, "_executed", False):
            raise RuntimeError(
                "Runtime instances are single-use: the resource/future logs "
                "and analysis state belong to one replicated execution — "
                "create a fresh Runtime for another run")
        self._executed = True
        if self._process_backend:
            return self._execute_multiprocess(control, args)
        if self.backend == "loopback":
            return self._execute_loopback(control, args)
        if self.resilience is None:
            return self._execute_replicated(control, args)
        while True:
            try:
                result = self._execute_replicated(control, args)
            except (ControlDeterminismViolation, ShardCrash) as failure:
                self._handle_failure(failure)
                continue
            self._verify_recovered_prefix()
            return result

    def _execute_replicated(self, control: Callable[..., Any],
                            args: Tuple[Any, ...]) -> Any:
        """One replicated execution epoch over the active shard set."""
        res = self.resilience
        prof = self.profiler
        self._result = None
        for shard in range(self.num_shards):
            if shard in self.quarantined:
                continue
            try:
                self._run_shard(shard, control, args)
            except ShardCrash as crash:
                if prof.enabled:
                    prof.instant(shard, CAT_FAULT, EV_SHARD_CRASH,
                                 seq=crash.seq, reason=crash.reason)
                    prof.count("faults.crashes")
                if (res is not None
                        and res.policy is RecoveryPolicy.RESTART
                        and shard != self.driver_shard
                        and self._recoveries < res.max_recoveries):
                    # A crashed *replica* can rejoin in place: the driver's
                    # effects are unaffected, so restore the shard's region
                    # view from the latest snapshot, reset its hasher, and
                    # re-run its replay — it rejoins determinism checking
                    # at the next batch boundary.
                    self._recoveries += 1
                    self._restart_replica(shard, crash, control, args)
                else:
                    raise
        self.monitor.flush()
        self._drain_deferred()
        self.pipeline.validate()
        return self._result

    def _run_shard(self, shard: int, control: Callable[..., Any],
                   args: Tuple[Any, ...], monitor: Any = None) -> None:
        prof = self.profiler
        self._current_shard = shard
        ctx = Context(self, shard, monitor=monitor)
        if prof.enabled:
            prof.begin(shard, CAT_CONTROL, EV_CONTROL_REPLAY)
        try:
            ret = control(ctx, *args)
            ctx._finish()
        finally:
            if prof.enabled:
                prof.end(shard, CAT_CONTROL, EV_CONTROL_REPLAY)
        if shard == self.driver_shard:
            self._result = ret
            if self.resilience is not None:
                # The post-driver snapshot is the latest consistent state a
                # restarted replica can be recovered from.
                self._take_snapshot("driver-complete",
                                    verified=self.monitor._verified)

    # -- loopback backend ----------------------------------------------------

    def _execute_loopback(self, control: Callable[..., Any],
                          args: Tuple[Any, ...]) -> Any:
        """Replicated execution with each replica on its own thread.

        Structurally identical to the multiprocess backend — driver first
        in the calling thread, then one replica per remaining shard, each
        hash-checking through a
        :class:`~repro.dist.monitor.DistDeterminismMonitor` over a
        :class:`~repro.dist.transport.LoopbackFabric` — but without
        fork/pickling constraints, so it exercises the full distributed
        checking protocol at in-process speed (the fuzz tier leans on
        this).  Replicas share the runtime's logs and deferred-deletion
        manager directly; only their determinism monitors are private.
        """
        import threading
        from ..dist.collectives import DistCollectives
        from ..dist.monitor import DistDeterminismMonitor
        from ..dist.transport import LoopbackFabric

        self._run_shard(self.driver_shard, control, args)
        if self.num_shards == 1:
            self._drain_deferred()
            self.pipeline.validate()
            return self._result
        driver_hasher = self.monitor.hasher(self.driver_shard)
        fabric = LoopbackFabric(self.num_shards)
        payloads: Dict[int, Dict[str, Any]] = {}
        errors: List[str] = []
        lock = threading.Lock()

        def replica(shard: int) -> None:
            transport = fabric.transport(shard)
            try:
                monitor = DistDeterminismMonitor(
                    DistCollectives(transport, profiler=self.profiler),
                    batch=self._check_batch, enabled=self._safe_checks,
                    profiler=self.profiler, injector=self.injector)
                self._run_shard(shard, control, args,
                                monitor=_ReplicaMonitor(monitor))
                monitor.flush()
                payload = {
                    "shard": shard,
                    "calls": len(monitor.hasher.calls),
                    "checks": monitor.checks_performed,
                    "stream_digest": monitor.stream_digest(),
                    "frames_sent": transport.frames_sent,
                    "frames_received": transport.frames_received,
                }
                with lock:
                    payloads[shard] = payload
            except ControlDeterminismViolation:
                # The driver rank observes the same divergence in its
                # collective and raises the authoritative diagnosis.
                with lock:
                    errors.append(f"shard {shard} diverged")
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                with lock:
                    errors.append(f"shard {shard}: "
                                  f"{type(exc).__name__}: {exc}")
            finally:
                transport.close()

        threads = [
            threading.Thread(target=replica, args=(s,),
                             name=f"repro-loopback-{s}", daemon=True)
            for s in range(self.num_shards) if s != self.driver_shard]
        for t in threads:
            t.start()
        violation: Optional[ControlDeterminismViolation] = None
        try:
            self._drive_dist_check(fabric, driver_hasher)
        except ControlDeterminismViolation as exc:
            violation = exc
        for t in threads:
            t.join(timeout=120.0)
        if violation is not None:
            raise violation
        if errors:
            raise RuntimeError(
                "loopback replicas failed: " + "; ".join(sorted(errors)))
        for shard in sorted(payloads):
            self.replica_reports.append(payloads[shard])
        self._drain_deferred()
        self.pipeline.validate()
        return self._result

    # -- multiprocess backend ------------------------------------------------

    def _execute_multiprocess(self, control: Callable[..., Any],
                              args: Tuple[Any, ...]) -> Any:
        """Replicated execution with each replica in its own OS process.

        Phase 1 runs the driver shard in the parent exactly as the
        in-process backend does — effects, analysis, and the resource/
        future logs all live here, and the driver's API calls accumulate
        in its hasher (the in-process monitor never fires a check while
        the other hashers are empty).  Phase 2 forks one replica process
        per remaining shard; each replays the control program against the
        inherited logs with its determinism monitor swapped for a
        :class:`~repro.dist.monitor.DistDeterminismMonitor`, while the
        parent participates as the driver rank by feeding its pre-recorded
        digest stream through the same windowed all-reduce — so hash
        checking, divergence localization, and the final count comparison
        all run over real IPC.
        """
        import multiprocessing
        from ..dist.runner import supervise_gang, terminate_gang
        from ..dist.transport import fabric_for_backend

        self._run_shard(self.driver_shard, control, args)
        if self.num_shards == 1:
            self._drain_deferred()
            self.pipeline.validate()
            return self._result
        driver_hasher = self.monitor.hasher(self.driver_shard)
        ctx = multiprocessing.get_context("fork")
        fabric = fabric_for_backend(self.backend, self.num_shards)
        entries: List[Tuple[int, Any, Any]] = []
        try:
            for shard in range(self.num_shards):
                if shard == self.driver_shard:
                    continue
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_replica_main,
                    args=(self, fabric, shard, control, args, child_conn),
                    name=f"repro-replica-{shard}", daemon=True)
                proc.start()
                child_conn.close()
                entries.append((shard, proc, parent_conn))
            fabric.close_other_ends(self.driver_shard)
            violation: Optional[ControlDeterminismViolation] = None
            try:
                self._drive_dist_check(fabric, driver_hasher)
            except ControlDeterminismViolation as exc:
                # Every rank observes the divergence in the same collective
                # (the replicas raise too); keep the parent's diagnosis and
                # re-raise it once the gang is reaped.
                violation = exc
            payloads, failures = supervise_gang(entries, timeout_s=120.0)
        finally:
            terminate_gang(entries)
            fabric.close_all()
        if violation is not None:
            raise violation
        if failures:
            raise RuntimeError(
                "multiprocess replicas failed: " + "; ".join(failures))
        for shard in sorted(payloads):
            payload = payloads[shard]
            profile = payload.pop("profile", None)
            if profile is not None:
                self.replica_profiles.append(profile)
            self.replica_reports.append(payload)
        # Replica call streams verified identical ⇒ every deferred
        # deletion the driver announced was announced by all replicas (in
        # their forked copies); endorse on their behalf and drain.
        for key in self.deferred.pending_keys():
            for shard in range(self.num_shards):
                if shard != self.driver_shard:
                    self.deferred.announce(shard, key)
        self._drain_deferred()
        self.pipeline.validate()
        return self._result

    def _drive_dist_check(self, fabric: Any, driver_hasher: Any) -> None:
        """Parent-side determinism participation, from the recorded stream.

        Feeds the driver's already-computed call digests through a
        distributed monitor at the same window cadence the replicas use
        (record → maybe-check per call, one final flush), so all ranks
        execute the identical collective schedule.
        """
        from ..dist.collectives import DistCollectives
        from ..dist.monitor import DistDeterminismMonitor

        transport = fabric.transport(self.driver_shard)
        try:
            monitor = DistDeterminismMonitor(
                DistCollectives(transport, profiler=self.profiler),
                batch=self._check_batch, enabled=self._safe_checks,
                profiler=self.profiler, coalesce=self._check_coalesce)
            for digest, descr in zip(driver_hasher.calls,
                                     driver_hasher.descriptions):
                monitor.hasher.calls.append(digest)
                monitor.hasher.descriptions.append(descr)
                monitor.maybe_check()
            monitor.flush()
            self.dist_checks = monitor.checks_performed
        finally:
            transport.close()

    # -- recovery ------------------------------------------------------------

    def _report(self, action: str, failure: BaseException,
                culprits: Sequence[int], **details: Any) -> RecoveryReport:
        res = self.resilience
        rep = RecoveryReport(
            policy=res.policy.value if res is not None else "none",
            action=action,
            failure=str(failure),
            culprit_shards=list(culprits),
            seq=getattr(failure, "seq", None),
            attempt=self._recoveries,
            diagnosis=diagnosis_to_dict(getattr(failure, "diagnosis", None)),
            injected=[[str(x) for x in key]
                      for key in (self.injector.injected
                                  if self.injector is not None else [])],
            details=dict(details),
        )
        self.reports.append(rep)
        if res is not None and res.report_dir:
            rep.write(res.report_dir, len(self.reports))
        return rep

    def _handle_failure(self, failure: BaseException) -> None:
        """Apply the configured policy; raises unless a retry should run."""
        res = self.resilience
        assert res is not None
        prof = self.profiler
        t0 = prof.now_us() if prof.enabled else 0.0
        culprits = identify_culprits(failure)
        self._recoveries += 1
        policy = res.policy
        if policy is RecoveryPolicy.ABORT:
            self._report("abort", failure, culprits)
            raise failure
        if policy is RecoveryPolicy.LOCALIZE:
            # Detection already ran the localization protocol (the monitor
            # was built with localize=True); the violation carries the
            # diagnosis — report it and surface the structured error.
            self._report("localize", failure, culprits)
            raise failure
        if self._recoveries > res.max_recoveries:
            self._report("exhausted", failure, culprits,
                         max_recoveries=res.max_recoveries)
            raise failure
        if policy is RecoveryPolicy.DEGRADE:
            if not culprits:
                self._report("abort", failure, culprits,
                             reason="no culprit shard identified")
                raise failure
            survivors = [s for s in range(self.num_shards)
                         if s not in self.quarantined and s not in culprits]
            if not survivors:
                self._report("abort", failure, culprits,
                             reason="quarantine would leave no survivors")
                raise failure
            self._capture_prefix_expectation(exclude=set(culprits))
            for s in culprits:
                self._quarantine(s)
            self._report("quarantine", failure, culprits,
                         quarantined=sorted(self.quarantined),
                         driver_shard=self.driver_shard)
            self._reset_epoch()
        else:  # RESTART: re-execute the epoch with the full shard set.
            self._capture_prefix_expectation(exclude=set())
            self._report("restart", failure, culprits,
                         had_snapshot=self._latest_snapshot is not None)
            self._reset_epoch()
        if prof.enabled:
            prof.complete(CONTROL_SHARD, CAT_RESILIENCE, EV_RECOVERY, t0,
                          prof.now_us() - t0, action=policy.value,
                          shards=list(culprits), attempt=self._recoveries)
            prof.count("resilience.recoveries")

    def _quarantine(self, shard: int) -> None:
        self.quarantined.add(shard)
        if self.driver_shard in self.quarantined:
            self.driver_shard = min(
                s for s in range(self.num_shards)
                if s not in self.quarantined)
        prof = self.profiler
        if prof.enabled:
            prof.instant(shard, CAT_RESILIENCE, EV_QUARANTINE,
                         new_driver=self.driver_shard)
            prof.count("resilience.quarantined")

    def _reset_epoch(self) -> None:
        """Fresh analysis/storage state for a clean re-execution.

        Theorem 1 (DEP_rep ≡ DEP_seq) licenses this: any active shard
        subset recomputes the identical task graph from the same control
        program, so recovery re-analysis converges to the fault-free
        result.  Cumulative accounting (collectives stats, injector log,
        recovery reports, executed-point counter) survives the reset.
        """
        self.store = RegionStore()
        self.pipeline = DCRPipeline(
            self.num_shards, auto_trace=self._auto_trace,
            auto_trace_config=self._auto_trace_config,
            profiler=self.profiler, injector=self.injector)
        self.monitor = self._make_monitor()
        self.deferred = DeferredOpManager(self.num_shards)
        for s in self.quarantined:
            self.deferred.quarantine(s)
        self._resources = []
        self._futures = []
        self._deferred_keys = {}
        self._latest_snapshot = None
        self._result = None

    def _restart_replica(self, shard: int, crash: ShardCrash,
                         control: Callable[..., Any],
                         args: Tuple[Any, ...]) -> None:
        """RESTART a crashed replica in place (driver effects are intact)."""
        prof = self.profiler
        t0 = prof.now_us() if prof.enabled else 0.0
        snap = self._latest_snapshot
        if snap is not None:
            # Recover the shard's region view from the latest consistent
            # checkpoint.  Storage is shared in the functional runtime and
            # the snapshot postdates the driver's effects, so the restore
            # is value-identical — but it exercises the exact machinery a
            # distributed shard restart would use.
            self.store.restore(snap["snap"])
        self.monitor.reset_shard(shard)
        self.deferred.restore(shard)
        self._report("restart-replica", crash, [shard],
                     snapshot=None if snap is None else snap["tag"])
        if prof.enabled:
            prof.complete(shard, CAT_RESILIENCE, EV_RECOVERY, t0,
                          prof.now_us() - t0, action="restart-replica",
                          shards=[shard], attempt=self._recoveries)
            prof.count("resilience.recoveries")
        self._run_shard(shard, control, args)

    def _capture_prefix_expectation(self, exclude: set) -> None:
        """Remember a survivor's digest of the verified call prefix.

        After recovery re-executes, the new run's stream over the same
        prefix must hash identically — the observable form of the ISSUE's
        "replay the unverified suffix" guarantee (the verified prefix is
        re-derived bit-identically; only the unverified suffix was ever in
        doubt).
        """
        m = self.monitor
        verified = m._verified
        if verified <= 0:
            self._prefix_expectation = None
            return
        witness = next(
            (s for s in m.active_shards
             if s not in exclude and len(m.hashers[s].calls) >= verified),
            None)
        if witness is None:
            self._prefix_expectation = None
            return
        self._prefix_expectation = (
            m.window_digest(witness, 0, verified), verified, witness)

    def _verify_recovered_prefix(self) -> None:
        exp = self._prefix_expectation
        if exp is None:
            return
        self._prefix_expectation = None
        digest, verified, witness = exp
        m = self.monitor
        for s in m.active_shards:
            if len(m.hashers[s].calls) >= verified:
                got = m.window_digest(s, 0, verified)
                if got != digest:
                    raise RuntimeError(
                        f"recovery diverged from the verified prefix: "
                        f"shard {s}'s first {verified} calls hash "
                        f"{got:032x}, original shard {witness} hashed "
                        f"{digest:032x}")
                return

    # -- snapshots -----------------------------------------------------------

    def _take_batch_snapshot(self, verified: int) -> None:
        self._take_snapshot(f"batch@{verified}", verified=verified)

    def _take_snapshot(self, tag: str, verified: Optional[int] = None) -> None:
        self._latest_snapshot = {
            "snap": self.store.snapshot(), "tag": tag, "verified": verified}
        res = self.resilience
        if res is not None and res.checkpoint_dir:
            from ..tools.checkpoint import save_store_snapshot
            save_store_snapshot(self.store, res.checkpoint_dir)
        prof = self.profiler
        if prof.enabled:
            prof.instant(CONTROL_SHARD, CAT_RESILIENCE, EV_SNAPSHOT, tag=tag)
            prof.count("resilience.snapshots")

    # -- quarantine-aware placement -------------------------------------------

    def _effective_sharding(self, base: ShardingFunction) -> ShardingFunction:
        """The sharding actually applied: remapped around quarantined shards.

        The *base* function (what the mapper selected) is what every shard
        hashes — the quarantine remap is a pure, shared function of the
        quarantine set, so hashing the base keeps recovered runs' call
        streams bit-identical to the original (prefix verification relies
        on this).
        """
        if not self.quarantined:
            return base
        key = (base.sid, frozenset(self.quarantined))
        derived = self._sharding_cache.get(key)
        if derived is None:
            derived = base.with_quarantine(self.quarantined)
            self._sharding_cache[key] = derived
        return derived

    def _effective_owner(self, owner_shard: int) -> int:
        """Individual-launch owner, remapped off quarantined shards."""
        owner = owner_shard % self.num_shards
        if owner not in self.quarantined:
            return owner
        survivors = [s for s in range(self.num_shards)
                     if s not in self.quarantined]
        return survivors[owner % len(survivors)]

    def add_drain_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback run at every deferred-deletion drain."""
        self._drain_hooks.append(hook)

    def determinism_digests(self) -> List[int]:
        """Per-shard digests of the full hashed call streams, shard order.

        The canonical cross-backend determinism witness: the same control
        program must produce the identical digest vector on every backend
        (the fuzz tier asserts exactly this).
        """
        from ..core.determinism import stream_digest
        if self.backend == "inprocess":
            return [stream_digest(self.monitor.hashers[s].calls)
                    for s in range(self.num_shards)
                    if s not in self.quarantined]
        digests = {self.driver_shard: stream_digest(
            self.monitor.hasher(self.driver_shard).calls)}
        for rep in self.replica_reports:
            digests[rep["shard"]] = rep["stream_digest"]
        return [digests[s] for s in sorted(digests)]

    def _drain_deferred(self) -> None:
        """Insert finalizer-deferred deletions once all shards concur (§4.3)."""
        for hook in self._drain_hooks:
            hook()
        while self.deferred.outstanding:
            ready = self.deferred.tick()
            for key in ready:
                target = self._deferred_keys.pop(key)
                self._apply_deletion(target)
            if not ready and self.deferred.outstanding:
                continue  # back-off tick consumed; poll again

    def _apply_deletion(self, target: Any) -> None:
        if isinstance(target, tuple) and target[0] == "field":
            _tag, region, field = target
            self.store.deallocate_field(region.tree_id, field)
            if field.name in region.field_space:
                region.field_space.remove_field(field.name)
        elif isinstance(target, LogicalRegion):
            for f in target.field_space.fields:
                self.store.deallocate_field(target.tree_id, f)

    # -- task graph accessors ----------------------------------------------------------

    def task_graph(self):
        """The precise point-task graph the analysis produced."""
        return self.pipeline.fine_result.graph

    def coarse_result(self):
        """The coarse-stage products: group deps and fences."""
        return self.pipeline.coarse_result


class _ReplicaMonitor:
    """Duck-typed :class:`DeterminismMonitor` stand-in inside a replica.

    A forked replica owns exactly one shard, so the runtime's global
    monitor is swapped for this adapter around a
    :class:`~repro.dist.monitor.DistDeterminismMonitor`: ``hasher()``
    hands the :class:`Context` the replica's own hasher, and each
    ``maybe_check`` runs the windowed all-reduce over the pipe mesh.
    """

    def __init__(self, dist_monitor: Any):
        self._monitor = dist_monitor

    def hasher(self, shard: int) -> Any:
        if shard != self._monitor.rank:
            raise ValueError(
                f"replica process for shard {self._monitor.rank} asked for "
                f"shard {shard}'s hasher")
        return self._monitor.hasher

    def maybe_check(self) -> None:
        self._monitor.maybe_check()

    def flush(self) -> None:
        self._monitor.flush()


def _replica_main(runtime: Runtime, fabric: Any, shard: int,
                  control: Callable[..., Any], args: Tuple[Any, ...],
                  conn: Any) -> None:
    """Forked replica entrypoint: replay one shard over the pipe mesh.

    The fork carries the driver's resource/future logs, so the replay
    resolves every handle and future exactly as the in-process replicas
    do; only the determinism checking changes transport.
    """
    from ..dist.collectives import DistCollectives
    from ..dist.monitor import DistDeterminismMonitor

    transport = None
    try:
        fabric.close_other_ends(shard)
        transport = fabric.transport(shard)
        monitor = DistDeterminismMonitor(
            DistCollectives(transport, profiler=runtime.profiler),
            batch=runtime._check_batch, enabled=runtime._safe_checks,
            profiler=runtime.profiler, injector=runtime.injector,
            coalesce=runtime._check_coalesce)
        runtime.monitor = _ReplicaMonitor(monitor)
        runtime._run_shard(shard, control, args)
        monitor.flush()
        payload: Dict[str, Any] = {
            "shard": shard,
            "calls": len(monitor.hasher.calls),
            "checks": monitor.checks_performed,
            "stream_digest": monitor.stream_digest(),
            "frames_sent": transport.frames_sent,
            "frames_received": transport.frames_received,
        }
        if runtime.profiler.enabled:
            payload["profile"] = runtime.profiler.snapshot()
        conn.send(("ok", payload))
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        if transport is not None:
            transport.close()
        conn.close()


class Context:
    """Per-shard view of the runtime: the API control programs call.

    Every method hashes itself into the determinism monitor.  Shard 0
    performs effects; other shards replay against the logs.
    """

    def __init__(self, runtime: Runtime, shard: int, monitor: Any = None):
        self.runtime = runtime
        self.shard = shard
        self.num_shards = runtime.num_shards
        # Loopback replicas pass a private per-thread monitor; everything
        # else (including forked replicas, which reassign runtime.monitor
        # in their own process) uses the runtime's.
        self._monitor = monitor if monitor is not None else runtime.monitor
        self._hasher = self._monitor.hasher(shard)
        self._res_cursor = 0
        self._fut_cursor = 0
        self._in_finalizer = False

    @property
    def is_driver(self) -> bool:
        """Whether this shard performs effects (normally shard 0; recovery
        re-elects the lowest surviving shard when 0 is quarantined)."""
        return self.shard == self.runtime.driver_shard

    # -- internal plumbing ------------------------------------------------------------

    def _record(self, call: str, *args: Any) -> None:
        self._hasher.record(call, *args)
        self._monitor.maybe_check()

    def _intern_resource(self, call: str, factory: Callable[[], Any]) -> Any:
        """Create on the driver, replay by creation order on other shards."""
        log = self.runtime._resources
        if self.is_driver:
            obj = factory()
            log.append(obj)
        else:
            if self._res_cursor >= len(log):
                raise ControlDeterminismViolation(
                    self._res_cursor,
                    [f"shard {self.shard} issued extra {call}"],
                    shard_ids=[self.shard])
            obj = log[self._res_cursor]
        self._res_cursor += 1
        return obj

    def _intern_future(self, factory: Callable[[], Union[Future, FutureMap]]
                       ) -> Union[Future, FutureMap]:
        log = self.runtime._futures
        if self.is_driver:
            fut = factory()
            log.append(fut)
        else:
            if self._fut_cursor >= len(log):
                raise ControlDeterminismViolation(
                    self._fut_cursor,
                    [f"shard {self.shard} issued an extra launch"],
                    shard_ids=[self.shard])
            fut = log[self._fut_cursor]
        self._fut_cursor += 1
        return fut

    def _finish(self) -> None:
        self._record("task_complete", self.shard >= -1)

    # -- resource creation ----------------------------------------------------------------

    def create_field_space(self, fields: Iterable[Tuple[str, object]],
                           name: str = "") -> FieldSpace:
        """Allocate a field space from (name, dtype) pairs."""
        fields = list(fields)
        self._record("create_field_space",
                     [(n, str(np.dtype(d))) for n, d in fields], name)
        return self._intern_resource(
            "create_field_space", lambda: FieldSpace(fields, name=name))

    def create_index_space(self, extent: Union[int, Tuple[int, ...]],
                           name: str = "") -> IndexSpace:
        """Allocate a dense 0-based index space of the given extents."""
        ext = (extent,) if isinstance(extent, int) else tuple(extent)
        self._record("create_index_space", list(ext), name)
        return self._intern_resource(
            "create_index_space",
            lambda: IndexSpace.from_extent(*ext, name=name))

    def create_region(self, ispace: IndexSpace, fspace: FieldSpace,
                      name: str = "") -> LogicalRegion:
        """Create a root region (and its backing storage)."""
        self._record("create_region", ispace, fspace, name)
        def make() -> LogicalRegion:
            region = LogicalRegion(ispace, fspace, name=name)
            self.runtime.store.allocate(region)
            return region
        return self._intern_resource("create_region", make)

    def partition_equal(self, region: LogicalRegion, pieces: int,
                        dim: int = 0, name: str = "") -> Partition:
        """Disjoint, complete blockwise partition along one dimension."""
        self._record("partition_equal", region, pieces, dim, name)
        return self._intern_resource(
            "partition_equal",
            lambda: region.partition_equal(pieces, dim=dim, name=name))

    def partition_tiles(self, region: LogicalRegion, tiles: Tuple[int, ...],
                        name: str = "") -> Partition:
        """Disjoint, complete n-D tiling of a region."""
        self._record("partition_tiles", region, list(tiles), name)
        return self._intern_resource(
            "partition_tiles", lambda: region.partition_tiles(tiles, name=name))

    def partition_ghost(self, region: LogicalRegion, base: Partition,
                        halo: int, dim: Optional[int] = None,
                        name: str = "") -> Partition:
        """Aliased ghost partition: each base piece grown by ``halo``."""
        self._record("partition_ghost", region, base, halo,
                     -1 if dim is None else dim, name)
        return self._intern_resource(
            "partition_ghost",
            lambda: region.partition_ghost(base, halo, dim=dim, name=name))

    def partition_by_field(self, region: LogicalRegion,
                           colors: Sequence[Hashable],
                           color_of: Callable, name: str = "") -> Partition:
        """Dependent partitioning: piece = per-point color (OOPSLA'13).

        ``color_of`` must be control deterministic; its evaluation over the
        region is folded into the call hash.
        """
        from ..regions import partition_by_field
        assignment = [(list(p), str(color_of(p)))
                      for p in region.index_space]
        self._record("partition_by_field", region, assignment, name)
        return self._intern_resource(
            "partition_by_field",
            lambda: partition_by_field(region, colors, color_of, name=name))

    def partition_by_image(self, dest: LogicalRegion, source: Partition,
                           pointer: Callable, name: str = "") -> Partition:
        """Dependent partitioning: image of a pointer field (OOPSLA'16)."""
        from ..regions import partition_by_image
        arrows = [(list(p), sorted(map(str, pointer(p))))
                  for sub in source for p in sub.index_space]
        self._record("partition_by_image", dest, source, arrows, name)
        return self._intern_resource(
            "partition_by_image",
            lambda: partition_by_image(dest, source, pointer, name=name))

    def partition_by_preimage(self, dest: LogicalRegion, target: Partition,
                              pointer: Callable, name: str = "") -> Partition:
        """Dependent partitioning: preimage of a pointer field."""
        from ..regions import partition_by_preimage
        arrows = [(list(p), sorted(map(str, pointer(p))))
                  for p in dest.index_space]
        self._record("partition_by_preimage", dest, target, arrows, name)
        return self._intern_resource(
            "partition_by_preimage",
            lambda: partition_by_preimage(dest, target, pointer, name=name))

    def partition_by_points(self, region: LogicalRegion,
                            pieces: Dict[Hashable, Sequence],
                            disjoint: Optional[bool] = None,
                            name: str = "") -> Partition:
        """Arbitrary (possibly dynamic) partition from explicit point lists —
        the circuit app's dynamically computed graph partition."""
        norm = {
            color: tuple(sorted((p,) if isinstance(p, int) else tuple(p)
                                for p in pts))
            for color, pts in pieces.items()
        }
        self._record("partition_by_points", region,
                     sorted((str(c), list(map(list, pts)))
                            for c, pts in norm.items()),
                     name)
        def make() -> Partition:
            spaces = {
                color: IndexSpace(points=pts, name=f"{name}[{color}]")
                for color, pts in norm.items()
            }
            return region.partition_by_spaces(spaces, disjoint=disjoint,
                                              name=name)
        return self._intern_resource("partition_by_points", make)

    def partition_rects(self, region: LogicalRegion,
                        rects: Sequence[Tuple[Sequence[int], Sequence[int]]],
                        disjoint: Optional[bool] = None,
                        complete: Optional[bool] = None,
                        name: str = "") -> Partition:
        """Partition from explicit inclusive (lo, hi) rectangles.

        The workhorse of the deferred-array frontend: a view's logical
        tiling maps to one rect per color over the base region.  Rects are
        dense, so (unlike :meth:`partition_by_points`) the call hashes and
        builds in O(pieces), independent of element count.  Colors are the
        rect list positions.
        """
        norm = tuple((tuple(int(x) for x in lo), tuple(int(x) for x in hi))
                     for lo, hi in rects)
        self._record("partition_rects", region,
                     [[list(lo), list(hi)] for lo, hi in norm],
                     -1 if disjoint is None else int(disjoint),
                     -1 if complete is None else int(complete), name)
        def make() -> Partition:
            spaces = {
                i: IndexSpace(rect=Rect(lo, hi), name=f"{name}[{i}]")
                for i, (lo, hi) in enumerate(norm)
            }
            return region.partition_by_spaces(spaces, disjoint=disjoint,
                                              complete=complete, name=name)
        return self._intern_resource("partition_rects", make)

    # -- data operations --------------------------------------------------------------------

    def fill(self, region: LogicalRegion,
             fields: Union[str, Iterable[str]], value) -> None:
        """Fill the named fields of a region with one value (an operation)."""
        names = [fields] if isinstance(fields, str) else sorted(fields)
        self._record("fill", region, names, float(value))
        fobjs = frozenset(region.field_space[n] for n in names)
        op = Operation(
            "fill",
            [CoarseRequirement(region, fobjs, WRITE_DISCARD)],
            owner_shard=self.runtime._effective_owner(0),
            name=f"fill({region.name})")
        op.fill_value = value
        if self.is_driver:
            self.runtime.pipeline.analyze(op)
            for n in names:
                self.runtime.store.fill(region, region.field_space[n], value)

    # -- task launches -------------------------------------------------------------------------

    def _normalize_reqs(
        self, reqs: Sequence[Tuple]
    ) -> List[Tuple[Union[LogicalRegion, Partition], frozenset, Privilege,
                    Optional[ProjectionFunction]]]:
        out = []
        for spec in reqs:
            target, fields, priv = spec[0], spec[1], _privilege(spec[2])
            proj = spec[3] if len(spec) > 3 else IDENTITY_PROJECTION
            fspace = (target.parent_region.field_space
                      if isinstance(target, Partition)
                      else target.field_space)
            names = [fields] if isinstance(fields, str) else sorted(fields)
            fobjs = frozenset(fspace[n] for n in names)
            out.append((target, fobjs, priv,
                        proj if isinstance(target, Partition) else None))
        return out

    @staticmethod
    def _task_key(fn: Callable) -> str:
        """A stable identity for a task function, equal across shards.

        ``__name__`` alone is not enough: two different lambdas both hash as
        "<lambda>" and a divergent branch between them would go unnoticed.
        The defining module and line pin down the code object.
        """
        code = getattr(fn, "__code__", None)
        if code is None:
            return fn.__qualname__
        return f"{fn.__module__}:{fn.__qualname__}:{code.co_firstlineno}"

    def launch(self, fn: Callable[..., Any], reqs: Sequence[Tuple],
               args: Sequence[Any] = (), owner_shard: int = 0,
               future_args: Sequence[Future] = (),
               cost: float = 0.0) -> Future:
        """Launch one individual task; returns its future.

        ``future_args`` pass other tasks' results into this task without the
        control program reading them — the §3-safe alternative to branching
        on a value (Fig. 5's ``launch_task1(precondition=future)``): the
        future is resolved by the time the task body runs, and the argument
        is hashed by *handle*, not value, so shards stay deterministic.
        """
        norm = self._normalize_reqs(reqs)
        self._record("launch", self._task_key(fn),
                     [(t, sorted(f.fid for f in fl), p.kind.value)
                      for t, fl, p, _ in norm],
                     list(map(self._hashable_arg, args)),
                     list(future_args), owner_shard)
        def do() -> Future:
            op = Operation(
                "task",
                [CoarseRequirement(t, fl, p, pr) for t, fl, p, pr in norm],
                owner_shard=self.runtime._effective_owner(owner_shard),
                name=fn.__name__, body=fn, cost=cost)
            op.body_args = tuple(args) + tuple(f.get() for f in future_args)
            record = self.runtime.pipeline.analyze(op)
            value = self._execute_point(op, record.point_tasks[0],
                                        op.body_args)
            fut = Future(self._oracle_binding())
            fut.resolve(value)
            return fut
        return self._intern_future(do)  # type: ignore[return-value]

    def index_launch(self, fn: Callable[..., Any], domain: Sequence[Hashable],
                     reqs: Sequence[Tuple], args: Sequence[Any] = (),
                     future_args: Sequence[Future] = (),
                     cost: float = 0.0) -> FutureMap:
        """Launch a group (index) task over ``domain``; one future per point.

        This is the Regent-transformed form ``t(p[f(i)])`` (§4) that makes
        the coarse analysis cost independent of the number of points.
        ``future_args`` behave as in :meth:`launch`.
        """
        norm = self._normalize_reqs(reqs)
        domain = list(domain)
        if not domain:
            raise ValueError(
                f"index_launch of {fn.__name__} over an empty domain — "
                f"launch at least one point (or skip the launch)")
        sharding = self.runtime.mapper.select_sharding("task", fn.__name__)
        self._record("index_launch", self._task_key(fn), domain,
                     [(t, sorted(f.fid for f in fl), p.kind.value,
                       pr.pid if pr else -1)
                      for t, fl, p, pr in norm],
                     list(map(self._hashable_arg, args)),
                     list(future_args), sharding.sid)
        def do() -> FutureMap:
            op = Operation(
                "task",
                [CoarseRequirement(t, fl, p, pr) for t, fl, p, pr in norm],
                launch_domain=domain,
                sharding=self.runtime._effective_sharding(sharding),
                name=fn.__name__, body=fn, cost=cost)
            op.body_args = tuple(args) + tuple(f.get() for f in future_args)
            record = self.runtime.pipeline.analyze(op)
            futures: Dict[Hashable, Future] = {}
            for pt in record.point_tasks:
                value = self._execute_point(op, pt, op.body_args)
                f = Future(self._oracle_binding())
                f.resolve(value)
                futures[pt.point] = f
            return FutureMap(futures)
        return self._intern_future(do)  # type: ignore[return-value]

    def _execute_point(self, op: Operation, pt: PointTask,
                       args: Sequence[Any]) -> Any:
        if not self.is_driver:  # pragma: no cover - only the driver executes
            return None
        self.runtime.executed_points += 1
        assert op.body is not None
        region_args = [RegionArg(self.runtime.store, req)
                       for req in pt.requirements]
        prof = self.runtime.profiler
        if not prof.enabled:
            if op.is_group:
                return op.body(pt.point, *region_args, *args)
            return op.body(*region_args, *args)
        # Profiled path: the span lands on the *owning* shard's timeline
        # even though the functional executor runs everything on shard 0.
        t0 = prof.now_us()
        if op.is_group:
            value = op.body(pt.point, *region_args, *args)
        else:
            value = op.body(*region_args, *args)
        prof.complete(pt.shard, CAT_EXEC, EV_EXEC_POINT, t0,
                      prof.now_us() - t0, op=op.name, point=str(pt.point))
        prof.count("exec.points")
        return value

    def _oracle_binding(self):
        """Bind ``is_ready`` to the *currently replaying* shard.

        Futures are interned (all shards share one object), so the timing
        oracle must look up which shard is asking at call time — that is
        what lets tests model per-shard timing skew (Fig. 5).
        """
        oracle = self.runtime.timing_oracle
        runtime = self.runtime
        if oracle is None:
            return None
        return lambda fut: oracle(getattr(runtime, "_current_shard", 0), fut)

    @staticmethod
    def _hashable_arg(a: Any) -> Any:
        if isinstance(a, np.generic):
            return a.item()
        if isinstance(a, np.ndarray):
            return a.tobytes()
        return a

    # -- futures & control helpers ------------------------------------------------------------

    def get_value(self, future: Future) -> Any:
        """Block for a future's value; identical on every shard (hashed)."""
        self._record("future_get", future)
        return future.get()

    def rng(self, seed: int, stream: int = 0) -> CounterRNG:
        """A shard-safe counter-based generator (§3, Fig. 4 remedy)."""
        self._record("create_rng", seed, stream)
        return CounterRNG(seed, stream)

    def execution_fence(self) -> None:
        """A global ordering point: everything issued before the fence is
        ordered before everything after it (Legion's execution fence).

        Implemented as a global analysis fence occupying one program-order
        slot, so fence-coverage checks, the spy validator, and the event
        replayer's barrier eras all see it; the synchronous executor
        already honors program order.
        """
        self._record("execution_fence")
        if not self.is_driver:
            return
        from ..core.coarse import Fence
        pipe = self.runtime.pipeline
        pipe.note_external_fence()
        pipe.coarse.result.fences.append(
            Fence(at_seq=pipe._next_seq, region=None, fields=frozenset()))
        pipe._next_seq += 1

    # -- tracing -----------------------------------------------------------------------------------

    def begin_trace(self, trace_id: int) -> None:
        """Start capturing (or replaying) a trace of the following launches."""
        self._record("begin_trace", trace_id)
        if self.is_driver:
            self.runtime.pipeline.begin_trace(trace_id)

    def end_trace(self) -> None:
        """Finish the current trace capture/replay."""
        self._record("end_trace")
        if self.is_driver:
            self.runtime.pipeline.end_trace()

    # -- deletions & finalizers (§4.3) ----------------------------------------------------------

    @contextlib.contextmanager
    def finalizer(self):
        """Model a garbage-collector finalizer running at an arbitrary,
        shard-dependent point: deletions inside are deferred, not hashed."""
        self._in_finalizer = True
        try:
            yield
        finally:
            self._in_finalizer = False

    def delete_region(self, region: LogicalRegion) -> None:
        """Delete a region's storage (deferred when inside a finalizer)."""
        if self._in_finalizer:
            self.runtime._deferred_keys[region.uid] = region
            self.runtime.deferred.announce(self.shard, region.uid)
            return
        self._record("delete_region", region)
        if self.is_driver:
            self.runtime._apply_deletion(region)

    def delete_field(self, region: LogicalRegion, field_name: str) -> None:
        """Delete one field (deferred when inside a finalizer)."""
        f = region.field_space[field_name]
        if self._in_finalizer:
            key = ("field", region.uid, f.fid)
            self.runtime._deferred_keys[key] = ("field", region, f)
            self.runtime.deferred.announce(self.shard, key)
            return
        self._record("delete_field", region, field_name)
        if self.is_driver:
            self.runtime._apply_deletion(("field", region, f))
