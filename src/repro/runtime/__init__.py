"""The Legion-like implicitly parallel runtime with DCR (functional layer)."""

from .attach import (attach_array, attach_file, attach_file_group,
                     detach_array, detach_file, detach_file_group)
from .future import Future, FutureMap
from .mapper import (AutoReplicationMapper, BlockedMapper, DefaultMapper,
                     Mapper, PerTaskMapper)
from .runtime import Context, PRIVILEGES, RegionArg, Runtime
from .store import FieldAccessor, PrivilegeError, RegionStore

__all__ = [
    "attach_array", "attach_file", "attach_file_group",
    "detach_array", "detach_file", "detach_file_group",
    "Future", "FutureMap",
    "AutoReplicationMapper", "BlockedMapper", "DefaultMapper", "Mapper",
    "PerTaskMapper",
    "Context", "PRIVILEGES", "RegionArg", "Runtime",
    "FieldAccessor", "PrivilegeError", "RegionStore",
]
