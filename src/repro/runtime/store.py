"""Physical storage for region fields.

Each (region tree, field) is backed by one NumPy array spanning the root
index space's bounding rectangle.  Subregions are accessed through
privilege-checked :class:`FieldAccessor` views: structured subregions get
zero-copy slices, unstructured ones get gather/scatter access by point list.

The functional runtime executes synchronously, so a single array per field
is the authoritative copy; per-node instances and data movement are a
performance concern handled by the simulator layer (DESIGN.md §2).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..oracle import Privilege, RegionRequirement
from ..regions import Field, LogicalRegion

__all__ = ["RegionStore", "FieldAccessor", "PrivilegeError"]


class PrivilegeError(RuntimeError):
    """A task touched a field in a way its privileges do not allow."""


class RegionStore:
    """Root-region-wide arrays for every allocated field."""

    def __init__(self) -> None:
        self._arrays: Dict[Tuple[int, int], np.ndarray] = {}
        self._offsets: Dict[int, Tuple[int, ...]] = {}

    def allocate(self, root: LogicalRegion) -> None:
        """Allocate backing arrays for every field of a root region."""
        if not root.is_root:
            raise ValueError("allocate on the root region only")
        bounds = root.index_space.bounds()
        self._offsets[root.tree_id] = bounds.lo
        for f in root.field_space.fields:
            key = (root.tree_id, f.fid)
            if key not in self._arrays:
                self._arrays[key] = np.zeros(bounds.extents, dtype=f.dtype)

    def allocate_field(self, root: LogicalRegion, f: Field) -> None:
        """Allocate one late-added field."""
        bounds = root.index_space.bounds()
        self._arrays.setdefault((root.tree_id, f.fid),
                                np.zeros(bounds.extents, dtype=f.dtype))

    def deallocate_field(self, tree_id: int, f: Field) -> None:
        """Drop one field's backing array."""
        self._arrays.pop((tree_id, f.fid), None)

    def raw(self, tree_id: int, f: Field) -> np.ndarray:
        """The root-wide backing array of one field (authoritative copy)."""
        return self._arrays[(tree_id, f.fid)]

    def has_field(self, tree_id: int, f: Field) -> bool:
        """Whether the field's backing array is currently allocated."""
        return (tree_id, f.fid) in self._arrays

    def fill(self, region: LogicalRegion, f: Field, value) -> None:
        """Set one field to ``value`` over a (sub)region."""
        arr = self._arrays[(region.tree_id, f.fid)]
        off = self._offsets[region.tree_id]
        if region.index_space.structured:
            rect = region.index_space.rect
            sl = tuple(slice(l - o, h - o + 1)
                       for l, h, o in zip(rect.lo, rect.hi, off))
            arr[sl] = value
        else:
            for p in region.index_space:
                arr[tuple(c - o for c, o in zip(p, off))] = value

    # -- snapshots (resilience) ----------------------------------------------

    def snapshot(self) -> Tuple[Dict[Tuple[int, int], np.ndarray],
                                Dict[int, Tuple[int, ...]]]:
        """A deep copy of every backing array, for recovery checkpoints."""
        return ({k: v.copy() for k, v in self._arrays.items()},
                dict(self._offsets))

    def restore(self, snap: Tuple[Dict[Tuple[int, int], np.ndarray],
                                  Dict[int, Tuple[int, ...]]]) -> None:
        """Replace all storage with a previously captured :meth:`snapshot`."""
        arrays, offsets = snap
        self._arrays = {k: v.copy() for k, v in arrays.items()}
        self._offsets = dict(offsets)

    def accessor(self, req: RegionRequirement, f: Field) -> "FieldAccessor":
        """A privilege-checked accessor for one requirement's field."""
        if f not in req.fields:
            raise PrivilegeError(
                f"field {f.name} not named by the region requirement")
        arr = self._arrays[(req.region.tree_id, f.fid)]
        return FieldAccessor(arr, self._offsets[req.region.tree_id],
                             req.region, f, req.privilege)


class FieldAccessor:
    """Privilege-checked access to one field over one region."""

    def __init__(self, array: np.ndarray, offset: Tuple[int, ...],
                 region: LogicalRegion, field: Field, privilege: Privilege):
        self._array = array
        self._offset = offset
        self.region = region
        self.field = field
        self.privilege = privilege

    # -- structured fast path ---------------------------------------------------

    @property
    def view(self) -> np.ndarray:
        """Zero-copy NumPy view over a structured subregion.

        Read-only privileges return a non-writeable view, so accidental
        writes raise immediately.
        """
        rect = self.region.index_space.rect   # raises if unstructured
        sl = tuple(slice(l - o, h - o + 1)
                   for l, h, o in zip(rect.lo, rect.hi, self._offset))
        v = self._array[sl]
        if not self.privilege.writes and not self.privilege.is_reduce:
            v = v.view()
            v.flags.writeable = False
        return v

    # -- generic point access ------------------------------------------------------

    def _index(self, point) -> Tuple[int, ...]:
        p = (point,) if isinstance(point, int) else tuple(point)
        if not self.region.index_space.contains(p):
            raise PrivilegeError(
                f"point {p} outside region {self.region.name}")
        return tuple(c - o for c, o in zip(p, self._offset))

    def __getitem__(self, point):
        if not (self.privilege.reads or self.privilege.writes):
            raise PrivilegeError(
                f"{self.privilege!r} does not allow reading {self.field.name}")
        return self._array[self._index(point)]

    def __setitem__(self, point, value) -> None:
        if not self.privilege.writes:
            raise PrivilegeError(
                f"{self.privilege!r} does not allow writing {self.field.name}")
        self._array[self._index(point)] = value

    def reduce(self, point, value) -> None:
        """Apply the privilege's reduction operator at ``point``."""
        if not self.privilege.is_reduce:
            raise PrivilegeError("reduce() requires a REDUCE privilege")
        idx = self._index(point)
        op = self.privilege.redop
        if op == "+":
            self._array[idx] += value
        elif op == "*":
            self._array[idx] *= value
        elif op == "min":
            self._array[idx] = min(self._array[idx], value)
        elif op == "max":
            self._array[idx] = max(self._array[idx], value)
        else:
            raise PrivilegeError(f"unknown reduction operator {op!r}")

    def gather(self) -> np.ndarray:
        """Values over the region's points, in sorted point order (copy)."""
        pts = sorted(self.region.index_space.point_set())
        return np.array([self._array[tuple(c - o for c, o in
                                           zip(p, self._offset))]
                         for p in pts])

    def scatter(self, values) -> None:
        """Write values over the region's points in sorted point order."""
        if not self.privilege.writes:
            raise PrivilegeError("scatter requires a writing privilege")
        pts = sorted(self.region.index_space.point_set())
        for p, v in zip(pts, values):
            self._array[tuple(c - o for c, o in zip(p, self._offset))] = v
