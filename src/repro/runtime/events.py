"""Realm-style event-graph execution: replay a run out of program order.

Legion executes point tasks asynchronously on an event graph (Realm,
PACT'14): a task starts when the events of all its dependences have
triggered, in whatever order the machine gets to them.  The synchronous
functional runtime executes in program order, which is *one* topological
order of the precise task graph; this module replays the recorded run in
*arbitrary* dependence-respecting orders against a fresh store and checks
the result — the executable proof that the analysis captured every
dependence that matters (and, with the scheduler reversed, that it did not
invent constraints that deadlock).
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Dict, List, Optional, Set

from ..core.operation import Operation, PointTask
from ..oracle import RegionRequirement
from .runtime import RegionArg, Runtime
from .store import RegionStore

__all__ = ["EventGraphReplayer"]


class EventGraphReplayer:
    """Re-executes a finished run's point tasks on a fresh region store."""

    def __init__(self, runtime: Runtime):
        self.runtime = runtime
        self.graph = runtime.pipeline.fine_result.graph
        # Global analysis fences (trace-replay entry preconditions) carry
        # ordering that is *not* in the point graph: dependences leaving a
        # trace are summarized by the fence rather than recorded as edges.
        # The replayer must treat them as barriers.
        self._barriers = sorted(
            f.at_seq for f in runtime.pipeline.coarse_result.fences
            if f.region is None)
        self._roots_allocated: Set[int] = set()

    def _era(self, task: PointTask) -> int:
        """How many global barriers precede this task's operation."""
        import bisect
        return bisect.bisect_right(self._barriers, task.op.seq)

    # -- store reconstruction ------------------------------------------------------

    def _fresh_store(self) -> RegionStore:
        store = RegionStore()
        seen: Set[int] = set()
        for task in self.graph.tasks:
            for req in task.requirements:
                root = req.region.root()
                if root.uid not in seen:
                    seen.add(root.uid)
                    store.allocate(root)
        return store

    # -- scheduling ------------------------------------------------------------------

    def _schedule(self, rng: Optional[random.Random],
                  reverse_bias: bool) -> List[PointTask]:
        """A random (optionally anti-program-order-biased) topological order
        respecting both point edges and global fence barriers."""
        rng = rng or random.Random(0)
        succ: Dict[PointTask, List[PointTask]] = defaultdict(list)
        indeg: Dict[PointTask, int] = {t: 0 for t in self.graph.tasks}
        for a, b in self.graph.deps:
            succ[a].append(b)
            indeg[b] += 1
        eras: Dict[int, List[PointTask]] = defaultdict(list)
        for t in self.graph.tasks:
            eras[self._era(t)].append(t)
        era_order = sorted(eras)
        remaining = {e: len(ts) for e, ts in eras.items()}

        order: List[PointTask] = []
        ready: List[PointTask] = []
        era_pos = 0

        def release(e: int) -> None:
            ready.extend(t for t in eras[e] if indeg[t] == 0)

        if era_order:
            release(era_order[0])
        while len(order) < len(self.graph.tasks):
            if not ready:
                cur = era_order[era_pos]
                if remaining[cur] > 0:
                    raise RuntimeError(
                        "task graph contains a cycle — the analysis "
                        "produced an unexecutable schedule")
                era_pos += 1
                release(era_order[era_pos])
                continue
            if reverse_bias:
                ready.sort(key=lambda t: (t.op.seq, str(t.point)),
                           reverse=True)
                idx = 0
            else:
                idx = rng.randrange(len(ready))
            task = ready.pop(idx)
            order.append(task)
            remaining[self._era(task)] -= 1
            cur = era_order[era_pos]
            for nxt in succ[task]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0 and self._era(nxt) <= cur:
                    ready.append(nxt)
        return order

    # -- execution -----------------------------------------------------------------------

    def _execute(self, store: RegionStore, task: PointTask) -> None:
        op: Operation = task.op
        if op.kind == "fill":
            for req in task.requirements:
                for f in sorted(req.fields, key=lambda f: f.fid):
                    store.fill(req.region, f, op.fill_value)
            return
        if op.body is None:
            return      # attach/detach and friends: no replayable body
        region_args = [RegionArg(store, req) for req in task.requirements]
        if op.is_group:
            op.body(task.point, *region_args, *op.body_args)
        else:
            op.body(*region_args, *op.body_args)

    def replay(self, seed: int = 0, reverse_bias: bool = False
               ) -> RegionStore:
        """Execute every recorded point task in a fresh store, in a random
        dependence-respecting order; returns the store for comparison."""
        store = self._fresh_store()
        for task in self._schedule(random.Random(seed), reverse_bias):
            self._execute(store, task)
        return store

    def matches_original(self, store: RegionStore,
                         rtol: float = 1e-12, atol: float = 1e-12) -> bool:
        """Field-by-field comparison of a replay against the live store.

        Comparison is within floating-point tolerance rather than bitwise:
        independent reductions commute logically but not numerically, and a
        different execution order legitimately reorders their additions —
        Legion's reduction instances make the same promise.
        """
        import numpy as np

        seen: Set[int] = set()
        for task in self.graph.tasks:
            for req in task.requirements:
                root = req.region.root()
                if root.uid in seen:
                    continue
                seen.add(root.uid)
                for f in root.field_space.fields:
                    if not self.runtime.store.has_field(root.tree_id, f):
                        continue
                    a = self.runtime.store.raw(root.tree_id, f)
                    b = store.raw(root.tree_id, f)
                    if not np.allclose(a, b, rtol=rtol, atol=atol):
                        return False
        return True
