"""The mapping interface (paper §4).

Legion exposes performance decisions — *whether* to replicate a task, how
many shards, which sharding function each launch uses — through mappers
rather than baking heuristics into the runtime.  The DCR paper's extension
is exactly the replication/sharding part, reproduced here.
"""

from __future__ import annotations

from typing import Optional

from ..core.sharding import CYCLIC, BLOCKED, ShardingFunction

__all__ = ["Mapper", "DefaultMapper", "BlockedMapper"]


class Mapper:
    """Application/machine-specific policy hooks."""

    def replicate_task(self, task_name: str) -> bool:
        """Should this (top-level) task be dynamically control replicated?"""
        raise NotImplementedError

    def select_sharding(self, op_kind: str, task_name: str) -> ShardingFunction:
        """Sharding function for a launch (pure; results are memoized)."""
        raise NotImplementedError

    def select_num_shards(self, num_nodes: int) -> int:
        """How many shards to use (one per node in the paper's runs)."""
        return num_nodes


class DefaultMapper(Mapper):
    """Replicates everything marked replicable; cyclic (ID 0) sharding."""

    def __init__(self, sharding: Optional[ShardingFunction] = None):
        self._sharding = sharding or CYCLIC

    def replicate_task(self, task_name: str) -> bool:
        """Replicate every task marked replicable."""
        return True

    def select_sharding(self, op_kind: str, task_name: str) -> ShardingFunction:
        """One fixed sharding function for every launch."""
        return self._sharding


class BlockedMapper(DefaultMapper):
    """Tiled sharding: contiguous blocks of points per shard — the locality-
    preserving choice the Pennant experiment credits for beating MPI+CUDA."""

    def __init__(self):
        super().__init__(BLOCKED)


class PerTaskMapper(DefaultMapper):
    """Per-task sharding overrides: the Fig. 11 experiment as a mapper.

    The paper's Fig. 11 shows how choosing a different sharding function
    for one launch (mul_two) changes the fence structure; this mapper lets
    tests and applications express exactly that: a table from task name to
    sharding function, with a default for everything else.
    """

    def __init__(self, overrides: dict,
                 default: Optional[ShardingFunction] = None):
        super().__init__(default)
        self._overrides = dict(overrides)

    def select_sharding(self, op_kind: str, task_name: str) -> ShardingFunction:
        """The per-task override when present, else the default."""
        return self._overrides.get(task_name, self._sharding)


class AutoReplicationMapper(DefaultMapper):
    """Heuristic replication decisions (paper §4: "there is nothing that
    prevents the use of DCR from being automated by heuristics").

    Policy: replicate whenever the machine has more than one node, with one
    shard per node; prefer blocked sharding (analysis lands next to
    execution under the default tiled mapping) unless the caller overrides.
    """

    def __init__(self, num_nodes: int,
                 sharding: Optional[ShardingFunction] = None):
        super().__init__(sharding or BLOCKED)
        self.num_nodes = max(1, num_nodes)

    def replicate_task(self, task_name: str) -> bool:
        """Replicate exactly when more than one node exists."""
        return self.num_nodes > 1

    def select_num_shards(self, num_nodes: int) -> int:
        """One shard per node."""
        return self.num_nodes
