"""Recovery policies for control-plane faults.

The paper's control-determinism check (§3.2) *detects* divergence among
control replicas; its only remedy is an abort.  Theorem 1 licenses far
more: DEP_rep ≡ DEP_seq means **any** shard subset (down to one) can
recompute the identical task graph, so a diverged or crashed shard is
recoverable, not fatal.  This module defines the policy vocabulary and the
reporting machinery; :class:`repro.runtime.runtime.Runtime` implements the
policies themselves:

* **ABORT** — today's behavior: raise the (now structured)
  :class:`~repro.core.determinism.ControlDeterminismViolation` or
  :class:`~repro.faults.ShardCrash`.
* **LOCALIZE** — on a window-hash mismatch, allgather the per-call digests
  of the failed window, binary-search the first divergent call, and raise
  a violation carrying a full :class:`~repro.core.determinism.
  DivergenceDiagnosis` (shard, seq, both call descriptions).
* **DEGRADE** — quarantine the divergent shard, re-shard its points onto
  the survivors (:meth:`~repro.core.sharding.ShardingFunction.
  with_quarantine`), and replay the program through fresh analysis on the
  surviving replicas; the recovered task graph is identical to a
  fault-free run, and the re-verified call-stream prefix is checked
  against the originally verified window digests.
* **RESTART** — recover from a region snapshot (``tools.checkpoint``): a
  crashed *replica* is restored from the latest consistent snapshot and
  rejoins checking at the next batch boundary; a crashed or diverged
  *driver* restarts the epoch from its initial state (full re-execution,
  which Theorem 1 makes equivalent).

Every recovery action produces a :class:`RecoveryReport`; with
``report_dir`` set the reports are also written as JSON (the CI chaos tier
uploads them on failure).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from .core.determinism import (ControlDeterminismViolation,
                               DivergenceDiagnosis)
from .faults.injector import ShardCrash

__all__ = ["RecoveryPolicy", "ResilienceConfig", "RecoveryReport",
           "identify_culprits", "diagnosis_to_dict"]


class RecoveryPolicy(Enum):
    """What the runtime does when the control plane fails."""

    ABORT = "abort"
    LOCALIZE = "localize"
    DEGRADE = "degrade"
    RESTART = "restart"


@dataclass
class ResilienceConfig:
    """Recovery configuration carried by a :class:`~repro.runtime.runtime.
    Runtime`.

    ``max_recoveries`` bounds how many recovery attempts a single
    ``execute`` may make before giving up and re-raising (guards against a
    fault the policy cannot actually clear).  ``checkpoint_dir`` mirrors
    every snapshot to disk via :func:`repro.tools.checkpoint.
    save_store_snapshot`; ``report_dir`` persists recovery reports as JSON.
    """

    policy: RecoveryPolicy = RecoveryPolicy.ABORT
    max_recoveries: int = 2
    checkpoint_dir: Optional[str] = None
    report_dir: Optional[str] = None

    @classmethod
    def from_env(cls, env: Optional[Dict[str, str]] = None
                 ) -> Optional["ResilienceConfig"]:
        """Config from ``REPRO_FAULT_POLICY`` etc., or None when unset."""
        e = os.environ if env is None else env
        raw = e.get("REPRO_FAULT_POLICY", "").strip().lower()
        if not raw:
            return None
        try:
            policy = RecoveryPolicy(raw)
        except ValueError:
            names = [p.value for p in RecoveryPolicy]
            raise ValueError(
                f"REPRO_FAULT_POLICY={raw!r} is not one of {names}")
        return cls(
            policy=policy,
            max_recoveries=int(e.get("REPRO_FAULT_MAX_RECOVERIES", "2")),
            checkpoint_dir=e.get("REPRO_FAULT_CHECKPOINT_DIR") or None,
            report_dir=e.get("REPRO_FAULT_REPORT_DIR") or None,
        )


def diagnosis_to_dict(d: Optional[DivergenceDiagnosis]
                      ) -> Optional[Dict[str, Any]]:
    """JSON-safe rendering of a diagnosis (digests as hex strings)."""
    if d is None:
        return None
    out = asdict(d)
    out["shard_digests"] = [f"{x:032x}" for x in d.shard_digests]
    out["majority_digest"] = f"{d.majority_digest:032x}"
    return out


@dataclass
class RecoveryReport:
    """One recovery decision, structured for tooling and CI artifacts."""

    policy: str                       # RecoveryPolicy value
    action: str                       # abort|localize|quarantine|restart|
    #                                   restart-replica|exhausted
    failure: str                      # str() of the triggering exception
    culprit_shards: List[int]
    seq: Optional[int] = None         # failing API-call index, when known
    attempt: int = 0                  # 1-based recovery attempt number
    diagnosis: Optional[Dict[str, Any]] = None
    injected: List[List[str]] = field(default_factory=list)
    details: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, default=str)

    def write(self, directory: str, ordinal: int) -> str:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"fault_report_{ordinal:03d}.json")
        with open(path, "w") as fh:
            fh.write(self.to_json())
        return path


def identify_culprits(failure: BaseException) -> List[int]:
    """The shard(s) a failure implicates, best effort.

    Crashes name their shard directly; determinism violations carry either
    a LOCALIZE diagnosis (minority shards at the first divergent call) or,
    for the unequal-count case, the shards that recorded fewest calls.
    """
    if isinstance(failure, ShardCrash):
        return [failure.shard]
    if isinstance(failure, ControlDeterminismViolation):
        culprits = failure.divergent_shards
        return list(culprits) if culprits else []
    return []
