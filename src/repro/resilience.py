"""Recovery policies for control-plane faults.

The paper's control-determinism check (§3.2) *detects* divergence among
control replicas; its only remedy is an abort.  Theorem 1 licenses far
more: DEP_rep ≡ DEP_seq means **any** shard subset (down to one) can
recompute the identical task graph, so a diverged or crashed shard is
recoverable, not fatal.  This module defines the policy vocabulary and the
reporting machinery; :class:`repro.runtime.runtime.Runtime` implements the
policies themselves:

* **ABORT** — today's behavior: raise the (now structured)
  :class:`~repro.core.determinism.ControlDeterminismViolation` or
  :class:`~repro.faults.ShardCrash`.
* **LOCALIZE** — on a window-hash mismatch, allgather the per-call digests
  of the failed window, binary-search the first divergent call, and raise
  a violation carrying a full :class:`~repro.core.determinism.
  DivergenceDiagnosis` (shard, seq, both call descriptions).
* **DEGRADE** — quarantine the divergent shard, re-shard its points onto
  the survivors (:meth:`~repro.core.sharding.ShardingFunction.
  with_quarantine`), and replay the program through fresh analysis on the
  surviving replicas; the recovered task graph is identical to a
  fault-free run, and the re-verified call-stream prefix is checked
  against the originally verified window digests.
* **RESTART** — recover from a region snapshot (``tools.checkpoint``): a
  crashed *replica* is restored from the latest consistent snapshot and
  rejoins checking at the next batch boundary; a crashed or diverged
  *driver* restarts the epoch from its initial state (full re-execution,
  which Theorem 1 makes equivalent).
* **REJOIN** — the self-healing policy for persistent gangs: fork a
  replacement worker for exactly the culprit rank(s), re-endpoint the
  surviving replicas onto a fresh fabric, and return the gang to full
  width *in place* — no rebuild, no lost capacity, surviving sessions'
  jobs resume on the healed gang.  Respawn attempts are bounded by
  ``respawn_budget``; once it is exhausted the plan falls back to the
  DEGRADE rebuild (and to RESTART when the failure names no culprit to
  respawn).

Every recovery action produces a :class:`RecoveryReport`; with
``report_dir`` set the reports are also written as JSON (the CI chaos tier
uploads them on failure).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, fields
from enum import Enum
from typing import Any, Dict, List, Optional

from .core.determinism import (ControlDeterminismViolation,
                               DivergenceDiagnosis)
from .faults.injector import ShardCrash

__all__ = ["RecoveryPolicy", "ResilienceConfig", "RecoveryReport",
           "identify_culprits", "diagnosis_to_dict", "plan_gang_recovery"]


class RecoveryPolicy(Enum):
    """What the runtime does when the control plane fails."""

    ABORT = "abort"
    LOCALIZE = "localize"
    DEGRADE = "degrade"
    RESTART = "restart"
    REJOIN = "rejoin"


@dataclass
class ResilienceConfig:
    """Recovery configuration carried by a :class:`~repro.runtime.runtime.
    Runtime`.

    ``max_recoveries`` bounds how many recovery attempts a single
    ``execute`` may make before giving up and re-raising (guards against a
    fault the policy cannot actually clear).  ``checkpoint_dir`` mirrors
    every snapshot to disk via :func:`repro.tools.checkpoint.
    save_store_snapshot`; ``report_dir`` persists recovery reports as JSON.
    """

    policy: RecoveryPolicy = RecoveryPolicy.ABORT
    max_recoveries: int = 2
    checkpoint_dir: Optional[str] = None
    report_dir: Optional[str] = None
    #: REJOIN only: how many live respawns a service may attempt before
    #: the plan falls back to a DEGRADE rebuild.
    respawn_budget: int = 2

    @classmethod
    def from_env(cls, env: Optional[Dict[str, str]] = None
                 ) -> Optional["ResilienceConfig"]:
        """Config from ``REPRO_FAULT_POLICY`` etc., or None when unset."""
        e = os.environ if env is None else env
        raw = e.get("REPRO_FAULT_POLICY", "").strip().lower()
        if not raw:
            return None
        try:
            policy = RecoveryPolicy(raw)
        except ValueError:
            names = [p.value for p in RecoveryPolicy]
            raise ValueError(
                f"REPRO_FAULT_POLICY={raw!r} is not one of {names}")
        return cls(
            policy=policy,
            max_recoveries=int(e.get("REPRO_FAULT_MAX_RECOVERIES", "2")),
            checkpoint_dir=e.get("REPRO_FAULT_CHECKPOINT_DIR") or None,
            report_dir=e.get("REPRO_FAULT_REPORT_DIR") or None,
            respawn_budget=int(e.get("REPRO_FAULT_RESPAWN_BUDGET", "2")),
        )


def diagnosis_to_dict(d: Optional[DivergenceDiagnosis]
                      ) -> Optional[Dict[str, Any]]:
    """JSON-safe rendering of a diagnosis (digests as hex strings)."""
    if d is None:
        return None
    out = asdict(d)
    out["shard_digests"] = [f"{x:032x}" for x in d.shard_digests]
    out["majority_digest"] = f"{d.majority_digest:032x}"
    return out


@dataclass
class RecoveryReport:
    """One recovery decision, structured for tooling and CI artifacts."""

    policy: str                       # RecoveryPolicy value
    action: str                       # abort|localize|quarantine|restart|
    #                                   restart-replica|respawn|exhausted
    failure: str                      # str() of the triggering exception
    culprit_shards: List[int]
    seq: Optional[int] = None         # failing API-call index, when known
    attempt: int = 0                  # 1-based recovery attempt number
    diagnosis: Optional[Dict[str, Any]] = None
    injected: List[List[str]] = field(default_factory=list)
    details: Dict[str, Any] = field(default_factory=dict)
    # -- REJOIN bookkeeping (absent / defaulted for the other policies) --
    respawns: int = 0                 # respawn attempts consumed so far
    resync_source: Optional[str] = None   # width-keyed-templates|fresh-replay
    #: Heartbeat monitor snapshot at failure time ("wall of suspicion");
    #: timestamps are relative to monitor start, so with an injectable
    #: clock the whole report is deterministic.
    suspicion: Optional[Dict[str, Any]] = None

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, default=str)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RecoveryReport":
        """Inverse of ``asdict`` — unknown keys ignored for compatibility."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def from_json(cls, text: str) -> "RecoveryReport":
        return cls.from_dict(json.loads(text))

    def write(self, directory: str, ordinal: int) -> str:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"fault_report_{ordinal:03d}.json")
        with open(path, "w") as fh:
            fh.write(self.to_json())
        return path


def plan_gang_recovery(config: ResilienceConfig, failure: BaseException,
                       num_shards: int, attempt: int, *,
                       respawns_used: int = 0,
                       suspicion: Optional[Dict[str, Any]] = None,
                       resync_source: Optional[str] = None
                       ) -> RecoveryReport:
    """Decide how a persistent shard gang recovers from a dead gang.

    The service analogue of the single-run policies: when a gang dies
    under a streaming workload (a crashed or diverged replica takes every
    collective down with it), the whole gang is rebuilt — Theorem 1 makes
    any rebuilt width recompute identical task graphs, so the choice is
    purely about capacity:

    * **DEGRADE** — rebuild one shard narrower (never below 1): the dead
      replica is treated as lost capacity, and the failed submission is
      re-analyzed at the new width.
    * **RESTART** — rebuild at the same width and re-run the failed
      submission from scratch (full re-analysis, which Theorem 1 makes
      equivalent to the run that died).
    * **REJOIN** — heal in place: respawn exactly the culprit rank(s)
      and re-endpoint the survivors (``action="respawn"``); the gang
      stays at full width and the failed submission retries on the
      healed gang.  Falls back to the DEGRADE rebuild once
      ``respawns_used`` reaches ``config.respawn_budget``, and to a
      RESTART rebuild when the failure names no culprit (nothing to
      respawn — e.g. a whole-gang timeout).
    * **ABORT** / **LOCALIZE** — the submission fails (with whatever
      diagnosis the failure carried); the gang is still rebuilt at full
      width so the *service* survives even when the *job* does not.

    Returns a :class:`RecoveryReport` whose ``details`` carry the planned
    ``new_width`` and whether the failed job should be ``retried``;
    ``action="exhausted"`` once ``attempt`` exceeds
    ``config.max_recoveries`` (the service then refuses further work).
    For REJOIN plans the report additionally records the respawn budget
    state, the resync source, and the failure-time suspicion snapshot.
    """
    culprits = identify_culprits(failure)
    details: Dict[str, Any]
    if attempt > config.max_recoveries:
        action, new_width, retry = "exhausted", 0, False
        details = {}
    elif config.policy is RecoveryPolicy.REJOIN:
        if not culprits:
            # Nothing to respawn: a whole-gang timeout or an unattributed
            # failure heals by the RESTART-equivalent rebuild.
            action, new_width, retry = "restart", num_shards, True
            details = {"fallback": "restart-no-culprit"}
        elif respawns_used >= config.respawn_budget:
            action = "quarantine"
            new_width = max(1, num_shards - len(culprits))
            retry = True
            details = {"fallback": "degrade-budget-exhausted"}
        else:
            from .dist.heartbeat import respawn_backoff
            action, new_width, retry = "respawn", num_shards, True
            details = {"respawned": sorted(culprits),
                       "respawn_attempt": respawns_used + 1,
                       "respawn_budget": config.respawn_budget,
                       "backoff_s": round(
                           respawn_backoff(0, respawns_used + 1), 6)}
    elif config.policy is RecoveryPolicy.DEGRADE:
        action = "quarantine"
        new_width = max(1, num_shards - 1)
        retry = True
        details = {}
    elif config.policy is RecoveryPolicy.RESTART:
        action, new_width, retry = "restart", num_shards, True
        details = {}
    else:  # ABORT / LOCALIZE: job fails, gang comes back anyway.
        action = config.policy.value
        new_width, retry = num_shards, False
        details = {}
    diagnosis = None
    if isinstance(failure, ControlDeterminismViolation):
        diagnosis = diagnosis_to_dict(failure.diagnosis)
    base = {"num_shards": num_shards, "new_width": new_width,
            "retry": retry}
    base.update(details)
    report = RecoveryReport(
        policy=config.policy.value, action=action,
        failure=f"{type(failure).__name__}: {failure}",
        culprit_shards=culprits,
        seq=failure.seq if isinstance(failure, ShardCrash) else None,
        attempt=attempt, diagnosis=diagnosis,
        details=base,
        respawns=respawns_used,
        resync_source=resync_source,
        suspicion=dict(suspicion) if suspicion else
        dict(getattr(failure, "suspicion", None) or {}) or None)
    if config.report_dir:
        report.write(config.report_dir, attempt)
    return report


def identify_culprits(failure: BaseException) -> List[int]:
    """The shard(s) a failure implicates, best effort.

    Crashes name their shard directly; determinism violations carry either
    a LOCALIZE diagnosis (minority shards at the first divergent call) or,
    for the unequal-count case, the shards that recorded fewest calls.
    """
    if isinstance(failure, ShardCrash):
        return [failure.shard]
    if isinstance(failure, ControlDeterminismViolation):
        culprits = failure.divergent_shards
        return list(culprits) if culprits else []
    # Gang-level failures (repro.service.gang.GangFailure) name the ranks
    # whose workers died; duck-typed so resilience needn't import service.
    shards = getattr(failure, "culprit_shards", None)
    return list(shards) if shards else []
