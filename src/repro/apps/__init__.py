"""Evaluation workloads (paper §5): one module per application.

=========  ======================================  =========
Module     Application                             Figure(s)
=========  ======================================  =========
stencil    2-D stencil benchmark                   12a/12b
circuit    circuit simulation                      13a/13b
pennant    Pennant Lagrangian hydro vs MPI         14
resnet     ResNet-50 / ImageNet training           15
soleil     Soleil-X multi-physics solver           16
htr        HTR hypersonic solver                   17a/17b
candle     CANDLE Uno MLP (FlexFlow hybrid)        18
taskbench  Task Bench + METG(50%)                  21
=========  ======================================  =========

(Figs. 19-20 live in :mod:`repro.legate.programs`.)
"""

from . import (candle, circuit, dnn, htr, pennant, pennant_hydro, resnet,
               soleil, soleil_mini, stencil, taskbench)

__all__ = ["candle", "circuit", "dnn", "htr", "pennant", "pennant_hydro",
           "resnet", "soleil", "soleil_mini", "stencil", "taskbench"]
