"""Shared DNN-training operation-stream builder (Figs. 15 and 18).

Builds one training run as a SimProgram from a layer list and a FlexFlow
parallelization strategy: forward chain, backward chain, per-layer gradient
all-reduce across data-parallel replicas (overlappable with other layers'
backward work, as Horovod/Legion both achieve), optimizer update, repeat.

The real region structure (weights/activations/gradients regions with
per-GPU tile partitions) is attached so the DCR model derives fences from
the genuine coarse analysis.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..flexflow.strategy import GPU_FLOPS, LayerSpec, Strategy
from ..oracle import READ_ONLY, READ_WRITE
from ..sim.machine import MachineSpec, ProcKind
from ..sim.workload import DepSpec, SimOp, SimProgram
from .common import TiledField, group_op

__all__ = ["build_training_program"]


def build_training_program(name: str, layers: Sequence[LayerSpec],
                           strategy: Strategy, machine: MachineSpec,
                           batch_per_gpu: int = 64, iterations: int = 4,
                           warmup: int = 1, tracing: bool = True,
                           gpu_flops: float = GPU_FLOPS) -> SimProgram:
    """One multi-iteration training run under a parallelization strategy."""
    gpus = max(1, machine.total_procs(ProcKind.GPU))
    acts = TiledField.build(f"{name}_acts", [("a", "f4"), ("g", "f4")],
                            gpus, with_ghost=False)
    weights = [
        TiledField.build(f"{name}_w{i}", [("w", "f4"), ("dw", "f4")],
                         gpus, with_ghost=False)
        for i in range(len(layers))
    ]
    prog = SimProgram(name, scr_applicable=True)
    prog.work_per_iteration = batch_per_gpu * gpus   # samples per iteration

    last_update: Optional[int] = None
    for it in range(warmup + iterations):
        timed = it >= warmup
        start = prog.begin_iteration() if timed else None
        traced = tracing and it >= 1
        fwd_idx: List[int] = []
        # The new iteration's forward pass consumes the weights the
        # previous iteration's optimizer produced.
        prev: Optional[int] = last_update

        for i, layer in enumerate(layers):
            m_deg = strategy.model_degree(i)
            compute = (batch_per_gpu * m_deg * layer.flops_per_sample
                       / m_deg / gpu_flops)
            op = group_op(
                f"{name}.fwd{i}[{it}]", gpus,
                [(acts.tiles, acts.fieldset("a"), READ_WRITE),
                 (weights[i].tiles, weights[i].fieldset("w"), READ_ONLY)])
            deps = []
            if prev is not None:
                if m_deg > 1:
                    # Model-parallel layer: gather the previous layer's
                    # activations from the whole shard group (NVLink within
                    # a node, interconnect when the group spans nodes).
                    abytes = (4.0 * batch_per_gpu * m_deg
                              * layer.activation_size)
                    deps.append(DepSpec(prev, "halo", abytes,
                                        (-1, 1, -(m_deg - 1), m_deg - 1)))
                else:
                    deps.append(DepSpec(
                        prev, "pointwise",
                        4.0 * batch_per_gpu * layer.activation_size))
            prev = prog.add(SimOp(op.name, gpus, compute, deps=deps,
                                  proc_kind=ProcKind.GPU, operation=op,
                                  traced=traced))
            fwd_idx.append(prev)

        # Backward chain first; gradient all-reduces are launched as each
        # layer's gradients become available, but the (cheap) optimizer
        # updates are issued after the chain so the collectives overlap the
        # remaining backward compute — Horovod's tensor-fusion behavior and
        # what Legion's event graph achieves automatically.
        bwd_done: List[int] = [0] * len(layers)
        for i in reversed(range(len(layers))):
            layer = layers[i]
            m_deg = strategy.model_degree(i)
            compute = (2.0 * batch_per_gpu * m_deg * layer.flops_per_sample
                       / m_deg / gpu_flops)
            op = group_op(
                f"{name}.bwd{i}[{it}]", gpus,
                [(acts.tiles, acts.fieldset("a", "g"), READ_WRITE),
                 (weights[i].tiles, weights[i].fieldset("dw"), READ_WRITE)])
            prev = prog.add(SimOp(op.name, gpus, compute,
                                  deps=[DepSpec(prev, "pointwise", 0.0)],
                                  proc_kind=ProcKind.GPU, operation=op,
                                  traced=traced))
            bwd_done[i] = prev
        for i in reversed(range(len(layers))):
            layer = layers[i]
            m_deg = strategy.model_degree(i)
            d_deg = max(1, gpus // m_deg)
            grad_bytes = 4.0 * layer.params / m_deg
            gi = bwd_done[i]
            if d_deg > 1:
                rop = group_op(
                    f"{name}.allreduce{i}[{it}]", gpus,
                    [(weights[i].tiles, weights[i].fieldset("dw"),
                      READ_WRITE)])
                gi = prog.add(SimOp(rop.name, gpus, 1e-6,
                                    deps=[DepSpec(gi, "all", grad_bytes)],
                                    proc_kind=ProcKind.GPU, operation=rop,
                                    traced=traced))
            uop = group_op(
                f"{name}.update{i}[{it}]", gpus,
                [(weights[i].tiles, weights[i].fieldset("w", "dw"),
                  READ_WRITE)])
            last_update = prog.add(SimOp(
                uop.name, gpus, 1e-6, deps=[DepSpec(gi, "pointwise", 0.0)],
                proc_kind=ProcKind.GPU, operation=uop, traced=traced))
        if timed:
            prog.end_iteration(start)  # type: ignore[arg-type]
    return prog
