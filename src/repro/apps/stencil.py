"""2-D stencil benchmark (paper §5.1, Fig. 12).

An implicitly parallel nearest-neighbor stencil: each iteration every tile
updates its cells from the 4 neighboring tiles' ghost cells.  Written with
two buffers (``a``/``b``) swapped between iterations so each group launch is
pairwise independent — the standard Regent stencil structure [6].

Two artifacts:

* :func:`build_program` — the performance-layer operation stream (real
  regions + partitions for the coarse analysis; 2-D halo pattern hints for
  execution).  The trace body spans two iterations because the buffer swap
  gives the op stream period 2.
* :func:`stencil2d_control` — a functional control program for the real
  runtime, used by correctness tests and ``examples/stencil2d.py``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..oracle import READ_ONLY, READ_WRITE
from ..sim.machine import MachineSpec, ProcKind
from ..sim.workload import DepSpec, SimOp, SimProgram
from .common import TiledField, grid_dims, group_op

__all__ = ["build_program", "stencil2d_control", "stencil2d_tiled_control",
           "reference_stencil2d", "CELLS_PER_GPU", "SECONDS_PER_CELL",
           "STRONG_TOTAL_CELLS"]

# Weak-scaling problem size per GPU and per-cell update cost: ~1.25e9
# cells/s per node (Fig. 12a's y-axis, x1e8) with ~1 ms task grain, which is
# the regime where the centralized controller's collapse point lands inside
# the plotted node range exactly as in the paper.
CELLS_PER_GPU = 1_250_000
SECONDS_PER_CELL = 8.0e-10
# Strong-scaling default problem size: small enough that runtime overheads
# become visible inside the 1-512 node range (paper: SCR degrades past 128
# nodes, DCR past 64).
STRONG_TOTAL_CELLS = 8_000_000


def build_program(machine: MachineSpec, *, weak: bool = True,
                  total_cells: Optional[int] = None, iterations: int = 10,
                  warmup: int = 2, tracing: bool = True) -> SimProgram:
    """The Fig. 12 stencil as a simulated operation stream.

    Weak scaling fixes :data:`CELLS_PER_GPU` per GPU; strong scaling divides
    ``total_cells`` across GPUs.
    """
    num_tiles = max(1, machine.total_procs(ProcKind.GPU))
    if weak:
        cells_per_tile = CELLS_PER_GPU
        total = cells_per_tile * num_tiles
    else:
        total = total_cells if total_cells is not None else STRONG_TOTAL_CELLS
        cells_per_tile = max(1, total // num_tiles)
    grid = grid_dims(num_tiles, 2)
    duration = cells_per_tile * SECONDS_PER_CELL
    # Ghost exchange: one tile edge of doubles in each of 4 directions.
    edge = int(math.sqrt(cells_per_tile))
    halo_bytes = edge * 8.0
    offsets = ((-1, 0), (1, 0), (0, -1), (0, 1))

    field = TiledField.build("cells", [("a", "f8"), ("b", "f8")], num_tiles)
    prog = SimProgram(f"stencil2d-{'weak' if weak else 'strong'}",
                      scr_applicable=True)
    prog.work_per_iteration = total

    prev_idx: Optional[int] = None
    for it in range(warmup + iterations):
        timed = it >= warmup
        start = prog.begin_iteration() if timed else None
        read_f, write_f = ("a", "b") if it % 2 == 0 else ("b", "a")
        op = group_op(
            f"stencil[{it}]", num_tiles,
            [(field.tiles, field.fieldset(write_f), READ_WRITE),
             (field.ghost, field.fieldset(read_f), READ_ONLY)])
        deps = []
        if prev_idx is not None:
            deps.append(DepSpec(prev_idx, "halo", halo_bytes, offsets))
        prev_idx = prog.add(SimOp(
            f"stencil[{it}]", num_tiles, duration, deps=deps,
            proc_kind=ProcKind.GPU, operation=op, grid=grid,
            traced=tracing and it >= 2))
        if timed:
            prog.end_iteration(start)  # type: ignore[arg-type]
    return prog


# ---------------------------------------------------------------------------
# Functional control program (real runtime)
# ---------------------------------------------------------------------------

def _stencil_task(point, out_arg, ghost_arg, write_f: str, read_f: str):
    """5-point stencil over one tile using the ghost view."""
    out = out_arg[write_f].view
    src = ghost_arg[read_f].view
    orect = out_arg.region.index_space.rect
    grect = ghost_arg.region.index_space.rect
    oy = orect.lo[0] - grect.lo[0]
    ox = orect.lo[1] - grect.lo[1]
    h, w = orect.extents
    padded = np.zeros((h + 2, w + 2))
    gy0, gx0 = oy - 1, ox - 1
    for dy in range(h + 2):
        sy = gy0 + dy
        if not 0 <= sy < src.shape[0]:
            continue
        x_lo = max(0, gx0)
        x_hi = min(src.shape[1], gx0 + w + 2)
        padded[dy, x_lo - gx0:x_hi - gx0] = src[sy, x_lo:x_hi]
    out[...] = 0.25 * (padded[:-2, 1:-1] + padded[2:, 1:-1]
                       + padded[1:-1, :-2] + padded[1:-1, 2:])


def stencil2d_control(ctx, n: int = 16, tiles: int = 4, steps: int = 4,
                      init: float = 1.0):
    """Jacobi-style 2-D stencil on an n x n grid with ``tiles`` row blocks.

    Returns the region so callers can inspect final field contents.
    """
    fs = ctx.create_field_space([("a", "f8"), ("b", "f8")], "Cell")
    grid = ctx.create_index_space((n, n), "grid")
    cells = ctx.create_region(grid, fs, "cells")
    owned = ctx.partition_equal(cells, tiles, dim=0, name="owned")
    ghost = ctx.partition_ghost(cells, owned, 1, dim=0, name="ghost")
    ctx.fill(cells, ["a", "b"], init)
    dom = list(range(tiles))
    for t in range(steps):
        read_f, write_f = ("a", "b") if t % 2 == 0 else ("b", "a")
        ctx.index_launch(
            _stencil_task, dom,
            [(owned, write_f, "rw"), (ghost, read_f, "ro")],
            args=(write_f, read_f))
    return cells


def reference_stencil2d(n: int = 16, steps: int = 4,
                        init: float = 1.0) -> np.ndarray:
    """Plain-NumPy reference for the functional control program."""
    a = np.full((n, n), init)
    b = np.zeros_like(a)
    for t in range(steps):
        src, dst = (a, b) if t % 2 == 0 else (b, a)
        padded = np.zeros((n + 2, n + 2))
        padded[1:-1, 1:-1] = src
        dst[...] = 0.25 * (padded[:-2, 1:-1] + padded[2:, 1:-1]
                           + padded[1:-1, :-2] + padded[1:-1, 2:])
    return a if steps % 2 == 0 else b


def stencil2d_tiled_control(ctx, n: int = 16, tx: int = 2, ty: int = 2,
                            steps: int = 4, init: float = 1.0):
    """The same Jacobi stencil with a full 2-D tile decomposition.

    Tiles are (i, j) colors of an n-D ``partition_tiles``; ghosts grow in
    both dimensions, so corner and edge exchanges all appear — the launch
    domain is the 2-D color space, exercising tuple launch points end to
    end (sharding, projection, hashing).
    """
    fs = ctx.create_field_space([("a", "f8"), ("b", "f8")], "Cell")
    grid = ctx.create_index_space((n, n), "grid")
    cells = ctx.create_region(grid, fs, "cells")
    owned = ctx.partition_tiles(cells, (tx, ty), name="owned2d")
    ghost = ctx.partition_ghost(cells, owned, 1, name="ghost2d")
    ctx.fill(cells, ["a", "b"], init)
    dom = [(i, j) for i in range(tx) for j in range(ty)]
    for t in range(steps):
        read_f, write_f = ("a", "b") if t % 2 == 0 else ("b", "a")
        ctx.index_launch(
            _stencil_task, dom,
            [(owned, write_f, "rw"), (ghost, read_f, "ro")],
            args=(write_f, read_f))
    return cells
