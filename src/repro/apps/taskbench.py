"""Task Bench and METG(50%) (paper §5.5, Fig. 21).

Task Bench (Slaughter et al., SC'20) measures runtime overhead via the
*minimum effective task granularity*: the smallest per-task duration at
which the system still achieves 50% efficiency (useful work / elapsed x
processors).  Higher runtime overhead => longer tasks needed => higher
METG(50%).

The Fig. 21 configuration: a 1-D stencil dependence pattern run as **four
independent copies** simultaneously (a modicum of task parallelism so the
runtime can hide latency), swept over task granularity, for the cross of
{tracing, no tracing} x {determinism checks (Safe), no checks}.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from ..models.dcr import DCRModel
from ..oracle import READ_ONLY, READ_WRITE
from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.machine import MachineSpec, ProcKind
from ..sim.workload import DepSpec, SimOp, SimProgram
from .common import TiledField, group_op

__all__ = ["build_program", "efficiency", "metg", "PATTERNS",
           "pattern_offsets"]


def pattern_offsets(pattern: str, step: int, width: int) -> tuple:
    """Task Bench dependence patterns: step-dependent neighbor offsets.

    The patterns follow the Task Bench paper's taxonomy (each task at step
    t+1 consumes these offsets of step t):

    * ``trivial``   — no dependences at all;
    * ``no_comm``   — each task depends only on its own predecessor;
    * ``stencil_1d``— left/right neighbors (the Fig. 21 configuration);
    * ``fft``       — butterfly: partner at distance 2^(t mod log2(width));
    * ``tree``      — binomial combining tree (distance doubles per step);
    * ``spread``    — a few long-range dependences scattered over the row.
    """
    if pattern == "trivial":
        return None                      # no dependence at all
    if pattern == "no_comm":
        return ()
    if pattern == "stencil_1d":
        return (-1, 1)
    if pattern == "fft":
        span = max(1, width.bit_length() - 1)
        d = 1 << (step % span)
        return (-d, d)
    if pattern == "tree":
        d = 1 << min(step, max(0, width.bit_length() - 2))
        return (-d, d)
    if pattern == "spread":
        return (-1, width // 3, 2 * width // 3)
    raise ValueError(f"unknown Task Bench pattern {pattern!r}")


PATTERNS = ("trivial", "no_comm", "stencil_1d", "fft", "tree", "spread")


def build_program(machine: MachineSpec, task_granularity: float, *,
                  copies: int = 4, steps: int = 12, warmup: int = 2,
                  tracing: bool = True,
                  pattern: str = "stencil_1d") -> SimProgram:
    """``copies`` interleaved task chains with the given task duration and
    Task Bench dependence pattern."""
    tiles_n = max(1, machine.nodes)    # one task per node per chain step
    fields: List[TiledField] = [
        TiledField.build(f"tb{c}", [("a", "f8"), ("b", "f8")], tiles_n)
        for c in range(copies)
    ]
    prog = SimProgram(f"taskbench-{pattern}", scr_applicable=True)
    # Useful work per timed iteration: copies x tiles tasks of length g.
    prog.work_per_iteration = copies * tiles_n * task_granularity

    prev: List[Optional[int]] = [None] * copies
    for it in range(warmup + steps):
        timed = it >= warmup
        start = prog.begin_iteration() if timed else None
        traced = tracing and it >= 2
        read_f, write_f = ("a", "b") if it % 2 == 0 else ("b", "a")
        offsets = pattern_offsets(pattern, it, tiles_n)
        for c, field in enumerate(fields):
            assert field.ghost is not None
            if offsets is None or offsets == ():
                # Local-only data flow: the op touches only its own tile.
                reqs = [(field.tiles, field.fieldset(write_f), READ_WRITE),
                        (field.tiles, field.fieldset(read_f), READ_ONLY)]
            else:
                reqs = [(field.tiles, field.fieldset(write_f), READ_WRITE),
                        (field.ghost, field.fieldset(read_f), READ_ONLY)]
            op = group_op(f"tb{c}[{it}]", tiles_n, reqs)
            deps = []
            if prev[c] is not None and offsets is not None:
                deps.append(DepSpec(prev[c], "halo", 1024.0,
                                    offsets or (0,)))
            prev[c] = prog.add(SimOp(
                op.name, tiles_n, task_granularity, deps=deps,
                proc_kind=ProcKind.CPU, operation=op, traced=traced))
        if timed:
            prog.end_iteration(start)  # type: ignore[arg-type]
    return prog


def efficiency(machine: MachineSpec, task_granularity: float, *,
               tracing, safe: bool,
               costs: CostModel = DEFAULT_COSTS, copies: int = 4,
               pattern: str = "stencil_1d", steps: int = 12) -> float:
    """Useful-work fraction achieved at the given granularity.

    ``tracing`` is True (app-annotated traces), False, or ``"auto"`` — the
    latter builds the program with **zero** trace annotations and lets the
    model's automatic trace identifier find the repeats itself.
    """
    prog = build_program(machine, task_granularity, copies=copies,
                         tracing=tracing is True, pattern=pattern,
                         steps=steps)
    model = DCRModel(machine, costs, safe_checks=safe, tracing=tracing)
    result = model.run(prog)
    if result.iteration_time <= 0:
        return 1.0
    # One processor per node runs `copies` tasks per iteration.
    ideal = copies * task_granularity
    return min(1.0, ideal / result.iteration_time)


def metg(machine: MachineSpec, *, tracing, safe: bool,
         target: float = 0.5, costs: CostModel = DEFAULT_COSTS,
         lo: float = 1e-7, hi: float = 1e-1, iters: int = 24,
         pattern: str = "stencil_1d", steps: int = 12) -> float:
    """METG(target): bisect the smallest granularity with efficiency >=
    ``target`` (Task Bench's metric, default 50%)."""
    if efficiency(machine, hi, tracing=tracing, safe=safe, costs=costs,
                  pattern=pattern, steps=steps) < target:
        return math.inf
    for _ in range(iters):
        mid = math.sqrt(lo * hi)
        if efficiency(machine, mid, tracing=tracing, safe=safe,
                      costs=costs, pattern=pattern, steps=steps) >= target:
            hi = mid
        else:
            lo = mid
        if hi / lo < 1.05:
            break
    return hi
