"""Hypersonic Task-based Research (HTR) solver proxy (paper §5.2, Fig. 17).

HTR performs multi-physics simulations of hypersonic flows at high
enthalpies and Mach numbers: 6th-order accurate 3-D flux reconstruction
(wide halos in each direction), stiff finite-rate chemistry (heavy, purely
local), and time-step controller reductions.  Its control flow is too
complex for static control replication (paper: "SCR's analysis is too
conservative"), so ``scr_applicable=False`` and the figure reports DCR-only
weak-scaling parallel efficiency: ~86% on 9216 Quartz cores, ~94% on 512
Lassen GPUs.
"""

from __future__ import annotations

from typing import Optional

from ..oracle import READ_ONLY, READ_WRITE
from ..sim.machine import MachineSpec, ProcKind
from ..sim.workload import DepSpec, SimOp, SimProgram
from .common import TiledField, grid_dims, group_op, single_op

__all__ = ["build_program", "CELLS_PER_GPU", "CELLS_PER_CORE"]

CELLS_PER_GPU = 96 ** 3
CELLS_PER_CORE = 48 ** 3
SECONDS_PER_CELL_GPU = 6.0e-9
SECONDS_PER_CELL_CPU = 1.2e-7
# 6th-order stencils need 3-cell halos of ~10 conserved/primitive fields.
HALO_BYTES_PER_FACE_CELL = 3 * 10 * 8.0


def build_program(machine: MachineSpec, *, gpu: bool = True,
                  iterations: int = 8, warmup: int = 2,
                  tracing: bool = True) -> SimProgram:
    if gpu:
        tiles_n = max(1, machine.total_procs(ProcKind.GPU))
        cells = CELLS_PER_GPU
        per_cell = SECONDS_PER_CELL_GPU
        kind = ProcKind.GPU
    else:
        tiles_n = max(1, machine.total_procs(ProcKind.CPU))
        cells = CELLS_PER_CORE
        per_cell = SECONDS_PER_CELL_CPU
        kind = ProcKind.CPU
    grid = grid_dims(tiles_n, 3)
    face_cells = int(round(cells ** (2.0 / 3.0)))
    halo_bytes = face_cells * HALO_BYTES_PER_FACE_CELL

    state = TiledField.build(
        "htr_state", [("cons", "f8"), ("prim", "f8"), ("grad", "f8")],
        tiles_n)
    chem = TiledField.build("htr_chem", [("Y", "f8"), ("w", "f8")], tiles_n,
                            with_ghost=False)
    dtf = TiledField.build("htr_dt", [("dt", "f8")], tiles_n,
                           with_ghost=False)
    assert state.ghost is not None

    prog = SimProgram("htr", scr_applicable=False)
    prog.work_per_iteration = cells * tiles_n

    def axis_offsets(d: int) -> tuple:
        off_lo, off_hi = [0, 0, 0], [0, 0, 0]
        off_lo[d], off_hi[d] = -1, 1
        return (tuple(off_lo), tuple(off_hi))

    prev_tail: Optional[int] = None
    for it in range(warmup + iterations):
        timed = it >= warmup
        start = prog.begin_iteration() if timed else None
        traced = tracing and it >= 1

        # 1. Primitive/gradient reconstruction (local).
        op = group_op(
            f"reconstruct[{it}]", tiles_n,
            [(state.tiles, state.fieldset("cons", "prim", "grad"),
              READ_WRITE)])
        deps = ([DepSpec(prev_tail, "pointwise", 0.0)]
                if prev_tail is not None else [])
        last = prog.add(SimOp(op.name, tiles_n, cells * per_cell * 0.15,
                              deps=deps, proc_kind=kind, operation=op,
                              grid=grid, traced=traced))

        # 2-4. Flux reconstruction per axis.  Interior cells need no ghost
        # data, so each axis runs as an interior task (bulk of the work, no
        # halo) plus a boundary task gated on the exchange — Legion's
        # dependence analysis discovers this overlap automatically, which is
        # how HTR holds 94% efficiency on Lassen despite its wide halos.
        for d in range(3):
            entry = last
            iop = group_op(
                f"flux{d}_int[{it}]", tiles_n,
                [(state.tiles, state.fieldset("cons"), READ_WRITE),
                 (state.tiles, state.fieldset("prim", "grad"), READ_ONLY)])
            i_int = prog.add(SimOp(
                iop.name, tiles_n, cells * per_cell * 0.10,
                deps=[DepSpec(entry, "pointwise", 0.0)],
                proc_kind=kind, operation=iop, grid=grid, traced=traced))
            bop = group_op(
                f"flux{d}_bnd[{it}]", tiles_n,
                [(state.tiles, state.fieldset("cons"), READ_WRITE),
                 (state.ghost, state.fieldset("prim", "grad"), READ_ONLY)])
            i_bnd = prog.add(SimOp(
                bop.name, tiles_n, cells * per_cell * 0.02,
                deps=[DepSpec(entry, "halo", halo_bytes, axis_offsets(d))],
                proc_kind=kind, operation=bop, grid=grid, traced=traced))
            last = i_bnd
            _join = (i_int, i_bnd)

        # 5. Finite-rate chemistry (the dominant, purely local work).
        op = group_op(
            f"chemistry[{it}]", tiles_n,
            [(chem.tiles, chem.fieldset("Y", "w"), READ_WRITE),
             (state.tiles, state.fieldset("prim"), READ_ONLY)])
        last = prog.add(SimOp(op.name, tiles_n, cells * per_cell * 0.40,
                              deps=[DepSpec(_join[0], "pointwise", 0.0),
                                    DepSpec(_join[1], "pointwise", 0.0)],
                              proc_kind=kind, operation=op, grid=grid,
                              traced=traced))

        # 6. Time integration (local) + per-tile dt candidate.
        op = group_op(
            f"advance[{it}]", tiles_n,
            [(state.tiles, state.fieldset("cons"), READ_WRITE),
             (chem.tiles, chem.fieldset("w"), READ_ONLY),
             (dtf.tiles, dtf.fieldset("dt"), READ_WRITE)])
        last = prog.add(SimOp(op.name, tiles_n, cells * per_cell * 0.09,
                              deps=[DepSpec(last, "pointwise", 0.0)],
                              proc_kind=kind, operation=op, grid=grid,
                              traced=traced))

        # 7. Global dt reduction.
        rop = single_op(f"reduce_dt[{it}]",
                        [(dtf.region, dtf.fieldset("dt"), READ_ONLY)])
        prev_tail = prog.add(SimOp(rop.name, 1, 1e-6,
                                   deps=[DepSpec(last, "all", 8.0)],
                                   proc_kind=kind, operation=rop,
                                   traced=traced, blocks_analysis=True))
        if timed:
            prog.end_iteration(start)  # type: ignore[arg-type]
    return prog
