"""Soleil-X multi-physics solver proxy (paper §5.2, Fig. 16).

Soleil-X couples three physics modules — fluid flow (3-D structured
stencils), Lagrangian particles (locate/advance/feedback), and DOM thermal
radiation (directional wavefront sweeps) — exchanging data between the
representations every iteration.  Two properties matter for the
reproduction:

* the number of partitions needed (wavefront angles x directions) is not
  statically fixed, so **static control replication cannot compile it**
  (``scr_applicable=False``) — the reason the paper runs it only under DCR;
* the full 3-D nearest-neighbor communication pattern only materializes
  once the tile grid has extent > 1 in all three dimensions, which on
  Sierra (4 GPUs/node) happens at 32 nodes — producing the efficiency drop
  the paper calls out, after which weak scaling stays ~82% at 1024 GPUs.
"""

from __future__ import annotations

from typing import List, Optional

from ..oracle import READ_ONLY, READ_WRITE, reduce_priv
from ..sim.machine import MachineSpec, ProcKind
from ..sim.workload import DepSpec, SimOp, SimProgram
from .common import TiledField, grid_dims, group_op

__all__ = ["build_program", "CELLS_PER_GPU", "SECONDS_PER_CELL"]

CELLS_PER_GPU = 64 ** 3            # fluid cells per GPU (weak scaling)
SECONDS_PER_CELL = 2.0e-8          # all three physics per cell-iteration
PARTICLES_PER_CELL = 0.5
# Face halo: one cell-wide slab of ~40 doubles per cell (fluid state +
# particle migration buffers + radiation intensities).
FACE_BYTES_PER_CELL_LAYER = 320.0


def _halo_offsets_3d() -> tuple:
    out = []
    for d in range(3):
        for s in (-1, 1):
            off = [0, 0, 0]
            off[d] = s
            out.append(tuple(off))
    return tuple(out)


def build_program(machine: MachineSpec, *, iterations: int = 8,
                  warmup: int = 2, tracing: bool = True) -> SimProgram:
    tiles_n = max(1, machine.total_procs(ProcKind.GPU))
    # Tiles arranged node-grid x (GPUs along the last axis): the node-level
    # decomposition stays 1-D/2-D at small scale and only completes the full
    # 3-D neighbor pattern around 16-32 nodes — the efficiency-drop point
    # the paper calls out.
    ngrid = grid_dims(max(1, machine.nodes), 3)
    grid = (ngrid[0], ngrid[1], ngrid[2] * max(1, machine.gpus_per_node))
    cells = CELLS_PER_GPU
    face_cells = int(round(cells ** (2.0 / 3.0)))
    halo_bytes = face_cells * FACE_BYTES_PER_CELL_LAYER
    offsets = _halo_offsets_3d()

    fluid = TiledField.build(
        "fluid", [("rho", "f8"), ("u", "f8"), ("T", "f8")], tiles_n)
    particles = TiledField.build(
        "particles", [("pos", "f8"), ("vel", "f8"), ("temp", "f8")], tiles_n)
    radiation = TiledField.build(
        "radiation", [("I", "f8"), ("S", "f8")], tiles_n)
    assert fluid.ghost is not None and particles.ghost is not None
    assert radiation.ghost is not None

    prog = SimProgram("soleil-x", scr_applicable=False)
    prog.work_per_iteration = cells * tiles_n

    # Work split across the physics modules (fluid-dominated).
    d_fluid = cells * SECONDS_PER_CELL * 0.45
    d_part = cells * PARTICLES_PER_CELL * SECONDS_PER_CELL * 0.6
    d_rad = cells * SECONDS_PER_CELL * 0.25 / 4   # per sweep quadrant

    prev_fluid: Optional[int] = None
    for it in range(warmup + iterations):
        timed = it >= warmup
        start = prog.begin_iteration() if timed else None
        traced = tracing and it >= 1

        # 1. Fluid step: 3-D halo exchange on the fluid state.
        fop = group_op(
            f"fluid_step[{it}]", tiles_n,
            [(fluid.tiles, fluid.fieldset("rho", "u", "T"), READ_WRITE),
             (fluid.ghost, fluid.fieldset("rho", "u"), READ_ONLY)])
        deps = ([DepSpec(prev_fluid, "halo", halo_bytes, offsets)]
                if prev_fluid is not None else [])
        i_fluid = prog.add(SimOp(fop.name, tiles_n, d_fluid, deps=deps,
                                 proc_kind=ProcKind.GPU, operation=fop,
                                 grid=grid, traced=traced))

        # 2. Particle step: advance using local fluid state, with particles
        #    migrating to neighbor tiles (aliased ghost partition).
        pop = group_op(
            f"particle_step[{it}]", tiles_n,
            [(particles.tiles, particles.fieldset("pos", "vel", "temp"),
              READ_WRITE),
             (particles.ghost, particles.fieldset("pos"), reduce_priv("+")),
             (fluid.tiles, fluid.fieldset("u", "T"), READ_ONLY)])
        i_part = prog.add(SimOp(
            pop.name, tiles_n, d_part,
            deps=[DepSpec(i_fluid, "halo", halo_bytes / 8, offsets)],
            proc_kind=ProcKind.GPU, operation=pop, grid=grid, traced=traced))

        # 3. Radiation: four DOM sweep quadrants, each a wavefront whose
        #    tile-to-tile dependences follow one diagonal direction.
        i_sweep = i_part
        for q, sweep_off in enumerate(((1, 0, 0), (-1, 0, 0),
                                       (0, 1, 0), (0, -1, 0))):
            rop = group_op(
                f"rad_sweep{q}[{it}]", tiles_n,
                [(radiation.tiles, radiation.fieldset("I"), READ_WRITE),
                 (radiation.ghost, radiation.fieldset("I"), READ_ONLY),
                 (fluid.tiles, fluid.fieldset("T"), READ_ONLY)])
            i_sweep = prog.add(SimOp(
                rop.name, tiles_n, d_rad,
                deps=[DepSpec(i_sweep, "halo", halo_bytes / 16,
                              (sweep_off,))],
                proc_kind=ProcKind.GPU, operation=rop, grid=grid,
                traced=traced))

        # 4. Couple radiation back into the fluid energy.
        cop = group_op(
            f"couple[{it}]", tiles_n,
            [(fluid.tiles, fluid.fieldset("T"), READ_WRITE),
             (radiation.tiles, radiation.fieldset("I"), READ_ONLY),
             (particles.tiles, particles.fieldset("temp"), READ_ONLY)])
        prev_fluid = prog.add(SimOp(
            cop.name, tiles_n, d_fluid * 0.15,
            deps=[DepSpec(i_sweep, "pointwise", 0.0),
                  DepSpec(i_part, "pointwise", 0.0)],
            proc_kind=ProcKind.GPU, operation=cop, grid=grid, traced=traced))
        if timed:
            prog.end_iteration(start)  # type: ignore[arg-type]
    return prog
