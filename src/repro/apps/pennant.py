"""Pennant mini-app proxy (paper §5.1, Fig. 14).

Pennant is Lagrangian staggered-grid hydrodynamics on an unstructured 2-D
mesh.  Each cycle runs a fixed sequence of phases over the mesh pieces —
corner-force gathers that exchange boundary point data with neighbor pieces,
purely local zone updates, and a global minimum reduction to pick the next
time step ``dt``.  The dt collective blocks all downstream work, which the
paper identifies as the efficiency limiter for the two fastest systems.

The Fig. 14 comparison is reproduced with one operation stream executed by
five models:

* ``MPI CPU-only``    — explicit, CPU durations;
* ``MPI+CUDA``        — explicit, one rank per GPU, all exchanges staged
  through host memory (no GPUDirect, no NVLink);
* ``MPI+CUDA+GPUDirect`` — explicit with direct NIC<->GPU and NVLink P2P;
* ``Legion NoCR``     — centralized Legion analysis;
* ``Legion DCR``      — one shard per node, blocked sharding, NVLink for
  intra-node exchanges, host staging for inter-node (GASNet lacks
  GPUDirect — paper §5.1).
"""

from __future__ import annotations

import math
from typing import Optional

from ..oracle import READ_ONLY, READ_WRITE, reduce_priv
from ..sim.machine import MachineSpec, ProcKind
from ..sim.workload import DepSpec, SimOp, SimProgram
from .common import TiledField, group_op, single_op

__all__ = ["build_program", "ZONES_PER_GPU", "SECONDS_PER_ZONE_GPU",
           "CPU_SLOWDOWN"]

ZONES_PER_GPU = 15_000_000
SECONDS_PER_ZONE_GPU = 4.0e-9      # ~60 ms of zone work per GPU per cycle
CPU_SLOWDOWN = 20.0                # one CPU rank vs one V100
# Boundary traffic per neighbor exchange, amortized per zone.  Pennant's
# gathers move multiple point fields plus corner data along wide piece
# boundaries; this calibration reproduces the paper's measured ratios
# (DCR ~2.3x over MPI+CUDA at 256 GPUs, ~14% under MPI+CUDA+GPUDirect).
HALO_BYTES_PER_ZONE = 2.0


def build_program(machine: MachineSpec, *, cpu: bool = False,
                  iterations: int = 10, warmup: int = 2,
                  tracing: bool = True) -> SimProgram:
    """One Pennant run sized to the machine (weak scaling per GPU)."""
    pieces = max(1, machine.total_procs(ProcKind.GPU))
    zones = ZONES_PER_GPU
    per_zone = SECONDS_PER_ZONE_GPU * (CPU_SLOWDOWN if cpu else 1.0)
    kind = ProcKind.CPU if cpu else ProcKind.GPU
    halo_bytes = zones * HALO_BYTES_PER_ZONE
    offsets = (-1, 1)   # 1-D piece ring; mesh pieces exchange with neighbors

    zones_f = TiledField.build(
        "zones", [("rho", "f8"), ("e", "f8"), ("p", "f8")], pieces,
        with_ghost=False)
    points_f = TiledField.build(
        "points", [("x", "f8"), ("f", "f8"), ("m", "f8")], pieces)
    dt_f = TiledField.build("dtscratch", [("dt", "f8")], pieces,
                            with_ghost=False)
    assert points_f.ghost is not None

    prog = SimProgram("pennant", scr_applicable=True)
    prog.work_per_iteration = 1.0   # throughput axis is iterations/s

    # Phase fractions of the per-cycle zone work.
    # Pennant runs ~16 task launches per cycle (calcCtrs, calcVols,
    # calcSurfVecs, calcRho, calcCrnrMass, calcForce{Pgas,TTS}, sumCrnrForce,
    # calcAccel, advPosn, calcWork, calcEnergy, ...); the launch count is
    # what the centralized analysis pays for, so it is modeled faithfully
    # even though the work fractions are lumped into five physical phases.
    phases = [
        ("calc_forces", 0.30, 4),       # (name, work fraction, sub-launches)
        ("sum_crnr_force", 0.20, 2),
        ("calc_accel_adv", 0.25, 4),
        ("calc_work_rho", 0.20, 4),
        ("calc_dt_piece", 0.05, 1),
    ]

    prev_iter_tail: Optional[int] = None
    for it in range(warmup + iterations):
        timed = it >= warmup
        start = prog.begin_iteration() if timed else None
        traced = tracing and it >= 1

        def phase_reqs(name: str):
            if name == "calc_forces":
                # Corner-force gather: reads ghost point data from neighbors.
                return [(points_f.ghost, points_f.fieldset("x", "m"),
                         READ_ONLY),
                        (zones_f.tiles, zones_f.fieldset("p"), READ_ONLY),
                        (points_f.tiles, points_f.fieldset("f"), READ_WRITE)]
            if name == "sum_crnr_force":
                # Sum corner forces back onto points (reduction into ghosts).
                return [(points_f.ghost, points_f.fieldset("f"),
                         reduce_priv("+"))]
            if name == "calc_accel_adv":
                return [(points_f.tiles, points_f.fieldset("x", "f", "m"),
                         READ_WRITE)]
            if name == "calc_work_rho":
                return [(zones_f.tiles, zones_f.fieldset("rho", "e", "p"),
                         READ_WRITE),
                        (points_f.tiles, points_f.fieldset("x"), READ_ONLY)]
            return [(zones_f.tiles, zones_f.fieldset("rho", "e"), READ_ONLY),
                    (dt_f.tiles, dt_f.fieldset("dt"), READ_WRITE)]

        last = prev_iter_tail
        i5 = -1
        for pname, fraction, splits in phases:
            ghosted = pname in ("calc_forces", "sum_crnr_force")
            for s in range(splits):
                op = group_op(f"{pname}.{s}[{it}]", pieces, phase_reqs(pname))
                deps = []
                if last is not None:
                    if ghosted and s == 0:
                        deps.append(DepSpec(last, "halo", halo_bytes, offsets))
                    else:
                        deps.append(DepSpec(last, "pointwise", 0.0))
                last = prog.add(SimOp(
                    op.name, pieces, zones * per_zone * fraction / splits,
                    deps=deps, proc_kind=kind, operation=op, traced=traced))
            if pname == "calc_accel_adv":
                prev_iter_tail_candidate = last
        i5 = last

        # Global dt min-reduction: blocks every downstream task and adds
        #    latency with processor count — the paper's noted efficiency
        #    limiter for the fastest implementations.
        op6 = single_op(f"reduce_dt[{it}]",
                        [(dt_f.region, dt_f.fieldset("dt"), READ_ONLY)])
        prog.add(SimOp(op6.name, 1, 1e-6,
                       deps=[DepSpec(i5, "all", 8.0)],
                       proc_kind=kind, operation=op6, traced=traced,
                       blocks_analysis=True))
        # Next iteration's gather needs the newly advanced point positions.
        prev_iter_tail = prev_iter_tail_candidate
        if timed:
            prog.end_iteration(start)  # type: ignore[arg-type]
    return _wire_dt_deps(prog)


def _wire_dt_deps(prog: SimProgram) -> SimProgram:
    """Make each iteration's first op depend on the previous dt reduction."""
    last_dt: Optional[int] = None
    for op in prog.ops:
        if op.name.startswith("calc_forces.0[") and last_dt is not None:
            op.deps.append(DepSpec(last_dt, "all", 8.0))
        if op.name.startswith("reduce_dt["):
            last_dt = op.index
    return prog
