"""Functional mini-HTR: advection-diffusion with stiff local chemistry.

`repro.apps.htr` models the HTR solver's performance (Fig. 17); this module
reproduces its *computational structure* at mini scale: a transported
scalar field with halo exchanges per step, a chemically reacting species
whose update is purely local but dominates the work (HTR's finite-rate
chemistry), sub-cycled to handle stiffness, and a CFL-style global dt
control read by the control program — exactly the data-dependent control
flow that puts HTR beyond static control replication.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..runtime.runtime import Context

__all__ = ["htr_mini_control", "reference_htr_mini"]

DIFF = 0.15            # diffusion coefficient
ADV = 0.4              # advection speed (upwind)
RATE = 4.0             # Arrhenius-ish reaction rate
SUBCYCLES = 4          # chemistry sub-steps per fluid step
CFL_LIMIT = 0.45


def _initial(ncells: int) -> Tuple[np.ndarray, np.ndarray]:
    x = np.arange(ncells)
    temp = 1.0 + 2.0 * np.exp(-((x - ncells / 4.0) ** 2) / 8.0)
    fuel = np.full(ncells, 0.8)
    return temp, fuel


def _transport(point, cells, ghost, dt):
    """Upwind advection + diffusion of temperature (halo reads)."""
    out = cells["t_new"].view
    src = ghost["temp"].view
    lo = cells.region.index_space.rect.lo[0] \
        - ghost.region.index_space.rect.lo[0]
    n = out.shape[0]
    for i in range(n):
        gi = lo + i
        left = src[gi - 1] if gi - 1 >= 0 else src[gi]
        right = src[gi + 1] if gi + 1 < src.shape[0] else src[gi]
        adv = -ADV * (src[gi] - left)          # upwind, u > 0
        diff = DIFF * (left - 2 * src[gi] + right)
        out[i] = src[gi] + dt * (adv + diff)


def _chemistry(point, cells, dt):
    """Stiff local reaction, sub-cycled (the HTR work dominator)."""
    temp = cells["t_new"].view
    fuel = cells["fuel"].view
    sub = dt / SUBCYCLES
    for _ in range(SUBCYCLES):
        rate = RATE * fuel * np.exp(-2.0 / np.maximum(temp, 1e-3))
        burn = np.minimum(fuel, rate * sub)
        fuel -= burn
        temp += 5.0 * burn


def _commit(point, cells):
    cells["temp"].view[...] = cells["t_new"].view


def _dt_candidate(point, cells):
    """CFL bound from the tile's peak temperature (wave speed proxy)."""
    t = cells["temp"].view
    speed = ADV + float(np.sqrt(np.max(t)))
    return CFL_LIMIT / speed


def htr_mini_control(ctx: Context, ncells: int = 32, tiles: int = 4,
                     steps: int = 6, dt_init: float = 0.1):
    """Run ``steps`` of the reacting-flow solver; returns the cells region."""
    temp0, fuel0 = _initial(ncells)
    fs = ctx.create_field_space(
        [("temp", "f8"), ("t_new", "f8"), ("fuel", "f8")], "Cell")
    cells = ctx.create_region(ctx.create_index_space(ncells), fs, "cells")
    ctiles = ctx.partition_equal(cells, tiles, name="ctiles")
    cghost = ctx.partition_ghost(cells, ctiles, 1, name="cghost")
    ctx.fill(cells, "t_new", 0.0)

    def _init(point, arg, ts, fs_):
        lo = arg.region.index_space.rect.lo[0]
        for i in range(arg["temp"].view.shape[0]):
            arg["temp"].view[i] = ts[lo + i]
            arg["fuel"].view[i] = fs_[lo + i]

    dom = list(range(tiles))
    ctx.index_launch(_init, dom, [(ctiles, ["temp", "fuel"], "rw")],
                     args=(tuple(temp0), tuple(fuel0)))

    dt = dt_init
    for _step in range(steps):
        ctx.index_launch(_transport, dom,
                         [(ctiles, "t_new", "rw"), (cghost, "temp", "ro")],
                         args=(dt,))
        ctx.index_launch(_chemistry, dom,
                         [(ctiles, ["t_new", "fuel"], "rw")], args=(dt,))
        ctx.index_launch(_commit, dom, [(ctiles, ["temp", "t_new"], "rw")])
        fm = ctx.index_launch(_dt_candidate, dom, [(ctiles, "temp", "ro")])
        # Data-dependent dt: the kind of control flow SCR cannot compile.
        dt = min(fm.reduce(min), 1.5 * dt)
    return cells


def reference_htr_mini(ncells: int = 32, steps: int = 6,
                       dt_init: float = 0.1
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """NumPy reference; returns (temp, fuel)."""
    temp, fuel = _initial(ncells)
    temp, fuel = temp.copy(), fuel.copy()
    dt = dt_init
    for _ in range(steps):
        left = np.concatenate([[temp[0]], temp[:-1]])
        right = np.concatenate([temp[1:], [temp[-1]]])
        t_new = temp + dt * (-ADV * (temp - left)
                             + DIFF * (left - 2 * temp + right))
        sub = dt / SUBCYCLES
        for _s in range(SUBCYCLES):
            rate = RATE * fuel * np.exp(-2.0 / np.maximum(t_new, 1e-3))
            burn = np.minimum(fuel, rate * sub)
            fuel = fuel - burn
            t_new = t_new + 5.0 * burn
        temp = t_new
        # min over tiles of CFL/(ADV + sqrt(tile max)) equals the global
        # formula — the hottest tile holds the global maximum.
        cand = CFL_LIMIT / (ADV + np.sqrt(temp.max()))
        dt = min(cand, 1.5 * dt)
    return temp, fuel
