"""Shared helpers for building application operation streams.

Apps build *real* region trees and :class:`repro.core.Operation` streams so
the DCR model can run the genuine coarse analysis at full machine scale.
Because the coarse stage never looks below partition granularity, regions
can use *proxy geometry*: a few index points per tile, enough for aliasing
relations (disjoint tiling vs. overlapping ghosts) to be exact, while the
``nbytes``/``duration`` metadata carries the real problem size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..core import (BLOCKED, CoarseRequirement, IDENTITY_PROJECTION,
                    Operation)
from ..oracle import Privilege, READ_ONLY, READ_WRITE, WRITE_DISCARD
from ..regions import FieldSpace, IndexSpace, LogicalRegion, Partition

__all__ = ["grid_dims", "TiledField", "group_op", "single_op"]


def grid_dims(n: int, dims: int) -> Tuple[int, ...]:
    """Near-cubic factorization of ``n`` into ``dims`` factors.

    Used to arrange tiles in 2-D/3-D the way the apps' meshes are blocked;
    the residual factor lands in the first dimension.
    """
    if n < 1:
        raise ValueError("need at least one tile")
    out = []
    remaining = n
    for d in range(dims, 1, -1):
        f = max(1, round(remaining ** (1.0 / d)))
        while remaining % f != 0:
            f -= 1
        out.append(f)
        remaining //= f
    out.append(remaining)
    out.sort()
    return tuple(reversed(out))


@dataclass
class TiledField:
    """A root region with a disjoint tile partition and optional ghosts.

    Proxy geometry: ``cells_per_tile`` points along each tiled stripe; the
    default of 4 keeps ghost halos (1 cell) strictly smaller than tiles so
    aliasing is the same as at full resolution.
    """

    region: LogicalRegion
    tiles: Partition
    ghost: Optional[Partition] = None

    @classmethod
    def build(cls, name: str, fields: Sequence[Tuple[str, object]],
              num_tiles: int, cells_per_tile: int = 4,
              with_ghost: bool = True) -> "TiledField":
        fs = FieldSpace(fields, name=f"{name}_fields")
        space = IndexSpace.line(num_tiles * cells_per_tile, name=f"{name}_is")
        region = LogicalRegion(space, fs, name=name)
        tiles = region.partition_equal(num_tiles, name=f"{name}_tiles")
        ghost = (region.partition_ghost(tiles, 1, name=f"{name}_ghost")
                 if with_ghost else None)
        return cls(region=region, tiles=tiles, ghost=ghost)

    def field(self, name: str):
        return self.region.field_space[name]

    def fieldset(self, *names: str) -> frozenset:
        return frozenset(self.region.field_space[n] for n in names)


def group_op(name: str, domain_size: int,
             reqs: Sequence[Tuple[Partition, frozenset, Privilege]],
             sharding=BLOCKED) -> Operation:
    """A group launch over ``range(domain_size)`` with identity projection."""
    return Operation(
        "task",
        [CoarseRequirement(part, fields, priv, IDENTITY_PROJECTION)
         for part, fields, priv in reqs],
        launch_domain=list(range(domain_size)), sharding=sharding, name=name)


def single_op(name: str, reqs: Sequence[Tuple[LogicalRegion, frozenset,
                                              Privilege]],
              owner_shard: int = 0) -> Operation:
    return Operation(
        "task",
        [CoarseRequirement(region, fields, priv)
         for region, fields, priv in reqs],
        owner_shard=owner_shard, name=name)
