"""Functional mini-Soleil: coupled fluid/particle physics, for real.

`repro.apps.soleil` models Soleil-X's performance (Fig. 16); this module
captures its *structure* at mini scale so the runtime can be verified on a
genuinely multi-physics program: two regions with different partitions
(grid cells, Lagrangian particles), per-step phases that couple them in
both directions, and the reduction-into-shared-cells pattern that makes
static analysis of such codes hopeless (which is why the paper runs
Soleil-X only under DCR).

The physics: 1-D heat diffusion on a periodic-free rod, with tracer
particles advecting through the grid, relaxing toward the local cell
temperature, and depositing heat back via a ``+`` reduction over the whole
cell region (a particle may wander into any tile's cells).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..runtime.runtime import Context

__all__ = ["soleil_mini_control", "reference_soleil_mini"]

ALPHA = 0.2          # diffusion coefficient (stable for dt=1 grid units)
K_ABSORB = 0.3       # particle relaxation toward the cell temperature
K_DEPOSIT = 0.1      # heat deposited back per particle


def _initial(ncells: int, nparticles: int
             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    cell_t = np.where(np.arange(ncells) < ncells // 2, 2.0, 0.5)
    # Deterministic particle layout: spread across the rod, alternating
    # velocities, starting cold.
    px = (np.arange(nparticles) + 0.5) * ncells / nparticles
    pu = np.where(np.arange(nparticles) % 2 == 0, 0.35, -0.25)
    pt = np.zeros(nparticles)
    return cell_t, px, pu, pt


def _diffuse(point, cells_arg, ghost_arg):
    out = cells_arg["t_new"].view
    src = ghost_arg["t"].view
    lo = cells_arg.region.index_space.rect.lo[0] \
        - ghost_arg.region.index_space.rect.lo[0]
    n = out.shape[0]
    total = ghost_arg["t"].region.root().index_space.volume
    for i in range(n):
        gi = lo + i
        left = src[gi - 1] if gi - 1 >= 0 else src[gi]
        right = src[gi + 1] if gi + 1 < src.shape[0] else src[gi]
        out[i] = src[gi] + ALPHA * (left - 2 * src[gi] + right)
    del total


def _commit_diffusion(point, cells_arg):
    cells_arg["t"].view[...] = cells_arg["t_new"].view


def _advance_particles(point, parts_arg, cells_whole, ncells):
    x = parts_arg["x"].view
    u = parts_arg["u"].view
    tp = parts_arg["tp"].view
    ct = cells_whole["t"]
    for i in range(x.shape[0]):
        x[i] += u[i]
        if x[i] < 0.0:
            x[i] = -x[i]
            u[i] = -u[i]
        if x[i] >= ncells:
            x[i] = 2 * ncells - x[i] - 1e-9
            u[i] = -u[i]
        cell = min(int(x[i]), ncells - 1)
        tp[i] += K_ABSORB * (ct[(cell,)] - tp[i])


def _deposit_heat(point, parts_arg, cells_red, ncells):
    x = parts_arg["x"].view
    tp = parts_arg["tp"].view
    acc = cells_red["t"]
    for i in range(x.shape[0]):
        cell = min(int(x[i]), ncells - 1)
        acc.reduce((cell,), K_DEPOSIT * tp[i])


def soleil_mini_control(ctx: Context, ncells: int = 32, tiles: int = 4,
                        nparticles: int = 16, steps: int = 6):
    """Run the coupled solver; returns (cells, particles) regions."""
    cell_t0, px0, pu0, pt0 = _initial(ncells, nparticles)
    cfs = ctx.create_field_space([("t", "f8"), ("t_new", "f8")], "Cell")
    pfs = ctx.create_field_space([("x", "f8"), ("u", "f8"), ("tp", "f8")],
                                 "Particle")
    cells = ctx.create_region(ctx.create_index_space(ncells), cfs, "cells")
    parts = ctx.create_region(ctx.create_index_space(nparticles), pfs,
                              "particles")
    ctiles = ctx.partition_equal(cells, tiles, name="ctiles")
    cghost = ctx.partition_ghost(cells, ctiles, 1, name="cghost")
    ptiles = ctx.partition_equal(parts, tiles, name="ptiles")

    ctx.fill(cells, "t_new", 0.0)

    def _init(point, c_arg, p_arg, ct, xs, us, ts):
        clo = c_arg.region.index_space.rect.lo[0]
        for i in range(c_arg["t"].view.shape[0]):
            c_arg["t"].view[i] = ct[clo + i]
        plo = p_arg.region.index_space.rect.lo[0]
        for i in range(p_arg["x"].view.shape[0]):
            p_arg["x"].view[i] = xs[plo + i]
            p_arg["u"].view[i] = us[plo + i]
            p_arg["tp"].view[i] = ts[plo + i]

    dom = list(range(tiles))
    ctx.index_launch(_init, dom,
                     [(ctiles, "t", "rw"), (ptiles, ["x", "u", "tp"], "rw")],
                     args=(tuple(cell_t0), tuple(px0), tuple(pu0),
                           tuple(pt0)))

    for _step in range(steps):
        # 1. Fluid: diffusion with ghost reads, double-buffered.
        ctx.index_launch(_diffuse, dom,
                         [(ctiles, "t_new", "rw"), (cghost, "t", "ro")])
        ctx.index_launch(_commit_diffusion, dom,
                         [(ctiles, ["t", "t_new"], "rw")])
        # 2. Particles: advect and absorb from *any* cell (whole-region
        #    read: a particle may be anywhere).
        ctx.index_launch(_advance_particles, dom,
                         [(ptiles, ["x", "u", "tp"], "rw"),
                          (cells, "t", "ro")],
                         args=(ncells,))
        # 3. Coupling back: heat deposition via a commutative reduction
        #    over the whole cell region.
        ctx.index_launch(_deposit_heat, dom,
                         [(ptiles, ["x", "tp"], "ro"),
                          (cells, "t", "red<+>")],
                         args=(ncells,))
    return cells, parts


def reference_soleil_mini(ncells: int = 32, nparticles: int = 16,
                          steps: int = 6
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """NumPy reference; returns (cell_t, particle_x, particle_tp)."""
    ct, px, pu, pt = _initial(ncells, nparticles)
    ct = ct.copy()
    for _ in range(steps):
        left = np.concatenate([[ct[0]], ct[:-1]])
        right = np.concatenate([ct[1:], [ct[-1]]])
        ct = ct + ALPHA * (left - 2 * ct + right)
        for i in range(nparticles):
            px[i] += pu[i]
            if px[i] < 0.0:
                px[i] = -px[i]
                pu[i] = -pu[i]
            if px[i] >= ncells:
                px[i] = 2 * ncells - px[i] - 1e-9
                pu[i] = -pu[i]
            cell = min(int(px[i]), ncells - 1)
            pt[i] += K_ABSORB * (ct[cell] - pt[i])
        for i in range(nparticles):
            cell = min(int(px[i]), ncells - 1)
            ct[cell] += K_DEPOSIT * pt[i]
    return ct, px, pt
