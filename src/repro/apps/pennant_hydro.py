"""Functional Pennant: staggered-grid Lagrangian hydrodynamics, for real.

`repro.apps.pennant` models Pennant's *performance* (Fig. 14); this module
implements the actual physics at mini scale so the runtime's correctness
can be checked on a genuinely Pennant-shaped program: a staggered mesh
(cell-centered density/energy/pressure, node-centered position/velocity),
per-cycle phases that exchange boundary data between zone and point
partitions, and a global CFL time-step reduction read by the control
program — the structure whose dt collective Fig. 14 discusses.

The 1-D scheme is the classic von Neumann-Richtmyer staggered-grid method
(Pennant's ancestor), run here on the Sod shock tube.  A pure-NumPy
reference allows exact comparison.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..runtime.runtime import Context

__all__ = ["pennant_control", "reference_pennant", "sod_initial_state",
           "GAMMA"]

GAMMA = 1.4
CFL = 0.3
Q_VISC = 1.5          # quadratic artificial-viscosity coefficient


def sod_initial_state(nzones: int) -> Tuple[np.ndarray, np.ndarray,
                                            np.ndarray]:
    """Sod shock tube: (x_points, rho_zones, e_zones)."""
    x = np.linspace(0.0, 1.0, nzones + 1)
    rho = np.where(np.arange(nzones) < nzones // 2, 1.0, 0.125)
    p = np.where(np.arange(nzones) < nzones // 2, 1.0, 0.1)
    e = p / ((GAMMA - 1.0) * rho)       # specific internal energy
    return x, rho, e


# -- task bodies --------------------------------------------------------------


def _calc_eos(point, zones_arg):
    """p = (gamma-1) rho e, plus sound speed for the dt estimate."""
    z = zones_arg
    rho, e = z["rho"].view, z["e"].view
    z["p"].view[...] = (GAMMA - 1.0) * rho * e
    z["cs"].view[...] = np.sqrt(GAMMA * np.maximum(z["p"].view, 1e-30)
                                / np.maximum(rho, 1e-30))


def _calc_forces_adv(point, points_arg, zghost_arg, dt):
    """Accelerate and advance the tile's points from neighbor-zone state.

    Point j feels the pressure (+ artificial viscosity) difference between
    zones j-1 and j; domain boundary points are held fixed (reflecting
    walls), matching the reference.
    """
    pts = points_arg
    x, u, m = pts["x"].view, pts["u"].view, pts["m"].view
    g = zghost_arg
    p = g["p"].view
    q = g["q"].view
    glo = g.region.index_space.rect.lo[0]
    plo = pts.region.index_space.rect.lo[0]
    total_pts = pts.region.root().index_space.volume
    for i in range(x.shape[0]):
        j = plo + i                       # global point id
        if j == 0 or j == total_pts - 1:
            u[i] = 0.0
            continue
        left = (p[j - 1 - glo] + q[j - 1 - glo])
        right = (p[j - glo] + q[j - glo])
        force = left - right
        u[i] += dt * force / m[i]
        x[i] += dt * u[i]


def _calc_work_rho(point, zones_arg, pghost_arg, dt):
    """Update zone volume, density, artificial viscosity, and energy."""
    z = zones_arg
    rho, e = z["rho"].view, z["e"].view
    p, q = z["p"].view, z["q"].view
    zm = z["zm"].view
    g = pghost_arg
    gx, gu = g["x"].view, g["u"].view
    glo = g.region.index_space.rect.lo[0]
    zlo = z.region.index_space.rect.lo[0]
    for i in range(rho.shape[0]):
        j = zlo + i                       # global zone id
        xl, xr = gx[j - glo], gx[j + 1 - glo]
        ul, ur = gu[j - glo], gu[j + 1 - glo]
        vol = max(xr - xl, 1e-30)
        new_rho = zm[i] / vol
        du = ur - ul
        q[i] = Q_VISC * new_rho * du * du if du < 0.0 else 0.0
        # Internal-energy update: pdV work with the *pre-update* p + q.
        e[i] -= (p[i] + q[i]) * du * dt / zm[i]
        rho[i] = new_rho


def _calc_dt(point, zones_arg, pghost_arg):
    """This tile's CFL-limited dt candidate (returned as a future)."""
    z = zones_arg
    cs = z["cs"].view
    g = pghost_arg
    gx = g["x"].view
    glo = g.region.index_space.rect.lo[0]
    zlo = z.region.index_space.rect.lo[0]
    best = np.inf
    for i in range(cs.shape[0]):
        j = zlo + i
        width = max(gx[j + 1 - glo] - gx[j - glo], 1e-30)
        best = min(best, CFL * width / max(cs[i], 1e-30))
    return float(best)


# -- the control program ------------------------------------------------------


def pennant_control(ctx: Context, nzones: int = 24, tiles: int = 4,
                    cycles: int = 8, dt_init: float = 1e-3):
    """Run ``cycles`` of staggered-grid hydro; returns (zones, points).

    Each cycle: EOS -> point force/advect (reads zone ghosts) -> zone
    update (reads point ghosts) -> per-tile dt candidates reduced through a
    future map — the same global collective structure as full Pennant.
    """
    x0, rho0, e0 = sod_initial_state(nzones)
    zfs = ctx.create_field_space(
        [("rho", "f8"), ("e", "f8"), ("p", "f8"), ("q", "f8"),
         ("cs", "f8"), ("zm", "f8")], "Zone")
    pfs = ctx.create_field_space([("x", "f8"), ("u", "f8"), ("m", "f8")],
                                 "Point")
    zones = ctx.create_region(ctx.create_index_space(nzones), zfs, "zones")
    points = ctx.create_region(ctx.create_index_space(nzones + 1), pfs,
                               "points")
    ztiles = ctx.partition_equal(zones, tiles, name="ztiles")
    ptiles = ctx.partition_equal(points, tiles, name="ptiles")
    zghost = ctx.partition_ghost(zones, ztiles, 1, name="zghost")
    pghost = ctx.partition_ghost(points, ptiles, 1, name="pghost")

    ctx.fill(zones, ["q", "cs", "p"], 0.0)
    ctx.fill(points, "u", 0.0)

    def _init(p, z_arg, p_arg, xs, rhos, es):
        zlo = z_arg.region.index_space.rect.lo[0]
        for i in range(z_arg["rho"].view.shape[0]):
            j = zlo + i
            z_arg["rho"].view[i] = rhos[j]
            z_arg["e"].view[i] = es[j]
            z_arg["zm"].view[i] = rhos[j] * (xs[j + 1] - xs[j])
        plo = p_arg.region.index_space.rect.lo[0]
        for i in range(p_arg["x"].view.shape[0]):
            j = plo + i
            p_arg["x"].view[i] = xs[j]
            # Point mass: half of each adjacent zone's mass.
            m = 0.0
            if j > 0:
                m += 0.5 * rhos[j - 1] * (xs[j] - xs[j - 1])
            if j < len(rhos):
                m += 0.5 * rhos[j] * (xs[j + 1] - xs[j])
            p_arg["m"].view[i] = m

    dom = list(range(tiles))
    ctx.index_launch(_init, dom,
                     [(ztiles, ["rho", "e", "zm"], "rw"),
                      (ptiles, ["x", "m"], "rw")],
                     args=(tuple(x0), tuple(rho0), tuple(e0)))

    dt = dt_init
    for _cycle in range(cycles):
        ctx.index_launch(_calc_eos, dom,
                         [(ztiles, ["rho", "e", "p", "cs"], "rw")])
        ctx.index_launch(_calc_forces_adv, dom,
                         [(ptiles, ["x", "u", "m"], "rw"),
                          (zghost, ["p", "q"], "ro")],
                         args=(dt,))
        ctx.index_launch(_calc_work_rho, dom,
                         [(ztiles, ["rho", "e", "p", "q", "zm"], "rw"),
                          (pghost, ["x", "u"], "ro")],
                         args=(dt,))
        fm = ctx.index_launch(_calc_dt, dom,
                              [(ztiles, ["cs"], "ro"),
                               (pghost, ["x"], "ro")])
        # The global dt reduction every shard reads — Fig. 14's collective.
        dt = min(fm.reduce(min), 2.0 * dt)
    return zones, points


def reference_pennant(nzones: int = 24, cycles: int = 8,
                      dt_init: float = 1e-3
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pure-NumPy reference: returns (rho, e, x) after ``cycles``."""
    x, rho, e = sod_initial_state(nzones)
    x = x.copy()
    u = np.zeros(nzones + 1)
    zm = rho * np.diff(x)
    pm = np.zeros(nzones + 1)
    pm[:-1] += 0.5 * zm
    pm[1:] += 0.5 * zm
    q = np.zeros(nzones)
    dt = dt_init
    for _ in range(cycles):
        p = (GAMMA - 1.0) * rho * e
        cs = np.sqrt(GAMMA * np.maximum(p, 1e-30) / np.maximum(rho, 1e-30))
        # Point update.
        force = (p[:-1] + q[:-1]) - (p[1:] + q[1:])
        u[1:-1] += dt * force / pm[1:-1]
        u[0] = u[-1] = 0.0
        x[1:-1] += dt * u[1:-1]
        # Zone update.
        vol = np.maximum(np.diff(x), 1e-30)
        new_rho = zm / vol
        du = np.diff(u)
        q = np.where(du < 0.0, Q_VISC * new_rho * du * du, 0.0)
        e -= (p + np.where(du < 0.0, Q_VISC * new_rho * du * du, 0.0)) \
            * du * dt / zm
        rho = new_rho
        width = np.maximum(np.diff(x), 1e-30)
        dt = min(float(np.min(CFL * width / np.maximum(cs, 1e-30))),
                 2.0 * dt)
    return rho, e, x
