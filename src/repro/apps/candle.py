"""CANDLE Uno multi-layer perceptron (paper §5.3, Fig. 18).

The largest (pilot1) network from the CANDLE precision-medicine initiative:
an MLP over drug/cell features predicting dose response, with **768M
weights** — so pure data parallelism is dominated by gradient
synchronization (3 GB of gradients per iteration).  FlexFlow's strategy
search discovers a hybrid data+model-parallel strategy that reduces
per-GPU gradient traffic ~20x (paper text), which our MCMC search over the
same cost model rediscovers; Fig. 18 compares it against TensorFlow+Horovod
data parallelism on Summit.
"""

from __future__ import annotations

from typing import List, Tuple

from ..flexflow import (LayerSpec, Strategy, data_parallel_strategy,
                        gradient_bytes_per_gpu, search_strategy)
from ..sim.machine import MachineSpec
from ..sim.workload import SimProgram
from .dnn import build_training_program

__all__ = ["candle_layers", "build_program", "find_strategy",
           "UNO_SAMPLES", "BATCH_PER_GPU", "EPOCH_ITERATIONS",
           "CANDLE_GPU_FLOPS"]

UNO_SAMPLES = 21_000_000     # dose-response pairs in the Uno training set
BATCH_PER_GPU = 64
# Dense MLP layers are memory-bandwidth bound; effective FLOPs well under
# peak.
CANDLE_GPU_FLOPS = 2.0e12


def candle_layers() -> List[LayerSpec]:
    """The pilot1 MLP: ~768M parameters across five dense layers."""
    dims = [23_000, 20_000, 12_000, 5_000, 1_000, 1]
    layers = []
    for i in range(len(dims) - 1):
        fan_in, fan_out = dims[i], dims[i + 1]
        params = fan_in * fan_out + fan_out
        flops = 2.0 * fan_in * fan_out
        layers.append(LayerSpec(f"dense{i}", params, flops, fan_out))
    return layers


def find_strategy(machine: MachineSpec, steps: int = 2000,
                  seed: int = 17) -> Tuple[Strategy, float]:
    """Run the FlexFlow MCMC search for this machine."""
    return search_strategy(candle_layers(), machine,
                           batch_per_gpu=BATCH_PER_GPU, steps=steps,
                           seed=seed)


def build_program(machine: MachineSpec, *, hybrid: bool = True,
                  iterations: int = 4, warmup: int = 1,
                  tracing: bool = True,
                  search_steps: int = 2000) -> SimProgram:
    """One CANDLE training run: hybrid (FlexFlow) or pure data parallel (TF).
    """
    layers = candle_layers()
    if hybrid and machine.gpus_per_node > 1:
        strategy, _t = find_strategy(machine, steps=search_steps)
    else:
        strategy = data_parallel_strategy(layers)
    prog = build_training_program(
        "candle", layers, strategy, machine, batch_per_gpu=BATCH_PER_GPU,
        iterations=iterations, warmup=warmup, tracing=tracing,
        gpu_flops=CANDLE_GPU_FLOPS)
    # Stash the strategy's traffic for the benchmark's 20x-reduction check.
    prog.gradient_bytes_per_gpu = gradient_bytes_per_gpu(  # type: ignore
        layers, strategy)
    prog.strategy = strategy  # type: ignore[attr-defined]
    return prog


def EPOCH_ITERATIONS(gpus: int) -> int:
    return max(1, UNO_SAMPLES // (BATCH_PER_GPU * max(1, gpus)))
