"""ResNet-50 training (paper §5.1, Fig. 15).

Data-parallel training of ResNet-50 on ImageNet: 25.6M parameters, ~3.8
GFLOPs per image forward, per-GPU batch size 64 (paper settings).  The
layer list groups the network into its 18 natural blocks (stem + 16
bottleneck residual blocks + classifier) with the real parameter and FLOP
distribution across stages; gradient all-reduces are per block, which is
what lets them overlap the backward pass.

Compared systems: FlexFlow-on-DCR, FlexFlow without control replication
(stops scaling around 48 GPUs in the paper), and TensorFlow+Horovod
(scales like DCR — ResNet's 102 MB of gradients hide under backprop).
"""

from __future__ import annotations

from typing import List

from ..flexflow.strategy import LayerSpec, data_parallel_strategy
from ..sim.machine import MachineSpec
from ..sim.workload import SimProgram
from .dnn import build_training_program

__all__ = ["resnet50_layers", "build_program", "IMAGENET_SIZE",
           "BATCH_PER_GPU", "EPOCH_ITERATIONS", "RESNET_GPU_FLOPS"]

IMAGENET_SIZE = 1_281_167
BATCH_PER_GPU = 64
# Effective sustained throughput of one V100 on ResNet-50 (fp32, cuDNN):
# ~370 img/s forward+backward => ~0.17 s per 64-image iteration.
RESNET_GPU_FLOPS = 6.5e12


def resnet50_layers() -> List[LayerSpec]:
    """ResNet-50 as 18 blocks: (params, fwd FLOPs/sample, activations).

    Stage breakdown of the standard architecture: conv1 + 3/4/6/3
    bottleneck blocks of widths 256/512/1024/2048 + the fc classifier.
    Parameter counts per block and per-stage FLOPs follow the usual
    accounting (total ~25.6M params, ~3.8 GFLOPs forward per 224x224 image).
    """
    blocks: List[LayerSpec] = [
        LayerSpec("conv1", 9_472, 0.24e9, 802_816),
    ]
    stage_specs = [
        ("conv2", 3, 71_936, 0.23e9, 802_816),     # layer1: ~215.8K total
        ("conv3", 4, 305_152, 0.22e9, 401_408),    # layer2: ~1.22M total
        ("conv4", 6, 1_184_256, 0.22e9, 200_704),  # layer3: ~7.11M total
        ("conv5", 3, 4_985_856, 0.21e9, 100_352),  # layer4: ~14.96M total
    ]
    for name, count, params, flops, act in stage_specs:
        for b in range(count):
            blocks.append(LayerSpec(f"{name}_{b}", params, flops, act))
    blocks.append(LayerSpec("fc", 2_049_000, 0.004e9, 1000))
    return blocks


def build_program(machine: MachineSpec, *, iterations: int = 3,
                  warmup: int = 1, tracing: bool = True) -> SimProgram:
    """One data-parallel ResNet-50 training run sized to the machine."""
    layers = resnet50_layers()
    strategy = data_parallel_strategy(layers)
    prog = build_training_program(
        "resnet50", layers, strategy, machine,
        batch_per_gpu=BATCH_PER_GPU, iterations=iterations, warmup=warmup,
        tracing=tracing, gpu_flops=RESNET_GPU_FLOPS)
    return prog


def EPOCH_ITERATIONS(gpus: int) -> int:
    """Iterations per ImageNet epoch at batch 64 per GPU."""
    return max(1, IMAGENET_SIZE // (BATCH_PER_GPU * max(1, gpus)))
