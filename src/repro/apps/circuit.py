"""Circuit simulation benchmark (paper §5.1, Fig. 13).

An iterative simulation of currents and voltages on a randomly generated
graph of circuit components.  The graph partitioning is computed *at run
time* (the paper stresses that the communication pattern must therefore be
established dynamically), and each iteration runs three group launches:

1. ``calc_new_currents`` — per wire: current from the voltage difference of
   its endpoints, reading *ghost* node voltages across piece boundaries;
2. ``distribute_charge`` — scatter-add each wire's charge contribution onto
   its endpoint nodes (a ``+`` reduction into the aliased ghost partition);
3. ``update_voltages`` — per owned node: integrate charge into voltage.

The aliased ghost partition makes cross-shard fences unavoidable each
iteration — the program DCR handles well and a centralized controller
bottlenecks on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.rng import CounterRNG
from ..oracle import READ_ONLY, READ_WRITE, reduce_priv
from ..sim.machine import MachineSpec, ProcKind
from ..sim.workload import DepSpec, SimOp, SimProgram
from .common import TiledField, group_op

__all__ = ["build_program", "circuit_control", "generate_circuit",
           "reference_circuit", "WIRES_PER_GPU", "SECONDS_PER_WIRE"]

# Calibrated so one node sustains a few million wires/s (Fig. 13a y-axis)
# at ~1 ms task grain (three phases per iteration).
WIRES_PER_GPU = 10_000
SECONDS_PER_WIRE = 2.0e-7
# Strong-scaling default: overheads surface inside the plotted node range.
STRONG_TOTAL_WIRES = 128_000
# Fraction of a piece's nodes that are shared with neighboring pieces.
SHARED_FRACTION = 0.05


def build_program(machine: MachineSpec, *, weak: bool = True,
                  total_wires: Optional[int] = None, iterations: int = 10,
                  warmup: int = 2, tracing: bool = True) -> SimProgram:
    """Fig. 13's circuit simulation as a simulated operation stream."""
    pieces = max(1, machine.total_procs(ProcKind.GPU))
    if weak:
        wires_per_piece = WIRES_PER_GPU
        total = wires_per_piece * pieces
    else:
        total = total_wires if total_wires is not None else STRONG_TOTAL_WIRES
        wires_per_piece = max(1, total // pieces)
    nodes_per_piece = max(1, wires_per_piece // 4)
    ghost_bytes = SHARED_FRACTION * nodes_per_piece * 8.0
    # A small-diameter random graph: each piece talks to ring neighbors and
    # a few long-range pieces; more cross-piece structure appears at scale,
    # which is why DCR's distributed analysis wins here (paper §5.1).
    offsets = (-1, 1, -7, 7, -31, 31)

    wires = TiledField.build("wires", [("current", "f8")], pieces,
                             with_ghost=False)
    nodes = TiledField.build("nodes", [("voltage", "f8"), ("charge", "f8")],
                             pieces)
    assert nodes.ghost is not None

    prog = SimProgram(f"circuit-{'weak' if weak else 'strong'}",
                      scr_applicable=True)
    prog.work_per_iteration = total

    # Durations split across the three phases, roughly 50/30/20.
    d_cur = wires_per_piece * SECONDS_PER_WIRE * 0.5
    d_chg = wires_per_piece * SECONDS_PER_WIRE * 0.3
    d_vlt = wires_per_piece * SECONDS_PER_WIRE * 0.2

    prev_voltage: Optional[int] = None
    for it in range(warmup + iterations):
        timed = it >= warmup
        start = prog.begin_iteration() if timed else None
        traced = tracing and it >= 1

        op1 = group_op(
            f"calc_new_currents[{it}]", pieces,
            [(wires.tiles, wires.fieldset("current"), READ_WRITE),
             (nodes.ghost, nodes.fieldset("voltage"), READ_ONLY)])
        deps1: List[DepSpec] = []
        if prev_voltage is not None:
            deps1.append(DepSpec(prev_voltage, "halo", ghost_bytes, offsets))
        i1 = prog.add(SimOp(op1.name, pieces, d_cur, deps=deps1,
                            proc_kind=ProcKind.GPU, operation=op1,
                            traced=traced))

        op2 = group_op(
            f"distribute_charge[{it}]", pieces,
            [(wires.tiles, wires.fieldset("current"), READ_ONLY),
             (nodes.ghost, nodes.fieldset("charge"), reduce_priv("+"))])
        i2 = prog.add(SimOp(op2.name, pieces, d_chg,
                            deps=[DepSpec(i1, "pointwise", 0.0)],
                            proc_kind=ProcKind.GPU, operation=op2,
                            traced=traced))

        op3 = group_op(
            f"update_voltages[{it}]", pieces,
            [(nodes.tiles, nodes.fieldset("voltage", "charge"), READ_WRITE)])
        prev_voltage = prog.add(SimOp(
            op3.name, pieces, d_vlt,
            deps=[DepSpec(i2, "halo", ghost_bytes, offsets)],
            proc_kind=ProcKind.GPU, operation=op3, traced=traced))

        if timed:
            prog.end_iteration(start)  # type: ignore[arg-type]
    return prog


# ---------------------------------------------------------------------------
# Functional layer: a real (small) circuit on the real runtime
# ---------------------------------------------------------------------------

def generate_circuit(pieces: int, nodes_per_piece: int, wires_per_piece: int,
                     seed: int = 7, cross_fraction: float = 0.2
                     ) -> Tuple[np.ndarray, np.ndarray, Dict[int, List[int]]]:
    """Deterministic random circuit: (wire_in, wire_out, piece->node ids).

    Uses the counter-based RNG so every shard generating the circuit inside
    a replicated control program sees the same graph (§3).
    """
    rng = CounterRNG(seed)
    total_nodes = pieces * nodes_per_piece
    total_wires = pieces * wires_per_piece
    node_pieces = {
        p: list(range(p * nodes_per_piece, (p + 1) * nodes_per_piece))
        for p in range(pieces)
    }
    wire_in = np.empty(total_wires, dtype=np.int64)
    wire_out = np.empty(total_wires, dtype=np.int64)
    for p in range(pieces):
        for w in range(wires_per_piece):
            idx = p * wires_per_piece + w
            wire_in[idx] = p * nodes_per_piece + rng.randint(
                0, nodes_per_piece - 1)
            if pieces > 1 and rng.random() < cross_fraction:
                q = rng.randint(0, pieces - 2)
                q = q if q < p else q + 1
                wire_out[idx] = q * nodes_per_piece + rng.randint(
                    0, nodes_per_piece - 1)
            else:
                wire_out[idx] = p * nodes_per_piece + rng.randint(
                    0, nodes_per_piece - 1)
    return wire_in, wire_out, node_pieces


def _calc_currents(point, wires_arg, ghost_nodes, wire_in, wire_out,
                   resistance):
    cur = wires_arg["current"]
    volt = ghost_nodes["voltage"]
    lo = wires_arg.region.index_space.rect.lo[0]
    hi = wires_arg.region.index_space.rect.hi[0]
    for w in range(lo, hi + 1):
        cur[w] = (volt[int(wire_in[w])] - volt[int(wire_out[w])]) / resistance


def _distribute_charge(point, wires_arg, ghost_nodes, wire_in, wire_out, dt):
    cur = wires_arg["current"]
    charge = ghost_nodes["charge"]
    lo = wires_arg.region.index_space.rect.lo[0]
    hi = wires_arg.region.index_space.rect.hi[0]
    for w in range(lo, hi + 1):
        charge.reduce(int(wire_in[w]), -dt * cur[w])
        charge.reduce(int(wire_out[w]), dt * cur[w])


def _update_voltages(point, nodes_arg, capacitance):
    volt = nodes_arg["voltage"]
    charge = nodes_arg["charge"]
    for p in sorted(nodes_arg.region.index_space.point_set()):
        volt[p] = volt[p] + charge[p] / capacitance
        charge[p] = 0.0


def circuit_control(ctx, pieces: int = 4, nodes_per_piece: int = 8,
                    wires_per_piece: int = 12, steps: int = 3,
                    resistance: float = 10.0, capacitance: float = 2.0,
                    dt: float = 0.1, seed: int = 7):
    """The circuit simulation as a replicable control program.

    The node partition is *data dependent* (derived from the generated
    graph), exercising dynamic partitioning under DCR.  Returns the nodes
    region.
    """
    wire_in, wire_out, node_pieces = generate_circuit(
        pieces, nodes_per_piece, wires_per_piece, seed=seed)
    nfs = ctx.create_field_space([("voltage", "f8"), ("charge", "f8")],
                                 "Node")
    wfs = ctx.create_field_space([("current", "f8")], "Wire")
    nodes = ctx.create_region(
        ctx.create_index_space(pieces * nodes_per_piece, "nspace"), nfs,
        "nodes")
    wires = ctx.create_region(
        ctx.create_index_space(pieces * wires_per_piece, "wspace"), wfs,
        "wires")
    owned = ctx.partition_by_points(nodes, node_pieces, disjoint=True,
                                    name="owned_nodes")
    wire_tiles = ctx.partition_equal(wires, pieces, name="wire_tiles")
    # Ghost pieces via dependent partitioning (the real Legion circuit
    # idiom): the image of each wire piece's endpoint pointers — every
    # node a local wire touches, owned or not.
    ghost = ctx.partition_by_image(
        nodes, wire_tiles,
        lambda w: [(int(wire_in[w[0]]),), (int(wire_out[w[0]]),)],
        name="ghost_nodes")

    ctx.fill(nodes, "charge", 0.0)
    ctx.fill(wires, "current", 0.0)
    rng = ctx.rng(seed, stream=1)
    init_v = [rng.random() for _ in range(pieces * nodes_per_piece)]
    # Initialize voltages piece by piece through tasks (keeps all data flow
    # inside the runtime).
    ctx.fill(nodes, "voltage", 0.0)

    def _init(point, nodes_arg, values):
        volt = nodes_arg["voltage"]
        for p in sorted(nodes_arg.region.index_space.point_set()):
            volt[p] = values[p[0]]

    dom = list(range(pieces))
    ctx.index_launch(_init, dom, [(owned, "voltage", "rw")],
                     args=(init_v,))
    for _ in range(steps):
        ctx.index_launch(
            _calc_currents, dom,
            [(wire_tiles, "current", "rw"), (ghost, "voltage", "ro")],
            args=(wire_in, wire_out, resistance))
        ctx.index_launch(
            _distribute_charge, dom,
            [(wire_tiles, "current", "ro"), (ghost, "charge", "red<+>")],
            args=(wire_in, wire_out, dt))
        ctx.index_launch(
            _update_voltages, dom,
            [(owned, ["voltage", "charge"], "rw")],
            args=(capacitance,))
    return nodes


def reference_circuit(pieces: int = 4, nodes_per_piece: int = 8,
                      wires_per_piece: int = 12, steps: int = 3,
                      resistance: float = 10.0, capacitance: float = 2.0,
                      dt: float = 0.1, seed: int = 7) -> np.ndarray:
    """Plain-NumPy reference of :func:`circuit_control` (voltages)."""
    wire_in, wire_out, _ = generate_circuit(
        pieces, nodes_per_piece, wires_per_piece, seed=seed)
    rng = CounterRNG(seed, stream=1)
    volt = np.array([rng.random()
                     for _ in range(pieces * nodes_per_piece)])
    charge = np.zeros_like(volt)
    for _ in range(steps):
        current = (volt[wire_in] - volt[wire_out]) / resistance
        charge2 = charge.copy()
        np.add.at(charge2, wire_in, -dt * current)
        np.add.at(charge2, wire_out, dt * current)
        volt = volt + charge2 / capacitance
        charge = np.zeros_like(volt)
    return volt
