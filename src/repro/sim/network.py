"""Point-to-point transfer cost model.

Transfers are latency + size/bandwidth, with the link chosen by endpoint
placement: same processor (free), same node (NVLink/shared memory), or
different nodes (interconnect).  Inter-node transfers between GPUs without
GPUDirect pay an extra host-staging hop, which is what separates the
MPI+CUDA and MPI+CUDA+GPUDirect curves of Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .machine import MachineSpec, ProcKind

__all__ = ["NetworkModel", "TrafficStats"]


@dataclass
class TrafficStats:
    """Accumulated traffic, split by link class."""

    intra_bytes: float = 0.0
    inter_bytes: float = 0.0
    intra_msgs: int = 0
    inter_msgs: int = 0


class NetworkModel:
    """Computes transfer times on a :class:`MachineSpec` and keeps stats."""

    def __init__(self, machine: MachineSpec):
        self.machine = machine
        self.stats = TrafficStats()

    def transfer_time(self, nbytes: float, src_node: int, dst_node: int,
                      kind: ProcKind = ProcKind.GPU,
                      same_proc: bool = False) -> float:
        """Seconds to move ``nbytes`` between the given placements."""
        if nbytes <= 0 or same_proc:
            return 0.0
        m = self.machine
        if src_node == dst_node:
            self.stats.intra_bytes += nbytes
            self.stats.intra_msgs += 1
            return m.intra_lat + nbytes / m.intra_bw
        self.stats.inter_bytes += nbytes
        self.stats.inter_msgs += 1
        t = m.inter_lat + nbytes / m.inter_bw
        if kind is ProcKind.GPU and not m.gpudirect:
            # Stage through host memory on both ends.
            t += 2 * (m.intra_lat + nbytes / m.host_staging_bw)
        return t

    def collective_time(self, nbytes: float, participants: int,
                        kind: ProcKind = ProcKind.GPU,
                        bandwidth: float | None = None,
                        staging_contention: int = 1,
                        bw_efficiency: float = 1.0) -> float:
        """All-reduce/all-gather cost across ``participants`` (§4.2).

        Standard alpha-beta model: O(log P) latency rounds plus the
        bandwidth-optimal ring term ``2 * nbytes * (P-1)/P / bw`` (what
        Horovod/NCCL achieve for the gradient payloads of Figs. 15/18).
        GPU payloads without GPUDirect also bounce through host memory;
        ``staging_contention`` > 1 models one-rank-per-GPU runtimes whose
        ranks share the node's host copy path (Horovod), versus
        one-process-per-node runtimes (Legion) that stage once.
        """
        if participants <= 1:
            return 0.0
        m = self.machine
        bw = bandwidth if bandwidth is not None else m.inter_bw
        rounds = max(1, (participants - 1).bit_length())
        latency = rounds * m.inter_lat
        # ``bw_efficiency`` captures how far a runtime's collectives fall
        # short of the ideal ring at scale (fusion-buffer serialization,
        # fat-tree incast); 1.0 = ideal.
        ring = (2.0 * nbytes * (participants - 1) / participants
                / (bw * max(1e-6, bw_efficiency)))
        if nbytes > 0 and kind is ProcKind.GPU and not m.gpudirect \
                and bandwidth is None:
            stage_bw = m.host_staging_bw / max(1, staging_contention)
            ring += 2 * nbytes / stage_bw + m.staging_overhead
        self.stats.inter_msgs += rounds * participants
        self.stats.inter_bytes += 2 * nbytes * max(0, participants - 1)
        return latency + ring
