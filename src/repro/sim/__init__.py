"""Discrete-event machine simulator: the substitute for the paper's clusters.

See DESIGN.md §2 for the substitution argument: the evaluation studies
runtime overhead vs. scale, which a cost-modeled simulator exposes directly.
"""

from .costs import CostModel, DEFAULT_COSTS
from .engine import SerialResource, SimEngine, recovery_latency
from .machine import (DGX1V, LASSEN, PIZ_DAINT, QUARTZ, SIERRA, SUMMIT,
                      MachineSpec, ProcKind)
from .network import NetworkModel, TrafficStats
from .workload import DepSpec, SimOp, SimProgram, edge_sources, placement

__all__ = [
    "CostModel", "DEFAULT_COSTS",
    "SerialResource", "SimEngine", "recovery_latency",
    "DGX1V", "LASSEN", "PIZ_DAINT", "QUARTZ", "SIERRA", "SUMMIT",
    "MachineSpec", "ProcKind",
    "NetworkModel", "TrafficStats",
    "DepSpec", "SimOp", "SimProgram", "edge_sources", "placement",
]
