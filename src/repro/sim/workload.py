"""Simulated workloads: operation streams with point-level structure hints.

The performance layer runs an application as a stream of :class:`SimOp`
entries.  Each entry may carry a *real* :class:`repro.core.Operation` (with
regions, partitions, privileges), in which case the DCR model derives coarse
dependences and cross-shard fences by running the actual coarse analysis —
the paper's contribution is never approximated.  What *is* modeled
analytically is the point-level execution structure: instead of expanding an
O(points²) precise analysis at 512 nodes, each dependence carries a
``pattern`` describing which source points feed each destination point
(pointwise, halo exchange with offsets, or an all/collective pattern).

This split mirrors the paper's own observation that the coarse stage never
enumerates points; only execution does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.operation import Operation
from .machine import ProcKind

__all__ = ["DepSpec", "SimOp", "SimProgram", "edge_sources", "placement"]


@dataclass(frozen=True)
class DepSpec:
    """A point-structure hint for a dependence on an earlier SimOp.

    Patterns:

    * ``pointwise`` — destination point i consumes source point i (scaled
      proportionally when the two launch sizes differ);
    * ``halo`` — point i consumes i+o for each offset o (n-D offsets when the
      op declares a ``grid``), the stencil/ghost-exchange shape;
    * ``all`` — every destination point needs every source point; executed
      as an O(log N) collective (reduction/broadcast trees), not N² edges.
    """

    src: int                      # index of the earlier op in the stream
    pattern: str = "pointwise"    # 'pointwise' | 'halo' | 'all'
    nbytes: float = 0.0           # payload per consumed edge (or collective)
    offsets: Tuple = ()           # halo offsets: ints, or tuples for n-D


@dataclass
class SimOp:
    """One (group) operation of the simulated program."""

    name: str
    points: int
    duration: float                       # per-point execution seconds
    deps: List[DepSpec] = field(default_factory=list)
    proc_kind: ProcKind = ProcKind.GPU
    operation: Optional[Operation] = None  # real op for the coarse analysis
    grid: Optional[Tuple[int, ...]] = None  # n-D launch shape for halo deps
    fence: Optional[bool] = None  # override when no real Operation is given
    traced: bool = False          # this op is a trace replay
    # The control program reads this op's future (e.g. a dt reduction), so
    # the *analysis* of everything after it stalls until it has executed —
    # the blocking behavior the paper's Pennant discussion attributes to
    # the global dt collective.
    blocks_analysis: bool = False
    index: int = -1               # position in the stream (set by SimProgram)


@dataclass
class SimProgram:
    """A complete simulated run: operation stream plus bookkeeping."""

    name: str
    ops: List[SimOp] = field(default_factory=list)
    # Half-open op-index ranges of the timed steady-state iterations.
    iteration_ranges: List[Tuple[int, int]] = field(default_factory=list)
    work_per_iteration: float = 1.0     # app-level units (cells, wires, ...)
    scr_applicable: bool = True         # static control replication can compile it

    def add(self, op: SimOp) -> int:
        op.index = len(self.ops)
        self.ops.append(op)
        return op.index

    def begin_iteration(self) -> int:
        return len(self.ops)

    def end_iteration(self, start: int) -> None:
        self.iteration_ranges.append((start, len(self.ops)))

    @property
    def total_points(self) -> int:
        return sum(op.points for op in self.ops)

    def validate(self) -> None:
        """Structural sanity checks; raises ValueError on the first problem.

        Checks the invariants every app builder must maintain: dependence
        indices point strictly backwards, iteration ranges are contiguous
        half-open intervals covering the stream's tail, and durations/point
        counts are positive.
        """
        for op in self.ops:
            if op.points < 1:
                raise ValueError(f"{op.name}: non-positive point count")
            if op.duration <= 0:
                raise ValueError(f"{op.name}: non-positive duration")
            for dep in op.deps:
                if not 0 <= dep.src < op.index:
                    raise ValueError(
                        f"{op.name}: dependence on op {dep.src} does not "
                        f"point strictly backwards from {op.index}")
                if dep.pattern not in ("pointwise", "halo", "all"):
                    raise ValueError(
                        f"{op.name}: unknown pattern {dep.pattern!r}")
        prev_end = None
        for start, end in self.iteration_ranges:
            if not 0 <= start < end <= len(self.ops):
                raise ValueError(
                    f"iteration range ({start}, {end}) out of bounds")
            if prev_end is not None and start != prev_end:
                raise ValueError("iteration ranges are not contiguous")
            prev_end = end
        if self.iteration_ranges and prev_end != len(self.ops):
            raise ValueError("iteration ranges do not cover the tail")


def placement(point: int, points: int, nodes: int, procs_per_node: int
              ) -> Tuple[int, int]:
    """Blocked mapping of a launch point to (node, processor index).

    Points are spread over all processors of the machine contiguously —
    the default tiled mapping every app in §5 uses.
    """
    total = max(1, nodes * procs_per_node)
    gproc = min(point * total // max(points, 1), total - 1)
    return gproc // procs_per_node, gproc % procs_per_node


def edge_sources(dep: DepSpec, point: int, src_points: int, dst_points: int,
                 grid: Optional[Tuple[int, ...]] = None) -> Sequence[int]:
    """Source points feeding ``point`` under the dependence's pattern.

    ``all`` is intentionally *not* expanded here — models treat it as a
    collective (see module docstring).
    """
    if dep.pattern == "pointwise":
        if src_points == dst_points:
            return (point,)
        return (min(point * src_points // max(dst_points, 1),
                    src_points - 1),)
    if dep.pattern == "halo":
        if grid is None:
            out = []
            for off in dep.offsets or (-1, 1):
                q = point + off
                if 0 <= q < src_points:
                    out.append(q)
            out.append(min(point, src_points - 1))  # own tile
            return tuple(dict.fromkeys(out))
        # n-D halo: linearize row-major over `grid`.
        coords = []
        rem = point
        for extent in reversed(grid):
            coords.append(rem % extent)
            rem //= extent
        coords.reverse()
        out = [point]
        for off in dep.offsets:
            q = [c + o for c, o in zip(coords, off)]
            if all(0 <= qc < e for qc, e in zip(q, grid)):
                lin = 0
                for qc, e in zip(q, grid):
                    lin = lin * e + qc
                if lin < src_points:
                    out.append(lin)
        return tuple(dict.fromkeys(out))
    if dep.pattern == "all":
        raise ValueError("'all' dependences are modeled as collectives, "
                         "not expanded into edges")
    raise ValueError(f"unknown dependence pattern {dep.pattern!r}")
