"""Machine descriptions for the performance simulator.

The paper's experiments span Piz-Daint, Summit, Sierra, Lassen, Quartz and
DGX-1V clusters; this module captures the properties of those machines that
matter for the evaluation — node count, processors per node, intra-node
(NVLink / shared memory) vs. inter-node (InfiniBand / Aries) bandwidth and
latency, and whether GPUDirect RDMA is available (Fig. 14's third MPI
configuration).

Absolute calibration is deliberately coarse (DESIGN.md §2): the simulator is
asked to reproduce *shapes* — who wins, where scaling breaks — not testbed
wall-clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

__all__ = ["ProcKind", "MachineSpec", "PIZ_DAINT", "DGX1V", "SUMMIT",
           "SIERRA", "LASSEN", "QUARTZ"]


class ProcKind(enum.Enum):
    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class MachineSpec:
    """A homogeneous cluster description."""

    name: str
    nodes: int
    cpus_per_node: int
    gpus_per_node: int
    intra_bw: float = 50e9      # bytes/s within a node (NVLink-class)
    inter_bw: float = 12.5e9    # bytes/s between nodes (IB EDR-class)
    intra_lat: float = 2e-6     # seconds, one message within a node
    inter_lat: float = 5e-6     # seconds, one message between nodes
    gpudirect: bool = False     # direct NIC<->GPU path for inter-node GPU data
    host_staging_bw: float = 10e9  # bytes/s extra hop when GPUDirect is off
    # Fixed software cost of one staged GPU message (cudaMemcpy + stream
    # sync + pack/unpack of unstructured halos).  Paid whenever a GPU
    # transfer must bounce through host memory.
    staging_overhead: float = 50e-6

    def procs_per_node(self, kind: ProcKind) -> int:
        return self.gpus_per_node if kind is ProcKind.GPU else self.cpus_per_node

    def total_procs(self, kind: ProcKind) -> int:
        return self.nodes * self.procs_per_node(kind)

    def with_nodes(self, nodes: int) -> "MachineSpec":
        """The same machine scaled to a different node count."""
        return replace(self, nodes=nodes)

    def with_gpudirect(self, enabled: bool) -> "MachineSpec":
        return replace(self, gpudirect=enabled)


# Presets named after the paper's testbeds.  Bandwidths/latencies are
# public-spec magnitudes, not measurements.
PIZ_DAINT = MachineSpec("piz-daint", nodes=512, cpus_per_node=12,
                        gpus_per_node=1, intra_bw=30e9, inter_bw=10e9)
DGX1V = MachineSpec("dgx-1v", nodes=32, cpus_per_node=40, gpus_per_node=8,
                    intra_bw=150e9, inter_bw=12.5e9)
# POWER9 machines have NVLink between CPU and GPU, so host staging runs at
# NVLink rates rather than PCIe rates.
SUMMIT = MachineSpec("summit", nodes=256, cpus_per_node=42, gpus_per_node=6,
                     intra_bw=150e9, inter_bw=25e9, host_staging_bw=50e9)
SIERRA = MachineSpec("sierra", nodes=256, cpus_per_node=44, gpus_per_node=4,
                     intra_bw=150e9, inter_bw=25e9, host_staging_bw=50e9)
LASSEN = MachineSpec("lassen", nodes=128, cpus_per_node=44, gpus_per_node=4,
                     intra_bw=150e9, inter_bw=25e9, host_staging_bw=50e9)
QUARTZ = MachineSpec("quartz", nodes=256, cpus_per_node=36, gpus_per_node=0,
                     intra_bw=40e9, inter_bw=12.5e9)
