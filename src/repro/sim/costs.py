"""Runtime-overhead cost model.

These constants parameterize how much simulated time each runtime activity
takes.  Magnitudes follow published Legion/Task Bench measurements (tens of
microseconds per task for dynamic dependence analysis; a few microseconds
per hop for collectives); DESIGN.md §2 explains why shapes, not absolute
values, are the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Per-activity simulated-time charges (seconds)."""

    # -- DCR analysis pipeline (per shard) -------------------------------------
    coarse_per_op: float = 15e-6       # group-level analysis of one op
    fine_per_point: float = 40e-6      # precise analysis of one owned point
    fence_hop: float = 4e-6            # one round of the fence all-gather
    sharding_eval: float = 0.2e-6      # one memoized sharding-function call
    trace_replay_per_op: float = 4e-6  # replaying one traced op
    # Hashing one runtime API call for the control-determinism check.  The
    # all-reduce itself is asynchronous and off the critical path (§3), so
    # only the (small) hash computation is charged — which is why Fig. 21's
    # Safe/No-Safe curves nearly coincide.
    determinism_per_call: float = 0.3e-6
    # Mapper/launch overhead charged per point even with zero analysis.
    launch_per_point: float = 2e-6
    # -- multiprocess (real IPC) backend surcharges -----------------------------
    # Shards in separate OS processes pay pipe latency per collective hop
    # and a small per-call frame-serialization share for the windowed
    # determinism traffic (measured against repro.dist's pipe transport).
    ipc_hop: float = 2e-6              # extra latency per collective hop
    ipc_per_call: float = 0.05e-6      # frame encode share per hashed call

    # -- centralized controller (lazy evaluation) --------------------------------
    controller_per_op: float = 15e-6       # building graph node(s) for an op
    controller_per_point: float = 55e-6    # analyze + schedule one task
    controller_dispatch: float = 12e-6     # serialize/ship one task to a worker
    controller_memo_factor: float = 0.25   # cost factor when a cached schedule
                                           # is replayed (Spark/TF mitigation)

    # -- static control replication ----------------------------------------------
    scr_per_op: float = 3e-6           # compiled SPMD per-op bookkeeping
    scr_per_point: float = 3e-6        # local launch of one owned point

    # -- explicit (MPI-style) -------------------------------------------------------
    mpi_per_point: float = 3e-6        # kernel-launch + matching overhead

    def scaled(self, factor: float) -> "CostModel":
        """All runtime overheads multiplied by ``factor`` (for ablations)."""
        return replace(
            self,
            coarse_per_op=self.coarse_per_op * factor,
            fine_per_point=self.fine_per_point * factor,
            fence_hop=self.fence_hop * factor,
            trace_replay_per_op=self.trace_replay_per_op * factor,
            determinism_per_call=self.determinism_per_call * factor,
            controller_per_op=self.controller_per_op * factor,
            controller_per_point=self.controller_per_point * factor,
            controller_dispatch=self.controller_dispatch * factor,
        )


DEFAULT_COSTS = CostModel()
