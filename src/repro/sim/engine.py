"""A small discrete-event engine plus serial-resource bookkeeping.

The execution models mostly use analytic list scheduling (deterministic and
fast), but a few components — the deferred-deletion poller tests and the
pipelined analysis/execution overlap checks — want a genuine event queue.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..obs.events import (CAT_FAULT, CAT_SIM, CONTROL_SHARD, EV_FAULT_INJECT,
                          EV_RECOVERY, EV_SIM_EVENT)
from ..obs.profiler import Profiler

__all__ = ["SimEngine", "SerialResource", "recovery_latency"]


def recovery_latency(stats, hop_latency: float = 4e-6) -> float:
    """Simulated seconds a run lost to injected message faults.

    Derived from :class:`~repro.core.collectives.CollectiveStats`: each
    retransmission costs one extra network hop, and the retry backoff and
    delivery delays are charged at face value (they are recorded in
    microseconds).
    """
    return (stats.retransmissions * hop_latency
            + (stats.retry_backoff_us + stats.delay_latency_us) * 1e-6)


class SimEngine:
    """Priority-queue discrete-event simulator.

    Pass (or attach) a :class:`~repro.obs.profiler.Profiler` to profile a
    simulated run: the engine rebinds the profiler's clock to *simulated*
    time, so spans emitted by instrumented components running under the
    engine line up with the cost model's timeline rather than wall clock,
    and each processed event leaves an instant on the control track.
    """

    def __init__(self, profiler: Optional[Profiler] = None) -> None:
        self.now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.events_processed = 0
        self.faults_injected = 0
        self.fault_time = 0.0
        self.profiler = profiler
        if profiler is not None:
            self.attach_profiler(profiler)

    def attach_profiler(self, profiler: Profiler) -> Profiler:
        """Drive ``profiler`` on simulated time; returns it for chaining."""
        self.profiler = profiler
        profiler.set_clock(lambda: self.now, origin=0.0)
        return profiler

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._queue, (time, next(self._seq), fn))

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` ``delay`` seconds from now."""
        self.at(self.now + delay, fn)

    def run(self, until: Optional[float] = None) -> float:
        """Process events (optionally up to ``until``); returns final time."""
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return self.now
            time, _seq, fn = heapq.heappop(self._queue)
            self.now = time
            self.events_processed += 1
            prof = self.profiler
            if prof is not None and prof.enabled:
                prof.instant(CONTROL_SHARD, CAT_SIM, EV_SIM_EVENT,
                             event=getattr(fn, "__name__", "<fn>"))
                prof.count("sim.events")
            fn()
        return self.now

    def inject_fault(self, kind: str, at: float, recovery_latency: float,
                     on_recovered: Optional[Callable[[], None]] = None
                     ) -> None:
        """Model a fault at simulated time ``at`` that costs
        ``recovery_latency`` seconds before the system resumes.

        The fault and its recovery become ordinary queue events, so
        instrumented components see the stall in simulated time exactly as
        a real run would; ``fault_time`` accumulates the total stall for
        reporting (e.g. degraded-METG sweeps).
        """
        if recovery_latency < 0:
            raise ValueError("recovery latency must be non-negative")

        def _fault() -> None:
            self.faults_injected += 1
            self.fault_time += recovery_latency
            prof = self.profiler
            if prof is not None and prof.enabled:
                prof.instant(CONTROL_SHARD, CAT_FAULT, EV_FAULT_INJECT,
                             site=kind, at=self.now)
                prof.count("sim.faults")

            def _recover() -> None:
                prof = self.profiler
                if prof is not None and prof.enabled:
                    prof.complete(CONTROL_SHARD, CAT_FAULT, EV_RECOVERY,
                                  prof.now_us() - recovery_latency * 1e6,
                                  recovery_latency * 1e6, site=kind)
                if on_recovered is not None:
                    on_recovered()

            self.after(recovery_latency, _recover)

        _fault.__name__ = f"fault:{kind}"
        self.at(at, _fault)

    @property
    def pending(self) -> int:
        return len(self._queue)


class SerialResource:
    """A FIFO-serial resource (a processor, a controller, a NIC).

    ``acquire(ready, duration)`` returns the interval actually granted:
    start = max(ready, when the resource frees up).  Tracks busy time for
    utilization reporting.
    """

    __slots__ = ("name", "available_at", "busy")

    def __init__(self, name: str = ""):
        self.name = name
        self.available_at = 0.0
        self.busy = 0.0

    def acquire(self, ready: float, duration: float) -> Tuple[float, float]:
        start = max(ready, self.available_at)
        end = start + duration
        self.available_at = end
        self.busy += duration
        return start, end

    def utilization(self, horizon: float) -> float:
        return self.busy / horizon if horizon > 0 else 0.0
