"""Field pooling with deferred frees (the legate.core ``FieldManager`` idiom).

Long array programs churn through temporaries: every ``a + b`` needs a
fresh region field, and without reuse the runtime's region count (and the
analysis' uid universe) grows without bound.  The manager keeps one pool
per ``(shape, dtype)``; a freed backing block is *not* reusable
immediately — real runtimes cannot recycle a field while launched ops may
still read it — so frees sit in a pending list until at least one more
launch has retired, mirroring legate.core's GC-deferred free queue
(paper §4.3 treats the same problem for region deletions).

Determinism: pool and pending state are pure functions of the per-shard
call sequence (checkout/release order and the per-context launch counter),
never of wall-clock or shared cross-shard state — so every shard makes the
identical reuse decisions and the create-call streams stay byte-identical.

Blocks are reference-counted through :class:`_Lease`: views share their
base array's lease, and a *fresh* lease wraps every checkout so CPython's
one-shot ``__del__`` on the old lease can never resurrect a recycled
block.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["FieldManager", "FieldBlock"]


class FieldBlock:
    """One backing (region, field) allocation of a fixed shape."""

    __slots__ = ("region", "shape", "generation")

    def __init__(self, region, shape: Tuple[int, ...]):
        self.region = region
        self.shape = shape
        self.generation = 0          # bumped on every reuse (debug aid)


class _Lease:
    """Holder of one checkout of a block; releases it exactly once.

    Arrays (and every view derived from them) share the lease object, so
    the block returns to the manager when the last referencing array dies
    — or immediately on an explicit :meth:`release`.
    """

    __slots__ = ("_manager", "block", "_released")

    def __init__(self, manager: "FieldManager", block: FieldBlock):
        self._manager = manager
        self.block = block
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._manager._release(self.block)

    def __del__(self) -> None:
        try:
            self.release()
        except Exception:       # pragma: no cover - interpreter teardown
            pass


class FieldManager:
    """(shape, dtype)-keyed pools of freed fields, with deferred frees."""

    def __init__(self, lg) -> None:
        self._lg = lg
        self._pool: Dict[Tuple[Tuple[int, ...], str], List[FieldBlock]] = {}
        self._pending: List[Tuple[int, FieldBlock]] = []
        self._launch_seq = 0
        self.created = 0             # regions actually allocated
        self.reused = 0              # checkouts served from a pool
        self.released = 0            # blocks handed back

    # -- lifecycle hooks -----------------------------------------------------

    def note_launch(self) -> None:
        """Called once per array-op launch; retires eligible frees."""
        self._launch_seq += 1
        self._retire()

    def _retire(self) -> None:
        if not self._pending:
            return
        still: List[Tuple[int, FieldBlock]] = []
        for seq, block in self._pending:
            if seq < self._launch_seq:
                self._pool.setdefault((block.shape, "f8"), []).append(block)
            else:
                still.append((seq, block))
        self._pending = still

    def flush(self) -> None:
        """Retire every pending free (the runtime's deferred-drain hook)."""
        self._launch_seq += 1
        self._retire()

    def _release(self, block: FieldBlock) -> None:
        self.released += 1
        self._pending.append((self._launch_seq, block))

    # -- checkout ------------------------------------------------------------

    def checkout(self, shape: Tuple[int, ...]) -> Tuple[FieldBlock, _Lease]:
        """A backing block for ``shape``: pooled if possible, else fresh."""
        shape = tuple(int(e) for e in shape)
        self._retire()
        pool = self._pool.get((shape, "f8"))
        if pool:
            block = pool.pop()
            block.generation += 1
            self.reused += 1
        else:
            block = FieldBlock(self._lg._create_region(shape), shape)
            self.created += 1
        return block, _Lease(self, block)

    @property
    def pooled(self) -> int:
        """Blocks currently idle in pools (plus pending frees)."""
        return sum(len(v) for v in self._pool.values()) + len(self._pending)
