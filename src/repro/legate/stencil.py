"""1-D Jacobi stencil written purely through deferred-array slicing.

The classic NumPy stencil idiom

    u[1:-1] = (u[:-2] + u[2:]) * 0.5

exercises the heart of the :class:`~.views.ViewSpec` machinery: the two
shifted operands are step-1 slice *views* of the same base field whose
rect partitions are offset against each other, the elementwise add still
launches one aligned group task, and the in-place slice write goes
through the writable-view path onto a sub-rectangle partition of the
base region.

:func:`explicit_stencil` is the traditional hand-written counterpart —
double-buffered regions with an *aliased ghost partition* (each tile reads
one halo cell beyond its interior) — computing the token-identical
per-element expression, so outputs are byte-for-byte equal.
"""

from __future__ import annotations

import numpy as np

from ..runtime.runtime import Context
from .array import LegateContext
from .views import choose_tiling

__all__ = ["sliced_stencil", "explicit_stencil", "reference_stencil",
           "make_wave"]


def make_wave(n: int) -> np.ndarray:
    """Deterministic initial condition: a spike plus a coarse ramp."""
    u = np.zeros(n)
    u[n // 3] = 8.0
    u += np.arange(n, dtype=np.float64) / n
    return u


def sliced_stencil(ctx: Context, init: np.ndarray, iterations: int = 10,
                   num_tiles: int = 4) -> np.ndarray:
    """Jacobi smoothing as a pure sliced-array program."""
    lg = LegateContext(ctx, num_tiles)
    n = init.shape[0]
    if n < 3:
        raise ValueError("stencil needs at least 3 points")
    u = lg.from_values(init, "st_u")
    for _ in range(iterations):
        u[1:n - 1] = (u[0:n - 2] + u[2:n]) * 0.5
    return u.to_numpy()


def explicit_stencil(ctx: Context, init: np.ndarray, iterations: int = 10,
                     num_tiles: int = 4) -> np.ndarray:
    """Ghost-partition explicit-region mirror of :func:`sliced_stencil`.

    Double-buffered: each step writes the interior tiles of one region
    from an aliased ghost partition of the other (one halo cell each
    side), evaluating the same ``(left + right) * 0.5`` expression the
    sliced program's kernels do.
    """
    n = init.shape[0]
    if n < 3:
        raise ValueError("stencil needs at least 3 points")

    def make_region(name):
        fs = ctx.create_field_space([("v", "f8")], f"{name}_fs")
        ispace = ctx.create_index_space(n, f"{name}_is")
        return ctx.create_region(ispace, fs, name)

    u = make_region("est_u")
    v = make_region("est_v")

    # Interior tiles [1, n-2] use the same boundaries the sliced program
    # derives for its (n-2,)-shaped intermediate views.
    interior = [((lo[0] + 1,), (hi[0] + 1,))
                for lo, hi in choose_tiling((n - 2,), num_tiles)]
    ghost = [((lo[0] - 1,), (hi[0] + 1,)) for lo, hi in interior]
    dom = list(range(len(interior)))

    parts = {}
    for region in (u, v):
        parts[region.uid, "int"] = ctx.partition_rects(
            region, interior, disjoint=True, name=f"{region.name}_int")
        parts[region.uid, "ghost"] = ctx.partition_rects(
            region, ghost, name=f"{region.name}_ghost")
    full_dom = list(range(len(choose_tiling((n,), num_tiles))))
    for region in (u, v):
        parts[region.uid, "full"] = ctx.partition_rects(
            region, choose_tiling((n,), num_tiles), disjoint=True,
            complete=True, name=f"{region.name}_full")

    def init_tile(point, out_arg, payload):
        lo = out_arg.region.index_space.rect.lo
        ext = out_arg.region.index_space.rect.extents
        full = np.array(payload)
        out_arg["v"].view[...] = full[lo[0]:lo[0] + ext[0]]

    payload = tuple(map(float, init))
    ctx.index_launch(init_tile, full_dom, [(parts[u.uid, "full"], "v", "wd")],
                     args=(payload,))
    # Boundary cells never change: seed both buffers once.
    ctx.index_launch(init_tile, full_dom, [(parts[v.uid, "full"], "v", "wd")],
                     args=(payload,))

    def step(point, out_arg, ghost_arg):
        g = ghost_arg["v"].view
        out_arg["v"].view[...] = (g[:-2] + g[2:]) * 0.5

    src, dst = u, v
    for _ in range(iterations):
        ctx.index_launch(step, dom,
                         [(parts[dst.uid, "int"], "v", "wd"),
                          (parts[src.uid, "ghost"], "v", "ro")])
        src, dst = dst, src

    return ctx.runtime.store.raw(src.tree_id, src.field_space["v"]).copy()


def reference_stencil(init: np.ndarray, iterations: int = 10) -> np.ndarray:
    """Plain-NumPy reference."""
    u = init.copy()
    for _ in range(iterations):
        u[1:-1] = (u[:-2] + u[2:]) * 0.5
    return u
