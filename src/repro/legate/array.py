"""Legate NumPy core: deferred ndarray-like arrays backed by regions.

Legate NumPy (paper §5.4) translates NumPy programs onto the Legion data
model: each array is a field of a region, each API call launches one or
more (group) tasks, and under DCR the whole NumPy program replicates across
shards with no centralized bottleneck.  This module is the functional
equivalent on our runtime: a :class:`LegateContext` wraps a replicated
control context and hands out :class:`LegateArray` objects whose operators
launch real group tasks over a row-tile partition (chunk sizes are chosen
automatically — the paper contrasts this with Dask, where users must tune
chunking by hand).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from ..runtime.runtime import Context

__all__ = ["LegateContext", "LegateArray"]


class LegateContext:
    """Factory for deferred arrays inside a replicated control program."""

    def __init__(self, ctx: Context, num_tiles: int = 4):
        self.ctx = ctx
        self.num_tiles = max(1, num_tiles)
        # Per-context (hence per-shard) counter: array names must be a pure
        # function of the control program's call sequence, or the hashed
        # create_* calls would diverge across shards (§3).  A module-global
        # counter here is exactly the kind of hidden input the determinism
        # checker exists to catch — and did, in this library's own tests.
        self._next_name = 0

    # -- creation --------------------------------------------------------------

    def _make(self, shape: Tuple[int, ...], name: str = "") -> "LegateArray":
        if not name:
            name = f"lgarr{self._next_name}"
            self._next_name += 1
        fs = self.ctx.create_field_space([("v", "f8")], f"{name}_fs")
        ispace = self.ctx.create_index_space(
            shape if len(shape) > 1 else shape[0], f"{name}_is")
        region = self.ctx.create_region(ispace, fs, name)
        tiles = min(self.num_tiles, shape[0])
        part = self.ctx.partition_equal(region, tiles, dim=0,
                                        name=f"{name}_tiles")
        return LegateArray(self, region, part, shape)

    def zeros(self, shape: Union[int, Tuple[int, ...]],
              name: str = "") -> "LegateArray":
        """A zero-filled deferred array."""
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        arr = self._make(shape, name)
        self.ctx.fill(arr.region, "v", 0.0)
        return arr

    def full(self, shape: Union[int, Tuple[int, ...]], value: float,
             name: str = "") -> "LegateArray":
        """A constant-filled deferred array."""
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        arr = self._make(shape, name)
        self.ctx.fill(arr.region, "v", float(value))
        return arr

    def from_values(self, values: Sequence, name: str = "") -> "LegateArray":
        """Materialize explicit values through an initializer task."""
        data = np.asarray(values, dtype=np.float64)
        arr = self.zeros(data.shape, name)
        flat = tuple(float(x) for x in data.reshape(-1))

        def _init(point, out, payload, shape):
            view = out["v"].view
            lo = out.region.index_space.rect.lo
            full_arr = np.array(payload).reshape(shape)
            sl = tuple(slice(l, l + e) for l, e in
                       zip(lo, out.region.index_space.rect.extents))
            view[...] = full_arr[sl]

        self.ctx.index_launch(
            _init, list(range(len(arr.tiles))),
            [(arr.tiles, "v", "wd")], args=(flat, data.shape))
        return arr


class LegateArray:
    """A deferred dense array; operators launch group tasks."""

    def __init__(self, lg: LegateContext, region, tiles, shape):
        self.lg = lg
        self.region = region
        self.tiles = tiles
        self.shape = tuple(shape)

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return len(self.shape)

    # -- task-launch helpers -------------------------------------------------------

    def _dom(self):
        return list(range(len(self.tiles)))

    def _map(self, fn: Callable, out: Optional["LegateArray"] = None,
             others: Sequence["LegateArray"] = (), scalars: Sequence = ()
             ) -> "LegateArray":
        """Elementwise kernel over aligned row tiles.

        ``fn(out_view, *other_views, *scalars)`` runs per tile; all arrays
        must share the leading dimension (rows align tile-by-tile).
        """
        out = out or self.lg._make(self.shape)
        reqs = [(out.tiles, "v", "rw")]
        reqs += [(o.tiles, "v", "ro") for o in (self,) + tuple(others)]

        def task(point, out_arg, *rest):
            views = [r["v"].view for r in rest[:1 + len(others)]]
            fn(out_arg["v"].view, *views, *rest[1 + len(others):])

        self.lg.ctx.index_launch(task, self._dom(), reqs,
                                 args=tuple(scalars))
        return out

    # -- arithmetic ---------------------------------------------------------------------

    def __add__(self, other):
        if isinstance(other, LegateArray):
            return self._map(lambda o, a, b: np.copyto(o, a + b),
                             others=(other,))
        return self._map(lambda o, a, s: np.copyto(o, a + s),
                         scalars=(float(other),))

    def __sub__(self, other):
        if isinstance(other, LegateArray):
            return self._map(lambda o, a, b: np.copyto(o, a - b),
                             others=(other,))
        return self._map(lambda o, a, s: np.copyto(o, a - s),
                         scalars=(float(other),))

    def __mul__(self, other):
        if isinstance(other, LegateArray):
            return self._map(lambda o, a, b: np.copyto(o, a * b),
                             others=(other,))
        return self._map(lambda o, a, s: np.copyto(o, a * s),
                         scalars=(float(other),))

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, LegateArray):
            return self._map(lambda o, a, b: np.copyto(o, a / b),
                             others=(other,))
        return self._map(lambda o, a, s: np.copyto(o, a / s),
                         scalars=(float(other),))

    def __neg__(self):
        return self._map(lambda o, a: np.copyto(o, -a))

    def copy(self) -> "LegateArray":
        """An independent copy."""
        return self._map(lambda o, a: np.copyto(o, a))

    def abs(self) -> "LegateArray":
        """Elementwise absolute value."""
        return self._map(lambda o, a: np.copyto(o, np.abs(a)))

    def exp(self) -> "LegateArray":
        """Elementwise exponential."""
        return self._map(lambda o, a: np.copyto(o, np.exp(a)))

    def log(self) -> "LegateArray":
        """Elementwise natural logarithm."""
        return self._map(lambda o, a: np.copyto(o, np.log(a)))

    def power(self, exponent: float) -> "LegateArray":
        """Elementwise power with a scalar exponent."""
        return self._map(lambda o, a, e: np.copyto(o, np.power(a, e)),
                         scalars=(float(exponent),))

    def clip(self, lo: float, hi: float) -> "LegateArray":
        """Elementwise clamp into [lo, hi]."""
        return self._map(lambda o, a, l, h: np.copyto(o, np.clip(a, l, h)),
                         scalars=(float(lo), float(hi)))

    def maximum(self, other: "LegateArray") -> "LegateArray":
        """Elementwise maximum of two arrays."""
        return self._map(lambda o, a, b: np.copyto(o, np.maximum(a, b)),
                         others=(other,))

    def minimum(self, other: "LegateArray") -> "LegateArray":
        """Elementwise minimum of two arrays."""
        return self._map(lambda o, a, b: np.copyto(o, np.minimum(a, b)),
                         others=(other,))

    def greater(self, other: "LegateArray") -> "LegateArray":
        """Elementwise a > b as 0.0/1.0 doubles (NumPy-bool analogue)."""
        return self._map(
            lambda o, a, b: np.copyto(o, (a > b).astype(np.float64)),
            others=(other,))

    def sigmoid(self) -> "LegateArray":
        """Elementwise logistic sigmoid."""
        return self._map(lambda o, a: np.copyto(o, 1.0 / (1.0 + np.exp(-a))))

    def tanh(self) -> "LegateArray":
        """Elementwise hyperbolic tangent."""
        return self._map(lambda o, a: np.copyto(o, np.tanh(a)))

    def sqrt(self) -> "LegateArray":
        """Elementwise square root."""
        return self._map(lambda o, a: np.copyto(o, np.sqrt(a)))

    def where(self, cond: "LegateArray",
              other: "LegateArray") -> "LegateArray":
        """Elementwise select: cond != 0 ? self : other."""
        return self._map(
            lambda o, a, c, b: np.copyto(o, np.where(c != 0, a, b)),
            others=(cond, other))

    def axpy(self, alpha: float, x: "LegateArray") -> "LegateArray":
        """self += alpha * x, in place (returns self)."""
        def task(point, out_arg, x_arg, a):
            out_arg["v"].view[...] += a * x_arg["v"].view
        self.lg.ctx.index_launch(
            task, self._dom(),
            [(self.tiles, "v", "rw"), (x.tiles, "v", "ro")],
            args=(float(alpha),))
        return self

    # -- reductions ------------------------------------------------------------------------

    def dot(self, other: "LegateArray") -> float:
        """Inner product via per-tile partials + a future-map reduction."""
        def task(point, a_arg, b_arg):
            return float(np.sum(a_arg["v"].view * b_arg["v"].view))
        fm = self.lg.ctx.index_launch(
            task, self._dom(),
            [(self.tiles, "v", "ro"), (other.tiles, "v", "ro")])
        return fm.reduce(lambda a, b: a + b)

    def sum(self, axis: Optional[int] = None):
        """Sum of all elements, or along an axis of a 2-D array.

        ``axis=1`` is tile-local; ``axis=0`` uses per-tile partials plus a
        combining task — the same shard-and-gather shape as ``rmatvec``.
        """
        if axis is None:
            def task(point, a_arg):
                return float(np.sum(a_arg["v"].view))
            fm = self.lg.ctx.index_launch(task, self._dom(),
                                          [(self.tiles, "v", "ro")])
            return fm.reduce(lambda a, b: a + b)
        if self.ndim != 2 or axis not in (0, 1):
            raise ValueError("axis sums require a 2-D array and axis 0/1")
        if axis == 1:
            out = self.lg.zeros(self.shape[0])

            def rowsum(point, out_arg, a_arg):
                out_arg["v"].view[...] = a_arg["v"].view.sum(axis=1)

            self.lg.ctx.index_launch(
                rowsum, self._dom(),
                [(out.tiles, "v", "rw"), (self.tiles, "v", "ro")])
            return out
        ntiles = len(self.tiles)
        partials = self.lg.zeros((ntiles, self.shape[1]))
        out = self.lg.zeros(self.shape[1])

        def colpart(point, p_arg, a_arg):
            p_arg["v"].view[...] = a_arg["v"].view.sum(axis=0)

        self.lg.ctx.index_launch(
            colpart, self._dom(),
            [(partials.tiles, "v", "rw"), (self.tiles, "v", "ro")])

        def combine(p_arg, o_arg):
            o_arg["v"].view[...] = p_arg["v"].view.sum(axis=0)

        self.lg.ctx.launch(
            combine,
            [(partials.region, "v", "ro"), (out.region, "v", "rw")])
        return out

    def mean(self) -> float:
        """Mean of all elements (a distributed reduction)."""
        total = 1
        for e in self.shape:
            total *= e
        return self.sum() / total

    def max(self) -> float:
        """Maximum element (a distributed reduction)."""
        def task(point, a_arg):
            return float(np.max(a_arg["v"].view))
        fm = self.lg.ctx.index_launch(task, self._dom(),
                                      [(self.tiles, "v", "ro")])
        return fm.reduce(max)

    def min(self) -> float:
        """Minimum element (a distributed reduction)."""
        def task(point, a_arg):
            return float(np.min(a_arg["v"].view))
        fm = self.lg.ctx.index_launch(task, self._dom(),
                                      [(self.tiles, "v", "ro")])
        return fm.reduce(min)

    def norm(self) -> float:
        """Euclidean norm via a distributed dot."""
        import math
        return math.sqrt(self.dot(self))

    # -- linear algebra -----------------------------------------------------------------------

    def matvec(self, vec: "LegateArray") -> "LegateArray":
        """Row-tiled matrix-vector product: (N, F) @ (F,) -> (N,).

        Each point task reads the *whole* vector region (a broadcast in the
        dependence analysis) and its own row tile.
        """
        if self.ndim != 2 or vec.ndim != 1 or self.shape[1] != vec.shape[0]:
            raise ValueError("matvec shape mismatch")
        out = self.lg.zeros(self.shape[0])

        def task(point, out_arg, mat_arg, vec_arg):
            out_arg["v"].view[...] = mat_arg["v"].view @ vec_arg["v"].view

        self.lg.ctx.index_launch(
            task, self._dom(),
            [(out.tiles, "v", "rw"), (self.tiles, "v", "ro"),
             (vec.region, "v", "ro")])
        return out

    def rmatvec(self, vec: "LegateArray") -> "LegateArray":
        """Transposed product: (N, F).T @ (N,) -> (F,).

        Per-tile partial results land in a (tiles, F) scratch region, then a
        single combining task reduces them — the gather a centralized
        system would bottleneck on and DCR shards.
        """
        if self.ndim != 2 or vec.ndim != 1 or self.shape[0] != vec.shape[0]:
            raise ValueError("rmatvec shape mismatch")
        ntiles = len(self.tiles)
        partials = self.lg.zeros((ntiles, self.shape[1]))
        out = self.lg.zeros(self.shape[1])

        def partial(point, p_arg, mat_arg, vec_arg):
            p_arg["v"].view[...] = mat_arg["v"].view.T @ vec_arg["v"].view

        self.lg.ctx.index_launch(
            partial, self._dom(),
            [(partials.tiles, "v", "rw"), (self.tiles, "v", "ro"),
             (vec.tiles, "v", "ro")])

        def combine(p_arg, o_arg):
            o_arg["v"].view[...] = p_arg["v"].view.sum(axis=0)

        self.lg.ctx.launch(
            combine,
            [(partials.region, "v", "ro"), (out.region, "v", "rw")])
        return out

    def matmat(self, other: "LegateArray") -> "LegateArray":
        """Row-tiled matrix-matrix product: (N, K) @ (K, M) -> (N, M).

        Like ``matvec``, the right operand is read whole by every point
        task (a broadcast); the left rows stay tiled.
        """
        if self.ndim != 2 or other.ndim != 2 \
                or self.shape[1] != other.shape[0]:
            raise ValueError("matmat shape mismatch")
        out = self.lg.zeros((self.shape[0], other.shape[1]))

        def task(point, out_arg, a_arg, b_arg):
            out_arg["v"].view[...] = a_arg["v"].view @ b_arg["v"].view

        self.lg.ctx.index_launch(
            task, self._dom(),
            [(out.tiles, "v", "rw"), (self.tiles, "v", "ro"),
             (other.region, "v", "ro")])
        return out

    # -- export ------------------------------------------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        """Copy out the current contents (test/debug helper)."""
        store = self.lg.ctx.runtime.store
        f = self.region.field_space["v"]
        return store.raw(self.region.tree_id, f).copy()
