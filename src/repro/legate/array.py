"""Legate NumPy core: deferred ndarray-like arrays backed by regions.

Legate NumPy (paper §5.4) translates NumPy programs onto the Legion data
model: each array is a field of a region, each API call launches one or
more (group) tasks, and under DCR the whole NumPy program replicates
across shards with no centralized bottleneck.  This module is the
functional equivalent on our runtime, organized around three pieces:

* :class:`~.views.ViewSpec` — arrays are *views* over a backing region
  field.  Step-1 slices, transposes, and broadcasts compose without
  materializing; every launch maps the logical tiling through the view to
  a rectangle partition of the base region, so transformed operands still
  launch aligned group tasks (cunumeric's ``DeferredArrayView``).
* :class:`~.fields.FieldManager` — freed (shape, dtype) fields pool for
  reuse, with frees deferred until later launches retire, so long array
  programs keep bounded region counts and stable uid streams
  (legate.core's field manager).
* :mod:`~.ops` — a few generic module-level task bodies plus a kernel
  registry carry the whole operator surface; the kernel code travels in
  the hashed task arguments.

Chunking is automatic (the paper contrasts this with Dask's hand-tuned
chunks): :func:`~.views.choose_tiling` picks a grid — including column
tiles when the leading dimension is shorter than the tile budget.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..runtime.runtime import Context
from . import ops
from .fields import FieldManager
from .views import ViewSpec, choose_tiling

__all__ = ["LegateContext", "LegateArray"]


def _slice_bounds(key, shape: Tuple[int, ...]):
    """Normalize a getitem/setitem key into per-dim [lo, stop) bounds."""
    if not isinstance(key, tuple):
        key = (key,)
    if len(key) > len(shape):
        raise IndexError(f"too many indices for shape {shape}")
    bounds = []
    for d, ext in enumerate(shape):
        if d >= len(key):
            bounds.append((0, ext))
            continue
        k = key[d]
        if not isinstance(k, slice):
            raise TypeError(
                "deferred arrays support step-1 slice indexing only "
                f"(got {k!r}); use a length-1 slice to keep the dimension")
        if k.step not in (None, 1):
            raise ValueError("only step-1 slices are supported")
        lo, stop, _ = k.indices(ext)
        bounds.append((lo, stop))
    return bounds


class LegateContext:
    """Factory for deferred arrays inside a replicated control program."""

    def __init__(self, ctx: Context, num_tiles: int = 4):
        self.ctx = ctx
        self.num_tiles = max(1, num_tiles)
        # Per-context (hence per-shard) counters: names and partition ids
        # must be pure functions of the control program's call sequence, or
        # the hashed create_* calls would diverge across shards (§3).
        self._next_name = 0
        self._next_part = 0
        self.fields = FieldManager(self)
        self._partitions: dict = {}
        hook = getattr(ctx.runtime, "add_drain_hook", None)
        if hook is not None:
            hook(self.fields.flush)

    # -- backing storage -----------------------------------------------------

    def _create_region(self, shape: Tuple[int, ...]):
        name = f"lgarr{self._next_name}"
        self._next_name += 1
        fs = self.ctx.create_field_space([("v", "f8")], f"{name}_fs")
        ispace = self.ctx.create_index_space(
            shape if len(shape) > 1 else shape[0], f"{name}_is")
        return self.ctx.create_region(ispace, fs, name)

    def _new_array(self, shape: Tuple[int, ...]) -> "LegateArray":
        block, lease = self.fields.checkout(shape)
        return LegateArray(self, block, lease, ViewSpec.identity(shape))

    def _partition_for(self, region, rects, disjoint=None, complete=None):
        """The key partition for a rect list, created once per (region,
        rects) pair — repeated launches over pooled fields hit the cache
        and add no new resources to any shard's stream."""
        key = (region.uid, tuple(rects))
        part = self._partitions.get(key)
        if part is None:
            part = self.ctx.partition_rects(
                region, rects, name=f"{region.name}_v{self._next_part}",
                disjoint=disjoint, complete=complete)
            self._next_part += 1
            self._partitions[key] = part
        return part

    # -- creation ------------------------------------------------------------

    def zeros(self, shape: Union[int, Tuple[int, ...]],
              name: str = "") -> "LegateArray":
        """A zero-filled deferred array."""
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        arr = self._new_array(shape)
        self.ctx.fill(arr.region, "v", 0.0)
        return arr

    def full(self, shape: Union[int, Tuple[int, ...]], value: float,
             name: str = "") -> "LegateArray":
        """A constant-filled deferred array."""
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        arr = self._new_array(shape)
        self.ctx.fill(arr.region, "v", float(value))
        return arr

    def from_values(self, values: Sequence, name: str = "") -> "LegateArray":
        """Materialize explicit values through an initializer task."""
        data = np.asarray(values, dtype=np.float64)
        arr = self._new_array(data.shape)
        flat = tuple(float(x) for x in data.reshape(-1))
        self.fields.note_launch()
        self.ctx.index_launch(
            ops.init_body, list(range(len(arr._tiling()))),
            [(arr.tiles, "v", "wd")], args=(flat, data.shape))
        return arr

    # -- launch plumbing -----------------------------------------------------

    def _launch_elementwise(self, code: str, operands) -> "LegateArray":
        """One aligned group launch of a registry kernel over operands.

        Operands are deferred arrays (any view) or Python scalars; array
        shapes broadcast by NumPy rules and the result owns a fresh
        (possibly pooled) field.
        """
        arrays = [o for o in operands if isinstance(o, LegateArray)]
        rshape = np.broadcast_shapes(*(a.shape for a in arrays))
        views = [a if a.shape == tuple(rshape) else a.broadcast_to(rshape)
                 for a in arrays]
        out = self._new_array(tuple(rshape))
        tiling = choose_tiling(rshape, self.num_tiles)
        self.fields.note_launch()
        reqs = [(out._partition(tiling), "v", "wd")]
        reqs += [(v._partition(tiling), "v", "ro") for v in views]
        kinds = tuple("a" if isinstance(o, LegateArray) else "s"
                      for o in operands)
        specs = tuple(v.view.task_spec() for v in views)
        scalars = tuple(float(o) for o in operands
                        if not isinstance(o, LegateArray))
        self.ctx.index_launch(ops.elementwise_body,
                              list(range(len(tiling))), reqs,
                              args=(code, kinds, specs, scalars))
        return out


class LegateArray:
    """A deferred dense array: a view over a pooled region field.

    Slicing, ``.T`` and :meth:`broadcast_to` return *views* sharing this
    array's backing field (and its lease); operators launch group tasks.
    """

    def __init__(self, lg: LegateContext, block, lease, view: ViewSpec):
        self.lg = lg
        self.block = block
        self.lease = lease
        self.view = view

    # -- structure -----------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.view.shape

    @property
    def ndim(self) -> int:
        return len(self.view.shape)

    @property
    def region(self):
        """The backing root region (shared by all views of this field)."""
        return self.block.region

    @property
    def tiles(self):
        """The canonical key partition for this view's logical tiling."""
        return self._partition(self._tiling())

    def free(self) -> None:
        """Release the backing field to the pool (deferred; explicit form
        of the lease's GC release)."""
        self.lease.release()

    def _tiling(self, row_only: bool = False):
        return choose_tiling(self.shape, self.lg.num_tiles, row_only)

    def _partition(self, tiling):
        rects = [self.view.base_rect(lo, hi) for lo, hi in tiling]
        if self.view.writable:
            disjoint: Optional[bool] = True
            complete: Optional[bool] = True if self.view.is_identity else None
        else:
            disjoint = complete = None
        return self.lg._partition_for(self.block.region, rects,
                                      disjoint=disjoint, complete=complete)

    def _tile_shapes(self, tiling):
        return tuple(tuple(h - l + 1 for l, h in zip(lo, hi))
                     for lo, hi in tiling)

    # -- views ---------------------------------------------------------------

    def __getitem__(self, key) -> "LegateArray":
        """A step-1 slice view (no data movement, shared lease)."""
        bounds = _slice_bounds(key, self.shape)
        return LegateArray(self.lg, self.block, self.lease,
                           self.view.sliced(bounds))

    @property
    def T(self) -> "LegateArray":
        """Transpose view (identity for 1-D arrays)."""
        return LegateArray(self.lg, self.block, self.lease,
                           self.view.transposed())

    def transpose(self) -> "LegateArray":
        return self.T

    def broadcast_to(self, shape: Sequence[int]) -> "LegateArray":
        """A broadcast view following NumPy rules (read-only semantics)."""
        return LegateArray(self.lg, self.block, self.lease,
                           self.view.broadcast_to(shape))

    def _materialized(self) -> "LegateArray":
        """Copy this view into a fresh identity array (one launch)."""
        return self.lg._launch_elementwise("copy", (self,))

    def _as_dense(self) -> "LegateArray":
        """An identity-view array (self, or a materialized copy)."""
        return self if self.view.is_identity else self._materialized()

    def _no_broadcast(self) -> "LegateArray":
        """Self unless the view broadcasts (those kernels read blocks
        whose extent must match the tile)."""
        if any(self.view.stretched) or any(b is None for b in self.view.axes):
            return self._materialized()
        return self

    # -- in-place writes -----------------------------------------------------

    def __setitem__(self, key, value) -> None:
        """Write a scalar or (broadcastable) array into a slice of self."""
        if not self.view.writable:
            raise ValueError("cannot write through a transposed or "
                             "broadcast view")
        bounds = _slice_bounds(key, self.shape)
        dst = LegateArray(self.lg, self.block, self.lease,
                          self.view.sliced(bounds))
        tiling = dst._tiling()
        if not isinstance(value, LegateArray):
            self.lg.fields.note_launch()
            self.lg.ctx.index_launch(
                ops.fill_tile_body, list(range(len(tiling))),
                [(dst._partition(tiling), "v", "rw")],
                args=(float(value),))
            return
        if value.block is self.block:
            # Aliased source: materialize first, so the write has NumPy's
            # copy semantics instead of an order-dependent overlap.
            value = value._materialized()
        src = value if value.shape == dst.shape \
            else value.broadcast_to(dst.shape)
        self.lg.fields.note_launch()
        self.lg.ctx.index_launch(
            ops.setitem_body, list(range(len(tiling))),
            [(dst._partition(tiling), "v", "rw"),
             (src._partition(tiling), "v", "ro")],
            args=(src.view.task_spec(),))

    # -- arithmetic ----------------------------------------------------------

    def _binary(self, code: str, other) -> "LegateArray":
        if not isinstance(other, LegateArray):
            other = float(other)
        return self.lg._launch_elementwise(code, (self, other))

    def _rbinary(self, code: str, other) -> "LegateArray":
        return self.lg._launch_elementwise(code, (float(other), self))

    def __add__(self, other):
        return self._binary("add", other)

    __radd__ = __add__

    def __sub__(self, other):
        return self._binary("sub", other)

    def __rsub__(self, other):
        return self._rbinary("sub", other)

    def __mul__(self, other):
        return self._binary("mul", other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._binary("div", other)

    def __rtruediv__(self, other):
        return self._rbinary("div", other)

    def __neg__(self):
        return self.lg._launch_elementwise("neg", (self,))

    # -- elementwise methods -------------------------------------------------

    def copy(self) -> "LegateArray":
        """An independent copy (materializes views)."""
        return self.lg._launch_elementwise("copy", (self,))

    def abs(self) -> "LegateArray":
        return self.lg._launch_elementwise("abs", (self,))

    def exp(self) -> "LegateArray":
        return self.lg._launch_elementwise("exp", (self,))

    def log(self) -> "LegateArray":
        return self.lg._launch_elementwise("log", (self,))

    def sqrt(self) -> "LegateArray":
        return self.lg._launch_elementwise("sqrt", (self,))

    def tanh(self) -> "LegateArray":
        return self.lg._launch_elementwise("tanh", (self,))

    def sigmoid(self) -> "LegateArray":
        return self.lg._launch_elementwise("sigmoid", (self,))

    def power(self, exponent: float) -> "LegateArray":
        return self.lg._launch_elementwise("pow", (self, float(exponent)))

    def clip(self, lo: float, hi: float) -> "LegateArray":
        return self.lg._launch_elementwise(
            "clip", (self, float(lo), float(hi)))

    def maximum(self, other) -> "LegateArray":
        return self._binary("maximum", other)

    def minimum(self, other) -> "LegateArray":
        return self._binary("minimum", other)

    # -- comparisons (0.0/1.0 doubles) --------------------------------------

    def greater(self, other) -> "LegateArray":
        return self._binary("gt", other)

    def greater_equal(self, other) -> "LegateArray":
        return self._binary("ge", other)

    def less(self, other) -> "LegateArray":
        return self._binary("lt", other)

    def less_equal(self, other) -> "LegateArray":
        return self._binary("le", other)

    def equal(self, other) -> "LegateArray":
        return self._binary("eq", other)

    def not_equal(self, other) -> "LegateArray":
        return self._binary("ne", other)

    def where(self, cond: "LegateArray", other) -> "LegateArray":
        """Elementwise select: cond != 0 ? self : other."""
        if not isinstance(other, LegateArray):
            other = float(other)
        return self.lg._launch_elementwise("where", (cond, self, other))

    def axpy(self, alpha: float, x: "LegateArray") -> "LegateArray":
        """self += alpha * x, in place (returns self)."""
        if not self.view.writable:
            raise ValueError("axpy target must be a writable view")
        xb = x if x.shape == self.shape else x.broadcast_to(self.shape)
        tiling = self._tiling()
        self.lg.fields.note_launch()
        self.lg.ctx.index_launch(
            ops.axpy_body, list(range(len(tiling))),
            [(self._partition(tiling), "v", "rw"),
             (xb._partition(tiling), "v", "ro")],
            args=(float(alpha), xb.view.task_spec()))
        return self

    # -- reductions ----------------------------------------------------------

    def _reduce_scalar(self, code: str) -> float:
        tiling = self._tiling()
        self.lg.fields.note_launch()
        fm = self.lg.ctx.index_launch(
            ops.reduce_tile_body, list(range(len(tiling))),
            [(self._partition(tiling), "v", "ro")],
            args=(code, self.view.task_spec(), self._tile_shapes(tiling)))
        if code == "sum":
            return fm.reduce(lambda a, b: a + b)
        return fm.reduce(max if code == "max" else min)

    def _axis0_reduce(self, code: str) -> "LegateArray":
        if self.ndim != 2:
            raise ValueError("axis-0 reductions require a 2-D array")
        _n, m = self.shape
        tiling = self._tiling(row_only=True)
        ntiles = len(tiling)
        partials = self.lg._new_array((ntiles, m))
        out = self.lg._new_array((m,))
        prow = choose_tiling((ntiles, m), ntiles, row_only=True)
        self.lg.fields.note_launch()
        self.lg.ctx.index_launch(
            ops.axis0_partial_body, list(range(ntiles)),
            [(partials._partition(prow), "v", "wd"),
             (self._partition(tiling), "v", "ro")],
            args=(code, self.view.task_spec(), self._tile_shapes(tiling)))
        self.lg.fields.note_launch()
        self.lg.ctx.launch(
            ops.axis0_combine_body,
            [(partials.region, "v", "ro"), (out.region, "v", "wd")],
            args=(code,))
        partials.free()
        return out

    def sum(self, axis: Optional[int] = None):
        """Sum of all elements, or along axis 0/1 of a 2-D array.

        ``axis=1`` is tile-local under row tiling; ``axis=0`` uses
        per-tile partials plus a combining task — the shard-and-gather
        shape a centralized scheduler would bottleneck on.
        """
        if axis is None:
            return self._reduce_scalar("sum")
        if self.ndim != 2 or axis not in (0, 1):
            raise ValueError("axis sums require a 2-D array and axis 0/1")
        if axis == 0:
            return self._axis0_reduce("sum")
        out = self.lg._new_array((self.shape[0],))
        tiling = self._tiling(row_only=True)
        self.lg.fields.note_launch()
        self.lg.ctx.index_launch(
            ops.rowsum_body, list(range(len(tiling))),
            [(out._partition(choose_tiling((self.shape[0],),
                                           self.lg.num_tiles)), "v", "wd"),
             (self._partition(tiling), "v", "ro")],
            args=(self.view.task_spec(), self._tile_shapes(tiling)))
        return out

    def max(self, axis: Optional[int] = None):
        """Maximum of all elements, or along axis 0 of a 2-D array."""
        if axis is None:
            return self._reduce_scalar("max")
        if axis != 0:
            raise ValueError("max supports axis=None or axis=0")
        return self._axis0_reduce("max")

    def min(self) -> float:
        """Minimum element (a distributed reduction)."""
        return self._reduce_scalar("min")

    def mean(self) -> float:
        """Mean of all elements (a distributed reduction)."""
        total = 1
        for e in self.shape:
            total *= e
        return self.sum() / total

    def norm(self) -> float:
        """Euclidean norm via a distributed dot."""
        return math.sqrt(self.dot(self))

    def dot(self, other: "LegateArray") -> float:
        """Inner product via per-tile partials + a future-map reduction."""
        if self.shape != other.shape:
            raise ValueError("dot requires matching shapes")
        tiling = self._tiling()
        self.lg.fields.note_launch()
        fm = self.lg.ctx.index_launch(
            ops.dot_tile_body, list(range(len(tiling))),
            [(self._partition(tiling), "v", "ro"),
             (other._partition(tiling), "v", "ro")],
            args=(self.view.task_spec(), other.view.task_spec(),
                  self._tile_shapes(tiling)))
        return fm.reduce(lambda a, b: a + b)

    # -- linear algebra ------------------------------------------------------

    def matvec(self, vec: "LegateArray") -> "LegateArray":
        """Row-tiled matrix-vector product: (N, F) @ (F,) -> (N,).

        Each point task reads the *whole* vector (a broadcast in the
        dependence analysis) and its own row tile.
        """
        if self.ndim != 2 or vec.ndim != 1 or self.shape[1] != vec.shape[0]:
            raise ValueError("matvec shape mismatch")
        mat = self._no_broadcast()
        vec_d = vec._as_dense()
        out = self.lg._new_array((self.shape[0],))
        tiling = mat._tiling(row_only=True)
        self.lg.fields.note_launch()
        self.lg.ctx.index_launch(
            ops.matvec_body, list(range(len(tiling))),
            [(out._partition(choose_tiling((self.shape[0],),
                                           self.lg.num_tiles)), "v", "wd"),
             (mat._partition(tiling), "v", "ro"),
             (vec_d.region, "v", "ro")],
            args=(mat.view.task_spec(),))
        return out

    def rmatvec(self, vec: "LegateArray") -> "LegateArray":
        """Transposed product: (N, F).T @ (N,) -> (F,).

        Per-tile partial results land in a (tiles, F) scratch field
        (pooled across calls), then one combining task reduces them — the
        gather a centralized system would bottleneck on and DCR shards.
        """
        if self.ndim != 2 or vec.ndim != 1 or self.shape[0] != vec.shape[0]:
            raise ValueError("rmatvec shape mismatch")
        mat = self._no_broadcast()
        vecb = vec._no_broadcast()
        tiling = mat._tiling(row_only=True)
        vtiling = choose_tiling((self.shape[0],), self.lg.num_tiles)
        ntiles = len(tiling)
        f = self.shape[1]
        partials = self.lg._new_array((ntiles, f))
        out = self.lg._new_array((f,))
        prow = choose_tiling((ntiles, f), ntiles, row_only=True)
        self.lg.fields.note_launch()
        self.lg.ctx.index_launch(
            ops.rmatvec_partial_body, list(range(ntiles)),
            [(partials._partition(prow), "v", "wd"),
             (mat._partition(tiling), "v", "ro"),
             (vecb._partition(vtiling), "v", "ro")],
            args=(mat.view.task_spec(), vecb.view.task_spec()))
        self.lg.fields.note_launch()
        self.lg.ctx.launch(
            ops.rmatvec_combine_body,
            [(partials.region, "v", "ro"), (out.region, "v", "wd")])
        partials.free()
        return out

    def matmat(self, other: "LegateArray") -> "LegateArray":
        """Row-tiled matrix-matrix product: (N, K) @ (K, M) -> (N, M).

        Like ``matvec``, the right operand is read whole by every point
        task (a broadcast); the left rows stay tiled.
        """
        if self.ndim != 2 or other.ndim != 2 \
                or self.shape[1] != other.shape[0]:
            raise ValueError("matmat shape mismatch")
        mat = self._no_broadcast()
        rhs = other._as_dense()
        out = self.lg._new_array((self.shape[0], other.shape[1]))
        tiling = mat._tiling(row_only=True)
        self.lg.fields.note_launch()
        self.lg.ctx.index_launch(
            ops.matmat_body, list(range(len(tiling))),
            [(out._partition(out._tiling(row_only=True)), "v", "wd"),
             (mat._partition(tiling), "v", "ro"),
             (rhs.region, "v", "ro")],
            args=(mat.view.task_spec(),))
        return out

    # -- export --------------------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        """Copy out the view's current contents (test/debug helper)."""
        store = self.lg.ctx.runtime.store
        f = self.region.field_space["v"]
        return self.view.read(store.raw(self.region.tree_id, f))
