"""Scale-out operation streams for the Legate benchmarks (Figs. 19-20).

The paper's weak-scaling axis is *sockets* (20 CPU cores or 1 GPU per
socket) on DGX-1V nodes; Legate runs the NumPy program under DCR while
``dask.array`` runs the same program through Dask's centralized scheduler
(CPU only, with hand-tuned chunk sizes).  The per-iteration operation
structure below is exactly what the functional solvers in
:mod:`repro.legate.linalg` launch, sized to the machine.
"""

from __future__ import annotations

from typing import Optional

from ..oracle import READ_ONLY, READ_WRITE
from ..sim.machine import MachineSpec, ProcKind
from ..sim.workload import DepSpec, SimOp, SimProgram
from ..apps.common import TiledField, group_op, single_op

__all__ = ["logreg_program", "cg_program", "SAMPLES_PER_SOCKET", "FEATURES"]

SAMPLES_PER_SOCKET = 2_000_000
# The CG solve runs on a much larger sparse system (its per-row work is a
# handful of flops, not a dense feature dot).
CG_ROWS_PER_SOCKET = 64_000_000
FEATURES = 32
# Per-sample per-feature cost of the fused map operations on one socket
# (20 cores) — calibrated to a few iterations/s per socket like Fig. 19.
SECONDS_PER_SAMPLE_CPU = 6.0e-9
# One V100 vs one 20-core socket (so ~240x a single core on these
# memory-bound kernels).
GPU_SPEEDUP = 240.0


def _machine_points(machine: MachineSpec, gpu: bool) -> int:
    kind = ProcKind.GPU if gpu else ProcKind.CPU
    return max(1, machine.total_procs(kind))


def logreg_program(machine: MachineSpec, *, gpu: bool = False,
                   iterations: int = 10, warmup: int = 2,
                   tracing: bool = True,
                   chunks_per_socket: int | None = None) -> SimProgram:
    """Fig. 19: logistic regression weak-scaled per socket.

    Chunking matches what both systems actually do on CPUs: one chunk per
    *core* (Legate picks this automatically; the Dask runs were tuned to
    it), and one chunk per GPU for GPU execution.
    """
    sockets = max(1, machine.nodes)
    if chunks_per_socket is None:
        chunks_per_socket = 1 if gpu else max(1, machine.cpus_per_node)
    tiles_n = sockets * chunks_per_socket
    rows = SAMPLES_PER_SOCKET // chunks_per_socket
    threads = max(1, machine.cpus_per_node // chunks_per_socket)
    per_row = SECONDS_PER_SAMPLE_CPU * FEATURES \
        / (GPU_SPEEDUP if gpu else threads)
    kind = ProcKind.GPU if gpu else ProcKind.CPU

    x = TiledField.build("lgX", [("v", "f8")], tiles_n, with_ghost=False)
    z = TiledField.build("lgz", [("v", "f8")], tiles_n, with_ghost=False)
    g = TiledField.build("lgg", [("v", "f8")], tiles_n, with_ghost=False)
    w = TiledField.build("lgw", [("v", "f8")], 1, with_ghost=False)

    prog = SimProgram(f"legate-logreg-{'gpu' if gpu else 'cpu'}",
                      scr_applicable=True)
    prog.work_per_iteration = 1.0    # throughput axis: iterations/s

    prev_w: Optional[int] = None
    grad_bytes = FEATURES * 8.0
    for it in range(warmup + iterations):
        timed = it >= warmup
        start = prog.begin_iteration() if timed else None
        traced = tracing and it >= 1

        # z = X @ w  (each tile reads the whole small w: a broadcast)
        mv = group_op(f"matvec[{it}]", tiles_n,
                      [(z.tiles, z.fieldset("v"), READ_WRITE),
                       (x.tiles, x.fieldset("v"), READ_ONLY)])
        deps = ([DepSpec(prev_w, "all", grad_bytes)]
                if prev_w is not None else [])
        i_mv = prog.add(SimOp(mv.name, tiles_n, rows * per_row * 0.45,
                              deps=deps, proc_kind=kind, operation=mv,
                              traced=traced))

        # p = sigmoid(z); r = p - y  (fused elementwise)
        sg = group_op(f"sigmoid[{it}]", tiles_n,
                      [(z.tiles, z.fieldset("v"), READ_WRITE)])
        i_sg = prog.add(SimOp(sg.name, tiles_n, rows * per_row * 0.10,
                              deps=[DepSpec(i_mv, "pointwise", 0.0)],
                              proc_kind=kind, operation=sg, traced=traced))

        # partial gradients: g_tile = X_tile.T @ r_tile
        gr = group_op(f"rmatvec[{it}]", tiles_n,
                      [(g.tiles, g.fieldset("v"), READ_WRITE),
                       (x.tiles, x.fieldset("v"), READ_ONLY),
                       (z.tiles, z.fieldset("v"), READ_ONLY)])
        i_gr = prog.add(SimOp(gr.name, tiles_n, rows * per_row * 0.45,
                              deps=[DepSpec(i_sg, "pointwise", 0.0)],
                              proc_kind=kind, operation=gr, traced=traced))

        # gradient reduction + weight update (small, but a global gather).
        up = single_op(f"update_w[{it}]",
                       [(g.region, g.fieldset("v"), READ_ONLY),
                        (w.region, w.fieldset("v"), READ_WRITE)])
        prev_w = prog.add(SimOp(up.name, 1, 1e-6,
                                deps=[DepSpec(i_gr, "all", grad_bytes)],
                                proc_kind=kind, operation=up,
                                traced=traced))
        if timed:
            prog.end_iteration(start)  # type: ignore[arg-type]
    return prog


def cg_program(machine: MachineSpec, *, gpu: bool = False,
               iterations: int = 10, warmup: int = 2,
               tracing: bool = True,
               chunks_per_socket: int | None = None) -> SimProgram:
    """Fig. 20: preconditioned CG; sparse (stencil) matvec + two dots."""
    sockets = max(1, machine.nodes)
    if chunks_per_socket is None:
        chunks_per_socket = 1 if gpu else max(1, machine.cpus_per_node)
    tiles_n = sockets * chunks_per_socket
    rows = CG_ROWS_PER_SOCKET // chunks_per_socket
    threads = max(1, machine.cpus_per_node // chunks_per_socket)
    per_row = SECONDS_PER_SAMPLE_CPU * 12 / (GPU_SPEEDUP if gpu else threads)
    kind = ProcKind.GPU if gpu else ProcKind.CPU
    halo_bytes = 8.0 * 1024            # boundary rows of p

    p = TiledField.build("cgp", [("v", "f8")], tiles_n)
    r = TiledField.build("cgr", [("v", "f8")], tiles_n, with_ghost=False)
    xv = TiledField.build("cgx", [("v", "f8")], tiles_n, with_ghost=False)
    assert p.ghost is not None

    prog = SimProgram(f"legate-cg-{'gpu' if gpu else 'cpu'}",
                      scr_applicable=True)
    prog.work_per_iteration = 1.0

    prev_p: Optional[int] = None
    for it in range(warmup + iterations):
        timed = it >= warmup
        start = prog.begin_iteration() if timed else None
        traced = tracing and it >= 1

        # Ap = A @ p: sparse stencil matvec with neighbor-row ghosts.
        mv = group_op(f"spmv[{it}]", tiles_n,
                      [(r.tiles, r.fieldset("v"), READ_WRITE),
                       (p.ghost, p.fieldset("v"), READ_ONLY)])
        deps = ([DepSpec(prev_p, "halo", halo_bytes, (-1, 1))]
                if prev_p is not None else [])
        i_mv = prog.add(SimOp(mv.name, tiles_n, rows * per_row * 0.5,
                              deps=deps, proc_kind=kind, operation=mv,
                              traced=traced))

        # alpha = rz / p.Ap: partial dots + scalar reduction.
        d1 = group_op(f"dot1[{it}]", tiles_n,
                      [(p.tiles, p.fieldset("v"), READ_ONLY),
                       (r.tiles, r.fieldset("v"), READ_ONLY)])
        i_d1 = prog.add(SimOp(d1.name, tiles_n, rows * per_row * 0.1,
                              deps=[DepSpec(i_mv, "pointwise", 0.0)],
                              proc_kind=kind, operation=d1, traced=traced))
        s1 = single_op(f"alpha[{it}]",
                       [(r.region, r.fieldset("v"), READ_ONLY)])
        i_s1 = prog.add(SimOp(s1.name, 1, 1e-6,
                              deps=[DepSpec(i_d1, "all", 8.0)],
                              proc_kind=kind, operation=s1, traced=traced))

        # x += alpha p; r -= alpha Ap; z = Minv r  (fused axpys)
        ax = group_op(f"axpys[{it}]", tiles_n,
                      [(xv.tiles, xv.fieldset("v"), READ_WRITE),
                       (r.tiles, r.fieldset("v"), READ_WRITE)])
        i_ax = prog.add(SimOp(ax.name, tiles_n, rows * per_row * 0.25,
                              deps=[DepSpec(i_s1, "all", 8.0)],
                              proc_kind=kind, operation=ax, traced=traced))

        # beta dot + p update (needs the new z everywhere next iteration).
        d2 = group_op(f"dot2[{it}]", tiles_n,
                      [(r.tiles, r.fieldset("v"), READ_ONLY)])
        i_d2 = prog.add(SimOp(d2.name, tiles_n, rows * per_row * 0.05,
                              deps=[DepSpec(i_ax, "pointwise", 0.0)],
                              proc_kind=kind, operation=d2, traced=traced))
        pu = group_op(f"update_p[{it}]", tiles_n,
                      [(p.tiles, p.fieldset("v"), READ_WRITE),
                       (r.tiles, r.fieldset("v"), READ_ONLY)])
        prev_p = prog.add(SimOp(pu.name, tiles_n, rows * per_row * 0.10,
                                deps=[DepSpec(i_d2, "all", 8.0)],
                                proc_kind=kind, operation=pu,
                                traced=traced))
        if timed:
            prog.end_iteration(start)  # type: ignore[arg-type]
    return prog
