"""Differential fuzzing support for the deferred array frontend.

A fuzz *program* is a JSON-able list of step dicts over a growing list of
arrays — creations, elementwise ops, view transforms (slice / transpose /
broadcast), in-place slice writes, and reductions.  Two interpreters run
the same program:

* :func:`run_numpy` — the reference semantics, plain ndarrays;
* :func:`run_deferred` — the deferred frontend under a replicated
  :class:`~repro.runtime.Runtime` on any backend, returning the outputs
  *and* the per-shard control-determinism digest vector.

The generated domain is **integer-valued doubles**: creations and scalars
are small integers, the op set preserves integrality (no division or
transcendentals), and multiplies/dots are gated by a tracked magnitude
bound so every intermediate — including arbitrarily re-associated tiled
reduction partials — stays below 2**53 and is therefore *exact* in
float64.  That turns the usual "allclose" fuzz oracle into strict
equality: any tiling, any shard count, any backend must reproduce NumPy
bit-for-bit, and all shards must hash the identical call stream.

:func:`format_program` prints a program as readable pseudo-assignments;
failures shrink well because every step is locally droppable.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..regions import fresh_id_epoch
from ..runtime import Runtime
from .array import LegateContext

__all__ = ["run_numpy", "run_deferred", "format_program",
           "program_to_json", "program_from_json", "MAX_EXACT"]

#: Magnitude cap for generated intermediates: products stay below this and
#: reduction totals below 2**53, so float64 arithmetic is exact.
MAX_EXACT = float(2 ** 40)

_BINARY_NP = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "maximum": np.maximum,
    "minimum": np.minimum,
    "gt": lambda a, b: (a > b).astype(np.float64),
    "ge": lambda a, b: (a >= b).astype(np.float64),
    "lt": lambda a, b: (a < b).astype(np.float64),
    "le": lambda a, b: (a <= b).astype(np.float64),
    "eq": lambda a, b: (a == b).astype(np.float64),
    "ne": lambda a, b: (a != b).astype(np.float64),
}

_BINARY_DEF = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "maximum": lambda a, b: a.maximum(b),
    "minimum": lambda a, b: a.minimum(b),
    "gt": lambda a, b: a.greater(b),
    "ge": lambda a, b: a.greater_equal(b),
    "lt": lambda a, b: a.less(b),
    "le": lambda a, b: a.less_equal(b),
    "eq": lambda a, b: a.equal(b),
    "ne": lambda a, b: a.not_equal(b),
}

_UNARY_NP = {
    "neg": lambda a: -a,
    "abs": np.abs,
    "copy": lambda a: a.copy(),
}

_UNARY_DEF = {
    "neg": lambda a: -a,
    "abs": lambda a: a.abs(),
    "copy": lambda a: a.copy(),
}


def _key(bounds: List[List[int]]) -> Tuple[slice, ...]:
    return tuple(slice(lo, stop) for lo, stop in bounds)


def _interpret(program: List[Dict[str, Any]], make, unary, binary,
               setitem, reduce_step) -> Tuple[List[Any], List[float]]:
    """Shared control flow of both interpreters."""
    arrays: List[Any] = []
    scalars: List[float] = []
    for step in program:
        op = step["op"]
        if op == "create":
            arrays.append(make(step))
        elif op == "unary":
            arrays.append(unary[step["fn"]](arrays[step["src"]]))
        elif op == "binary":
            arrays.append(binary[step["fn"]](arrays[step["a"]],
                                             arrays[step["b"]]))
        elif op == "scalar":
            arrays.append(binary[step["fn"]](arrays[step["a"]],
                                             float(step["s"])))
        elif op == "where":
            c, a, b = (arrays[step[k]] for k in ("c", "a", "b"))
            arrays.append(a.where(c, b) if hasattr(a, "where")
                          else np.where(c != 0, a, b).astype(np.float64))
        elif op == "slice":
            arrays.append(arrays[step["src"]][_key(step["bounds"])])
        elif op == "transpose":
            arrays.append(arrays[step["src"]].T)
        elif op == "broadcast":
            src = arrays[step["src"]]
            shape = tuple(step["shape"])
            if hasattr(src, "broadcast_to"):
                arrays.append(src.broadcast_to(shape))
            else:
                arrays.append(np.broadcast_to(src, shape))
        elif op == "setitem":
            setitem(arrays, step)
        elif op in ("sum", "max", "dot"):
            value = reduce_step(arrays, step)
            if isinstance(value, float):
                scalars.append(value)
            else:
                arrays.append(value)
        else:
            raise ValueError(f"unknown fuzz op {op!r}")
    return arrays, scalars


# -- NumPy reference interpreter ----------------------------------------------

def run_numpy(program: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Reference run: final contents of every array plus scalar results."""

    def make(step):
        return np.array(step["values"],
                        dtype=np.float64).reshape(step["shape"])

    def setitem(arrays, step):
        dst = arrays[step["dst"]]
        if "src" in step:
            dst[_key(step["bounds"])] = arrays[step["src"]]
        else:
            dst[_key(step["bounds"])] = float(step["s"])

    def reduce_step(arrays, step):
        if step["op"] == "dot":
            return float(np.sum(arrays[step["a"]] * arrays[step["b"]]))
        a = arrays[step["src"]]
        axis = step.get("axis")
        if step["op"] == "sum":
            return float(np.sum(a)) if axis is None \
                else np.sum(a, axis=axis)
        return float(np.max(a)) if axis is None else np.max(a, axis=axis)

    arrays, scalars = _interpret(program, make, _UNARY_NP, _BINARY_NP,
                                 setitem, reduce_step)
    return {"arrays": [np.array(a, dtype=np.float64) for a in arrays],
            "scalars": scalars}


# -- deferred-frontend interpreter --------------------------------------------

def run_deferred(program: List[Dict[str, Any]], num_shards: int = 1,
                 backend: str = "inprocess", num_tiles: int = 4
                 ) -> Tuple[Dict[str, Any], List[int]]:
    """Run the program replicated; returns (outputs, per-shard digests).

    The run executes inside a fresh resource-id epoch so digest vectors
    compare equal across repeated runs (and backends) in one process.
    """

    def control(ctx):
        lg = LegateContext(ctx, num_tiles=num_tiles)

        def make(step):
            return lg.from_values(
                np.array(step["values"],
                         dtype=np.float64).reshape(step["shape"]))

        def setitem(arrays, step):
            dst = arrays[step["dst"]]
            if "src" in step:
                dst[_key(step["bounds"])] = arrays[step["src"]]
            else:
                dst[_key(step["bounds"])] = float(step["s"])

        def reduce_step(arrays, step):
            if step["op"] == "dot":
                return arrays[step["a"]].dot(arrays[step["b"]])
            a = arrays[step["src"]]
            axis = step.get("axis")
            if step["op"] == "sum":
                return a.sum(axis=axis)
            return a.max(axis=axis)

        arrays, scalars = _interpret(program, make, _UNARY_DEF, _BINARY_DEF,
                                     setitem, reduce_step)
        return {"arrays": [a.to_numpy() for a in arrays],
                "scalars": scalars}

    rt = Runtime(num_shards=num_shards, backend=backend)
    with fresh_id_epoch():
        out = rt.execute(control)
    return out, rt.determinism_digests()


# -- serialization & pretty-printing ------------------------------------------

def program_to_json(program: List[Dict[str, Any]]) -> str:
    return json.dumps({"steps": program}, indent=1)


def program_from_json(text: str) -> List[Dict[str, Any]]:
    return json.loads(text)["steps"]


def format_program(program: List[Dict[str, Any]]) -> str:
    """Render a program as readable pseudo-assignments (repro aid)."""
    lines: List[str] = []
    n_arr = n_sc = 0

    def bnd(bounds):
        return ", ".join(f"{lo}:{stop}" for lo, stop in bounds)

    for step in program:
        op = step["op"]
        if op == "create":
            lines.append(f"a{n_arr} = create{tuple(step['shape'])} "
                         f"values={step['values']}")
            n_arr += 1
        elif op == "unary":
            lines.append(f"a{n_arr} = {step['fn']}(a{step['src']})")
            n_arr += 1
        elif op == "binary":
            lines.append(
                f"a{n_arr} = {step['fn']}(a{step['a']}, a{step['b']})")
            n_arr += 1
        elif op == "scalar":
            lines.append(
                f"a{n_arr} = {step['fn']}(a{step['a']}, {step['s']})")
            n_arr += 1
        elif op == "where":
            lines.append(f"a{n_arr} = where(a{step['c']} != 0, "
                         f"a{step['a']}, a{step['b']})")
            n_arr += 1
        elif op == "slice":
            lines.append(
                f"a{n_arr} = a{step['src']}[{bnd(step['bounds'])}]")
            n_arr += 1
        elif op == "transpose":
            lines.append(f"a{n_arr} = a{step['src']}.T")
            n_arr += 1
        elif op == "broadcast":
            lines.append(f"a{n_arr} = broadcast(a{step['src']}, "
                         f"{tuple(step['shape'])})")
            n_arr += 1
        elif op == "setitem":
            src = f"a{step['src']}" if "src" in step else str(step["s"])
            lines.append(
                f"a{step['dst']}[{bnd(step['bounds'])}] = {src}")
        elif op in ("sum", "max", "dot"):
            if op == "dot":
                rhs = f"dot(a{step['a']}, a{step['b']})"
            else:
                rhs = f"{op}(a{step['src']}, axis={step.get('axis')})"
            if step.get("axis") is None or op == "dot":
                lines.append(f"s{n_sc} = {rhs}")
                n_sc += 1
            else:
                lines.append(f"a{n_arr} = {rhs}")
                n_arr += 1
        else:
            lines.append(f"?? {step}")
    return "\n".join(lines)
