"""Legate NumPy: distributed deferred arrays over DCR (paper §5.4)."""

from .array import LegateArray, LegateContext
from .kmeans import kmeans, make_blobs, reference_kmeans
from .linalg import (logistic_regression, make_problem, preconditioned_cg,
                     reference_logistic_regression,
                     reference_preconditioned_cg)
from .programs import cg_program, logreg_program

__all__ = [
    "LegateArray", "LegateContext",
    "kmeans", "make_blobs", "reference_kmeans",
    "logistic_regression", "make_problem", "preconditioned_cg",
    "reference_logistic_regression", "reference_preconditioned_cg",
    "cg_program", "logreg_program",
]
