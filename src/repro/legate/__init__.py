"""Legate NumPy: distributed deferred arrays over DCR (paper §5.4)."""

from .array import LegateArray, LegateContext
from .fields import FieldManager
from .kmeans import explicit_kmeans, kmeans, make_blobs, reference_kmeans
from .linalg import (explicit_logistic_regression, logistic_regression,
                     make_problem, preconditioned_cg,
                     reference_logistic_regression,
                     reference_preconditioned_cg)
from .programs import cg_program, logreg_program
from .stencil import (explicit_stencil, make_wave, reference_stencil,
                      sliced_stencil)
from .views import ViewSpec, choose_tiling

__all__ = [
    "LegateArray", "LegateContext", "FieldManager",
    "ViewSpec", "choose_tiling",
    "kmeans", "explicit_kmeans", "make_blobs", "reference_kmeans",
    "logistic_regression", "explicit_logistic_regression", "make_problem",
    "preconditioned_cg",
    "reference_logistic_regression", "reference_preconditioned_cg",
    "sliced_stencil", "explicit_stencil", "reference_stencil", "make_wave",
    "cg_program", "logreg_program",
]
