"""Legate NumPy solvers: the two Fig. 19/20 workloads, functionally.

Both are written exactly as the NumPy programs the paper benchmarks —
logistic regression by batch gradient descent, and a (Jacobi-)
preconditioned conjugate gradient solver — but against the deferred
:class:`LegateArray` API, so every array operation is a real (group) task
launch analyzed by DCR.  NumPy references allow exact checking.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.rng import CounterRNG
from ..runtime.runtime import Context
from .array import LegateArray, LegateContext

__all__ = ["logistic_regression", "reference_logistic_regression",
           "preconditioned_cg", "reference_preconditioned_cg",
           "make_problem"]


def make_problem(n: int, f: int, seed: int = 3
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic synthetic classification problem (counter-based RNG)."""
    rng = CounterRNG(seed)
    x = np.array([rng.random() - 0.5 for _ in range(n * f)]).reshape(n, f)
    w_true = np.array([rng.random() - 0.5 for _ in range(f)])
    y = (x @ w_true > 0).astype(np.float64)
    return x, y


def logistic_regression(ctx: Context, x_data: np.ndarray,
                        y_data: np.ndarray, iterations: int = 10,
                        lr: float = 0.5, num_tiles: int = 4) -> np.ndarray:
    """Batch-gradient-descent logistic regression on the deferred arrays.

    The per-iteration structure matches the Fig. 19 benchmark: a row-tiled
    matvec, a sigmoid, a transposed matvec producing the gradient, and a
    weight update that every subsequent iteration depends on.
    """
    lg = LegateContext(ctx, num_tiles)
    n, f = x_data.shape
    x = lg.from_values(x_data, "X")
    y = lg.from_values(y_data, "y")
    w = lg.zeros(f, "w")
    for _ in range(iterations):
        z = x.matvec(w)
        p = z.sigmoid()
        r = p - y
        grad = x.rmatvec(r)
        w.axpy(-lr / n, grad)
    return w.to_numpy()


def reference_logistic_regression(x: np.ndarray, y: np.ndarray,
                                  iterations: int = 10,
                                  lr: float = 0.5) -> np.ndarray:
    n, _f = x.shape
    w = np.zeros(x.shape[1])
    for _ in range(iterations):
        p = 1.0 / (1.0 + np.exp(-(x @ w)))
        grad = x.T @ (p - y)
        w = w - lr / n * grad
    return w


def preconditioned_cg(ctx: Context, a_data: np.ndarray, b_data: np.ndarray,
                      iterations: int = 10, num_tiles: int = 4
                      ) -> np.ndarray:
    """Jacobi-preconditioned conjugate gradients on the deferred arrays."""
    lg = LegateContext(ctx, num_tiles)
    a = lg.from_values(a_data, "A")
    b = lg.from_values(b_data, "b")
    minv = lg.from_values(1.0 / np.diag(a_data), "Minv")
    x = lg.zeros(b_data.shape[0], "x")
    r = b - a.matvec(x)
    z = minv * r
    p = z * 1.0
    rz = r.dot(z)
    for _ in range(iterations):
        ap = a.matvec(p)
        alpha = rz / p.dot(ap)
        x.axpy(alpha, p)
        r.axpy(-alpha, ap)
        z = minv * r
        rz_new = r.dot(z)
        beta = rz_new / rz
        p = z + beta * p
        rz = rz_new
    return x.to_numpy()


def reference_preconditioned_cg(a: np.ndarray, b: np.ndarray,
                                iterations: int = 10) -> np.ndarray:
    minv = 1.0 / np.diag(a)
    x = np.zeros_like(b)
    r = b - a @ x
    z = minv * r
    p = z.copy()
    rz = r @ z
    for _ in range(iterations):
        ap = a @ p
        alpha = rz / (p @ ap)
        x = x + alpha * p
        r = r - alpha * ap
        z = minv * r
        rz_new = r @ z
        beta = rz_new / rz
        p = z + beta * p
        rz = rz_new
    return x
