"""Legate NumPy solvers: the two Fig. 19/20 workloads, functionally.

Both are written exactly as the NumPy programs the paper benchmarks —
logistic regression by batch gradient descent, and a (Jacobi-)
preconditioned conjugate gradient solver — but against the deferred
:class:`LegateArray` API, so every array operation is a real (group) task
launch analyzed by DCR.  NumPy references allow exact checking.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.rng import CounterRNG
from ..runtime.runtime import Context
from .array import LegateArray, LegateContext
from .views import choose_tiling

__all__ = ["logistic_regression", "explicit_logistic_regression",
           "reference_logistic_regression",
           "preconditioned_cg", "reference_preconditioned_cg",
           "make_problem"]


def make_problem(n: int, f: int, seed: int = 3
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic synthetic classification problem (counter-based RNG)."""
    rng = CounterRNG(seed)
    x = np.array([rng.random() - 0.5 for _ in range(n * f)]).reshape(n, f)
    w_true = np.array([rng.random() - 0.5 for _ in range(f)])
    y = (x @ w_true > 0).astype(np.float64)
    return x, y


def logistic_regression(ctx: Context, x_data: np.ndarray,
                        y_data: np.ndarray, iterations: int = 10,
                        lr: float = 0.5, num_tiles: int = 4) -> np.ndarray:
    """Batch-gradient-descent logistic regression on the deferred arrays.

    The per-iteration structure matches the Fig. 19 benchmark: a row-tiled
    matvec, a sigmoid, a transposed matvec producing the gradient, and a
    weight update that every subsequent iteration depends on.
    """
    lg = LegateContext(ctx, num_tiles)
    n, f = x_data.shape
    x = lg.from_values(x_data, "X")
    y = lg.from_values(y_data, "y")
    w = lg.zeros(f, "w")
    for _ in range(iterations):
        z = x.matvec(w)
        p = z.sigmoid()
        r = p - y
        grad = x.rmatvec(r)
        w.axpy(-lr / n, grad)
    return w.to_numpy()


def explicit_logistic_regression(ctx: Context, x_data: np.ndarray,
                                 y_data: np.ndarray, iterations: int = 10,
                                 lr: float = 0.5, num_tiles: int = 4
                                 ) -> np.ndarray:
    """Explicit-region mirror of :func:`logistic_regression`.

    Byte-identical output: the same :func:`~.views.choose_tiling` row
    boundaries, the same per-tile expressions the generic kernels
    evaluate (matvec against the whole vector, the sigmoid form,
    ``mat.T @ vec`` partials folded by ``sum(axis=0)``), hand-written
    over raw regions.  The byte-identity tier diffs the two.
    """
    n, f = x_data.shape

    def make_region(name, shape):
        fs = ctx.create_field_space([("v", "f8")], f"{name}_fs")
        ispace = ctx.create_index_space(
            shape if isinstance(shape, tuple) and len(shape) > 1
            else (shape if isinstance(shape, int) else shape[0]),
            f"{name}_is")
        return ctx.create_region(ispace, fs, name)

    def rect_partition(region, shape, row_only=False):
        rects = choose_tiling(shape, num_tiles, row_only=row_only)
        return ctx.partition_rects(region, rects, disjoint=True,
                                   complete=True,
                                   name=f"{region.name}_p"), len(rects)

    x = make_region("elr_x", (n, f))
    y = make_region("elr_y", n)
    w = make_region("elr_w", f)
    z = make_region("elr_z", n)
    p = make_region("elr_p", n)
    r = make_region("elr_r", n)
    xrows, ntiles = rect_partition(x, (n, f), row_only=True)
    yrows, _ = rect_partition(y, (n,))
    zrows, _ = rect_partition(z, (n,))
    prows, _ = rect_partition(p, (n,))
    rrows, _ = rect_partition(r, (n,))
    wrows, wtiles = rect_partition(w, (f,))
    partials = make_region("elr_partials", (ntiles, f))
    prow, _ = rect_partition(partials, (ntiles, f), row_only=True)
    grad = make_region("elr_grad", f)
    grows, _ = rect_partition(grad, (f,))
    dom = list(range(ntiles))
    wdom = list(range(wtiles))

    def init(point, out_arg, payload, shape):
        lo = out_arg.region.index_space.rect.lo
        ext = out_arg.region.index_space.rect.extents
        full = np.array(payload).reshape(shape)
        out_arg["v"].view[...] = full[tuple(
            slice(l, l + e) for l, e in zip(lo, ext))]

    ctx.index_launch(init, dom, [(xrows, "v", "wd")],
                     args=(tuple(map(float, x_data.reshape(-1))), (n, f)))
    ctx.index_launch(init, dom, [(yrows, "v", "wd")],
                     args=(tuple(map(float, y_data)), (n,)))
    ctx.fill(w, "v", 0.0)

    def matvec(point, z_arg, x_arg, w_arg):
        # Row tile against the whole weight vector — the broadcast read
        # the array frontend's matvec_body makes.
        z_arg["v"].view[...] = x_arg["v"].view @ w_arg["v"].view

    def sigmoid(point, p_arg, z_arg):
        p_arg["v"].view[...] = 1.0 / (1.0 + np.exp(-z_arg["v"].view))

    def residual(point, r_arg, p_arg, y_arg):
        r_arg["v"].view[...] = p_arg["v"].view - y_arg["v"].view

    def partial(point, pt_arg, x_arg, r_arg):
        pt_arg["v"].view[...] = x_arg["v"].view.T @ r_arg["v"].view

    def combine(pt_arg, g_arg):
        g_arg["v"].view[...] = pt_arg["v"].view.sum(axis=0)

    def axpy(point, w_arg, g_arg, alpha):
        w_arg["v"].view[...] += alpha * g_arg["v"].view

    for _ in range(iterations):
        ctx.index_launch(matvec, dom,
                         [(zrows, "v", "wd"), (xrows, "v", "ro"),
                          (w, "v", "ro")])
        ctx.index_launch(sigmoid, dom,
                         [(prows, "v", "wd"), (zrows, "v", "ro")])
        ctx.index_launch(residual, dom,
                         [(rrows, "v", "wd"), (prows, "v", "ro"),
                          (yrows, "v", "ro")])
        ctx.index_launch(partial, dom,
                         [(prow, "v", "wd"), (xrows, "v", "ro"),
                          (rrows, "v", "ro")])
        ctx.launch(combine, [(partials, "v", "ro"), (grad, "v", "wd")])
        ctx.index_launch(axpy, wdom,
                         [(wrows, "v", "rw"), (grows, "v", "ro")],
                         args=(-lr / n,))

    return ctx.runtime.store.raw(w.tree_id, w.field_space["v"]).copy()


def reference_logistic_regression(x: np.ndarray, y: np.ndarray,
                                  iterations: int = 10,
                                  lr: float = 0.5) -> np.ndarray:
    n, _f = x.shape
    w = np.zeros(x.shape[1])
    for _ in range(iterations):
        p = 1.0 / (1.0 + np.exp(-(x @ w)))
        grad = x.T @ (p - y)
        w = w - lr / n * grad
    return w


def preconditioned_cg(ctx: Context, a_data: np.ndarray, b_data: np.ndarray,
                      iterations: int = 10, num_tiles: int = 4
                      ) -> np.ndarray:
    """Jacobi-preconditioned conjugate gradients on the deferred arrays."""
    lg = LegateContext(ctx, num_tiles)
    a = lg.from_values(a_data, "A")
    b = lg.from_values(b_data, "b")
    minv = lg.from_values(1.0 / np.diag(a_data), "Minv")
    x = lg.zeros(b_data.shape[0], "x")
    r = b - a.matvec(x)
    z = minv * r
    p = z * 1.0
    rz = r.dot(z)
    for _ in range(iterations):
        ap = a.matvec(p)
        alpha = rz / p.dot(ap)
        x.axpy(alpha, p)
        r.axpy(-alpha, ap)
        z = minv * r
        rz_new = r.dot(z)
        beta = rz_new / rz
        p = z + beta * p
        rz = rz_new
    return x.to_numpy()


def reference_preconditioned_cg(a: np.ndarray, b: np.ndarray,
                                iterations: int = 10) -> np.ndarray:
    minv = 1.0 / np.diag(a)
    x = np.zeros_like(b)
    r = b - a @ x
    z = minv * r
    p = z.copy()
    rz = r @ z
    for _ in range(iterations):
        ap = a @ p
        alpha = rz / (p @ ap)
        x = x + alpha * p
        r = r - alpha * ap
        z = minv * r
        rz_new = r @ z
        beta = rz_new / rz
        p = z + beta * p
        rz = rz_new
    return x
