"""Composable deferred-array views (the cunumeric ``DeferredArrayView`` idiom).

A :class:`ViewSpec` describes how a logical array maps onto a backing
region/field *without materializing*: step-1 slices become per-dimension
offsets, transposes become an axis permutation, and broadcasts become
``None`` (new) or *stretched* (size-1) logical dimensions.  Transforms
compose — a slice of a transpose of a broadcast is still a single spec —
and every group-task launch maps the logical tiling through the spec to a
rectangle list over the base region, so sliced and transposed operands
still launch as aligned group tasks over a key partition chosen per view
(paper §5.4; cunumeric's ``find_or_create_key_partition``).

The math here is deliberately pure: specs never touch the runtime, so view
creation issues no API calls and costs nothing until a launch uses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ViewSpec", "choose_tiling", "extract_block"]

Rect2 = Tuple[Tuple[int, ...], Tuple[int, ...]]     # (lo, hi) inclusive


@dataclass(frozen=True)
class ViewSpec:
    """A composable transform from logical indices to base-region indices.

    ``axes[d]`` names the base dimension logical dimension ``d`` reads
    (``None`` for a broadcast-new axis); non-``None`` entries are a
    permutation of the base dimensions, so no base dimension is ever
    dropped.  ``offsets`` are per *base* dimension (slicing accumulates
    there), and ``stretched[d]`` marks a size-1 base extent broadcast to a
    larger logical extent — those logical dims all map to one base index.
    """

    base_shape: Tuple[int, ...]
    shape: Tuple[int, ...]
    axes: Tuple[Optional[int], ...]
    offsets: Tuple[int, ...]
    stretched: Tuple[bool, ...]

    # -- constructors --------------------------------------------------------

    @staticmethod
    def identity(shape: Sequence[int]) -> "ViewSpec":
        shape = tuple(int(e) for e in shape)
        return ViewSpec(base_shape=shape, shape=shape,
                        axes=tuple(range(len(shape))),
                        offsets=tuple(0 for _ in shape),
                        stretched=tuple(False for _ in shape))

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def is_identity(self) -> bool:
        return (self.shape == self.base_shape
                and self.axes == tuple(range(len(self.base_shape)))
                and not any(self.stretched)
                and all(o == 0 for o in self.offsets))

    @property
    def writable(self) -> bool:
        """Whether writes through this view are well-defined.

        Requires an untransposed, unbroadcast mapping (offsets are fine:
        a step-1 slice writes a sub-rectangle of the base).
        """
        return (self.axes == tuple(range(len(self.base_shape)))
                and not any(self.stretched))

    # -- transform composition ----------------------------------------------

    def sliced(self, bounds: Sequence[Tuple[int, int]]) -> "ViewSpec":
        """Compose a step-1 slice: per logical dim, [lo, stop) bounds."""
        if len(bounds) != self.ndim:
            raise ValueError("slice bounds must cover every dimension")
        shape: List[int] = []
        offsets = list(self.offsets)
        for d, (lo, stop) in enumerate(bounds):
            if not 0 <= lo <= stop <= self.shape[d]:
                raise ValueError(
                    f"slice [{lo}:{stop}] out of range for extent "
                    f"{self.shape[d]} (dim {d})")
            if stop == lo:
                raise ValueError("empty slices are not supported")
            shape.append(stop - lo)
            b = self.axes[d]
            if b is not None and not self.stretched[d]:
                offsets[b] += lo
        return ViewSpec(self.base_shape, tuple(shape), self.axes,
                        tuple(offsets), self.stretched)

    def transposed(self) -> "ViewSpec":
        """Reverse the logical dimensions (1-D transpose is the identity)."""
        return ViewSpec(self.base_shape, self.shape[::-1], self.axes[::-1],
                        self.offsets, self.stretched[::-1])

    def broadcast_to(self, target: Sequence[int]) -> "ViewSpec":
        """Compose a NumPy-rules broadcast to ``target`` shape."""
        target = tuple(int(e) for e in target)
        if len(target) < self.ndim:
            raise ValueError("broadcast cannot drop dimensions")
        pad = len(target) - self.ndim
        shape: List[int] = []
        axes: List[Optional[int]] = []
        stretched: List[bool] = []
        for d, ext in enumerate(target):
            if d < pad:                       # brand-new leading axis
                shape.append(ext)
                axes.append(None)
                stretched.append(False)
                continue
            sd = d - pad
            cur = self.shape[sd]
            if cur == ext:
                shape.append(ext)
                axes.append(self.axes[sd])
                stretched.append(self.stretched[sd])
            elif cur == 1:
                shape.append(ext)
                axes.append(self.axes[sd])
                stretched.append(self.axes[sd] is not None)
            else:
                raise ValueError(
                    f"cannot broadcast extent {cur} to {ext} (dim {sd})")
        return ViewSpec(self.base_shape, tuple(shape), tuple(axes),
                        self.offsets, tuple(stretched))

    # -- rect mapping --------------------------------------------------------

    def base_rect(self, lo: Sequence[int], hi: Sequence[int]) -> Rect2:
        """Map an inclusive logical rect to the base rect it reads."""
        blo = list(self.offsets)
        bhi = list(self.offsets)
        for d, b in enumerate(self.axes):
            if b is None:
                continue
            if self.stretched[d]:
                bhi[b] = blo[b]               # every index reads one point
            else:
                blo[b] = self.offsets[b] + lo[d]
                bhi[b] = self.offsets[b] + hi[d]
        return tuple(blo), tuple(bhi)

    def task_spec(self) -> Tuple[Tuple[Optional[int], ...], ...]:
        """The hashable transform description shipped to task bodies."""
        return (self.axes,)

    # -- host-side materialization ------------------------------------------

    def read(self, raw: np.ndarray) -> np.ndarray:
        """Materialize the view from the base's root-wide array (a copy)."""
        sl = []
        extents = [1] * len(self.base_shape)
        for d, b in enumerate(self.axes):
            if b is not None and not self.stretched[d]:
                extents[b] = self.shape[d]
        for b, off in enumerate(self.offsets):
            sl.append(slice(off, off + extents[b]))
        block = raw[tuple(sl)]
        arr = extract_block(block, self.task_spec())
        return np.broadcast_to(arr, self.shape).copy()


def extract_block(block: np.ndarray,
                  spec: Tuple[Tuple[Optional[int], ...], ...]) -> np.ndarray:
    """Reorient a base-rect block into logical order (task-body helper).

    ``block`` carries base dimensions in base order; the result carries the
    logical dimensions (new/stretched axes as size-1, so it broadcasts
    against the launch tile's shape inside a kernel).
    """
    (axes,) = spec
    perm = [b for b in axes if b is not None]
    arr = np.transpose(block, perm)
    for d, b in enumerate(axes):
        if b is None:
            arr = np.expand_dims(arr, d)
    return arr


def choose_tiling(shape: Sequence[int], max_tiles: int,
                  row_only: bool = False) -> List[Rect2]:
    """Non-empty tile rects (inclusive lo/hi) for a logical shape.

    1-D shapes split into ``min(max_tiles, n)`` contiguous blocks.  2-D
    shapes split into a ``rows x cols`` grid: rows first, and when the
    leading dimension is smaller than the budget the spare factor tiles
    the columns — the fix for the latent ``min(num_tiles, shape[0])``
    chunking bug, which silently degraded wide arrays with short leading
    dimensions to ``shape[0]`` tiles.  ``row_only`` forces pure row
    tiling (rows must stay whole for row-local kernels like ``matvec``
    and ``sum(axis=1)``).  Colors are row-major flattened ints.
    """
    shape = tuple(int(e) for e in shape)
    n = shape[0]
    rows = max(1, min(max_tiles, n))
    cols = 1
    if len(shape) == 2 and not row_only and rows < max_tiles:
        cols = max(1, min(max_tiles // rows, shape[1]))

    def splits(extent: int, pieces: int) -> List[Tuple[int, int]]:
        return [((extent * i) // pieces, (extent * (i + 1)) // pieces - 1)
                for i in range(pieces)]

    row_sp = splits(n, rows)
    if len(shape) == 1:
        return [((lo,), (hi,)) for lo, hi in row_sp]
    col_sp = splits(shape[1], cols)
    rest_lo = tuple(0 for _ in shape[2:])
    rest_hi = tuple(e - 1 for e in shape[2:])
    rects: List[Rect2] = []
    for rlo, rhi in row_sp:
        for clo, chi in col_sp:
            rects.append(((rlo, clo) + rest_lo, (rhi, chi) + rest_hi))
    return rects
