"""k-means clustering on the deferred-array runtime (a Legate NumPy demo).

The Legate NumPy paper's flagship demos are logistic regression, CG and
k-means; this module adds the third.  The structure is the classic
map-reduce EM loop: a group launch assigns each row tile's points to the
nearest center (reading the small centers region whole — a broadcast), a
second group launch accumulates per-tile partial sums and counts, and a
single combining task produces the new centers every shard's next
iteration depends on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.rng import CounterRNG
from ..runtime.runtime import Context
from .array import LegateContext

__all__ = ["kmeans", "reference_kmeans", "make_blobs"]


def make_blobs(n: int, f: int, k: int, seed: int = 9, spread: float = 0.15
               ) -> np.ndarray:
    """Deterministic clustered data: k well-separated blobs in [0,1]^f."""
    rng = CounterRNG(seed)
    centers = np.array([[rng.random() for _ in range(f)] for _ in range(k)])
    rows = []
    for i in range(n):
        c = centers[i % k]
        rows.append([c[j] + spread * (rng.random() - 0.5)
                     for j in range(f)])
    return np.array(rows)


def kmeans(ctx: Context, data: np.ndarray, k: int, iterations: int = 8,
           num_tiles: int = 4) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm over deferred arrays; returns (centers, labels)."""
    lg = LegateContext(ctx, num_tiles)
    n, f = data.shape
    x = lg.from_values(data, "km_x")
    centers = lg.from_values(data[:k].copy(), "km_centers")
    labels = lg.zeros(n, "km_labels")
    tiles = len(x.tiles)
    sums = lg.zeros((tiles, k * f), "km_sums")
    counts = lg.zeros((tiles, k), "km_counts")

    def assign(point, x_arg, c_arg, l_arg):
        xs = x_arg["v"].view
        cen = c_arg["v"].view
        d = ((xs[:, None, :] - cen[None, :, :]) ** 2).sum(axis=2)
        l_arg["v"].view[...] = np.argmin(d, axis=1).astype(np.float64)

    def partials(point, x_arg, l_arg, s_arg, n_arg):
        xs = x_arg["v"].view
        lbl = l_arg["v"].view.astype(np.int64)
        s = s_arg["v"].view.reshape(k, f)
        cn = n_arg["v"].view.reshape(k)
        s[...] = 0.0
        cn[...] = 0.0
        for c in range(k):
            mask = lbl == c
            cn[c] = float(mask.sum())
            if cn[c]:
                s[c, :] = xs[mask].sum(axis=0)

    def combine(s_arg, n_arg, c_arg):
        s = s_arg["v"].view.reshape(tiles, k, f)
        cn = n_arg["v"].view.reshape(tiles, k)
        cen = c_arg["v"].view
        total = cn.sum(axis=0)
        agg = s.sum(axis=0)
        for c in range(k):
            if total[c] > 0:
                cen[c, :] = agg[c, :] / total[c]

    dom = list(range(tiles))
    for _ in range(iterations):
        ctx.index_launch(assign, dom,
                         [(x.tiles, "v", "ro"), (centers.region, "v", "ro"),
                          (labels.tiles, "v", "rw")])
        ctx.index_launch(partials, dom,
                         [(x.tiles, "v", "ro"), (labels.tiles, "v", "ro"),
                          (sums.tiles, "v", "rw"),
                          (counts.tiles, "v", "rw")])
        ctx.launch(combine,
                   [(sums.region, "v", "ro"), (counts.region, "v", "ro"),
                    (centers.region, "v", "rw")])
    return centers.to_numpy(), labels.to_numpy()


def reference_kmeans(data: np.ndarray, k: int, iterations: int = 8
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Plain-NumPy Lloyd's algorithm with the same initialization."""
    centers = data[:k].copy()
    labels = np.zeros(len(data))
    for _ in range(iterations):
        d = ((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = np.argmin(d, axis=1)
        for c in range(k):
            mask = labels == c
            if mask.any():
                centers[c] = data[mask].mean(axis=0)
    return centers, labels.astype(np.float64)
