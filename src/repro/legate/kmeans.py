"""k-means clustering expressed *entirely* through deferred array ops.

The Legate NumPy paper's flagship demos are logistic regression, CG and
k-means; this module writes the third as a pure array program — no custom
task bodies.  Per iteration:

* **assign** — for each center ``c``, the squared distance is a sliced
  row view ``centers[c:c+1, :]`` broadcast against the data, squared, and
  row-summed; the argmin is a where-chain with strict ``less`` (first
  minimum wins, matching ``np.argmin``'s tie-break).
* **update** — each center's membership mask is an ``equal`` comparison;
  the masked column sums use a broadcast-transpose view of the mask and an
  axis-0 reduction (per-tile partials plus one combining task — the
  map-reduce shape a centralized scheduler would bottleneck on).

Branching on a cluster count is §3-safe: the count folds deterministically
from interned per-tile futures, so every shard takes the same branch.

:func:`explicit_kmeans` is the explicit-region mirror: the same tilings
(:func:`~.views.choose_tiling`) and the same per-tile NumPy expressions as
the generic kernels, hand-rolled over raw regions — byte-for-byte equal
output, used by the byte-identity tier.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.rng import CounterRNG
from ..runtime.runtime import Context
from .array import LegateContext
from .views import choose_tiling

__all__ = ["kmeans", "explicit_kmeans", "reference_kmeans", "make_blobs"]


def make_blobs(n: int, f: int, k: int, seed: int = 9, spread: float = 0.15
               ) -> np.ndarray:
    """Deterministic clustered data: k well-separated blobs in [0,1]^f."""
    rng = CounterRNG(seed)
    centers = np.array([[rng.random() for _ in range(f)] for _ in range(k)])
    rows = []
    for i in range(n):
        c = centers[i % k]
        rows.append([c[j] + spread * (rng.random() - 0.5)
                     for j in range(f)])
    return np.array(rows)


def kmeans(ctx: Context, data: np.ndarray, k: int, iterations: int = 8,
           num_tiles: int = 4) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm as a pure array program; returns (centers, labels)."""
    lg = LegateContext(ctx, num_tiles)
    n, f = data.shape
    x = lg.from_values(data, "km_x")
    centers = lg.from_values(data[:k].copy(), "km_centers")
    labels = lg.zeros(n, "km_labels")

    for _ in range(iterations):
        # assign: running (best-distance, label) where-chain over centers.
        best = None
        for c in range(k):
            diff = x - centers[c:c + 1, 0:f]
            dist = (diff * diff).sum(axis=1)
            if best is None:
                best = dist
                labels = lg.zeros(n)
            else:
                better = dist.less(best)
                labels = lg.full(n, float(c)).where(better, labels)
                best = dist.where(better, best)
        # update: masked column means; an empty cluster keeps its center.
        for c in range(k):
            mask = labels.equal(float(c))
            cnt = mask.sum()
            if cnt > 0:
                col = mask.broadcast_to((f, n)).T
                sums = (x * col).sum(axis=0)
                centers[c:c + 1, 0:f] = sums / cnt
    return centers.to_numpy(), labels.to_numpy()


def explicit_kmeans(ctx: Context, data: np.ndarray, k: int,
                    iterations: int = 8, num_tiles: int = 4
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Explicit-region mirror of :func:`kmeans` (byte-identical output).

    Same row tilings, same per-tile expressions, same partial/combine
    structure — only the plumbing is hand-written instead of deferred.
    """
    n, f = data.shape

    def make_region(name, shape):
        fs = ctx.create_field_space([("v", "f8")], f"{name}_fs")
        ispace = ctx.create_index_space(
            shape if isinstance(shape, tuple) and len(shape) > 1
            else (shape if isinstance(shape, int) else shape[0]),
            f"{name}_is")
        return ctx.create_region(ispace, fs, name)

    def rect_partition(region, shape, row_only=False):
        rects = choose_tiling(shape, num_tiles, row_only=row_only)
        return ctx.partition_rects(region, rects, disjoint=True,
                                   complete=True,
                                   name=f"{region.name}_p"), len(rects)

    x = make_region("ekm_x", (n, f))
    centers = make_region("ekm_centers", (k, f))
    labels = make_region("ekm_labels", n)
    best = make_region("ekm_best", n)
    rows, ntiles = rect_partition(x, (n, f), row_only=True)
    lrows, _ = rect_partition(labels, (n,))
    brows, _ = rect_partition(best, (n,))
    partials = make_region("ekm_partials", (ntiles, f))
    prow, _ = rect_partition(partials, (ntiles, f), row_only=True)
    sums = make_region("ekm_sums", f)
    dom = list(range(ntiles))

    def init(point, x_arg, payload, shape):
        lo = x_arg.region.index_space.rect.lo
        ext = x_arg.region.index_space.rect.extents
        full = np.array(payload).reshape(shape)
        x_arg["v"].view[...] = full[tuple(
            slice(l, l + e) for l, e in zip(lo, ext))]

    ctx.index_launch(init, dom, [(rows, "v", "wd")],
                     args=(tuple(map(float, data.reshape(-1))), (n, f)))

    def init_centers(c_arg, payload):
        c_arg["v"].view[...] = np.array(payload).reshape(k, f)

    ctx.launch(init_centers, [(centers, "v", "wd")],
               args=(tuple(map(float, data[:k].reshape(-1))),))
    ctx.fill(labels, "v", 0.0)
    ctx.fill(best, "v", 0.0)

    def assign(point, x_arg, c_arg, l_arg, b_arg):
        # The same expressions the array program's kernels evaluate, in
        # the same order: diff/square, row-sum, strict-less where-chain.
        xs = x_arg["v"].view
        cen = c_arg["v"].view
        lbl = l_arg["v"].view
        bst = b_arg["v"].view
        for c in range(cen.shape[0]):
            diff = xs - cen[c:c + 1, :]
            dist = (diff * diff).sum(axis=1)
            if c == 0:
                bst[...] = dist
                lbl[...] = 0.0
            else:
                better = (dist < bst).astype(np.float64)
                lbl[...] = np.where(better != 0, float(c), lbl)
                bst[...] = np.where(better != 0, dist, bst)

    def count_tile(point, x_arg, l_arg, c):
        return float(np.sum((l_arg["v"].view == c).astype(np.float64)))

    def partial_sums(point, p_arg, x_arg, l_arg, c):
        mask = (l_arg["v"].view == c).astype(np.float64)
        p_arg["v"].view[...] = (x_arg["v"].view
                                * mask[:, None]).sum(axis=0)

    def combine(p_arg, s_arg):
        s_arg["v"].view[...] = p_arg["v"].view.sum(axis=0)

    def update_center(c_arg, s_arg, c, cnt):
        c_arg["v"].view[c:c + 1, :] = s_arg["v"].view / cnt

    for _ in range(iterations):
        ctx.index_launch(assign, dom,
                         [(rows, "v", "ro"), (centers, "v", "ro"),
                          (lrows, "v", "rw"), (brows, "v", "rw")])
        for c in range(k):
            fm = ctx.index_launch(count_tile, dom,
                                  [(rows, "v", "ro"), (lrows, "v", "ro")],
                                  args=(float(c),))
            cnt = fm.reduce(lambda a, b: a + b)
            if cnt > 0:
                ctx.index_launch(partial_sums, dom,
                                 [(prow, "v", "wd"), (rows, "v", "ro"),
                                  (lrows, "v", "ro")], args=(float(c),))
                ctx.launch(combine, [(partials, "v", "ro"),
                                     (sums, "v", "wd")])
                ctx.launch(update_center,
                           [(centers, "v", "rw"), (sums, "v", "ro")],
                           args=(c, cnt))

    store = ctx.runtime.store
    cen = store.raw(centers.tree_id, centers.field_space["v"]).copy()
    lbl = store.raw(labels.tree_id, labels.field_space["v"]).copy()
    return cen, lbl


def reference_kmeans(data: np.ndarray, k: int, iterations: int = 8
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Plain-NumPy Lloyd's algorithm with the same initialization."""
    centers = data[:k].copy()
    labels = np.zeros(len(data))
    for _ in range(iterations):
        d = ((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = np.argmin(d, axis=1)
        for c in range(k):
            mask = labels == c
            if mask.any():
                centers[c] = data[mask].mean(axis=0)
    return centers, labels.astype(np.float64)
