"""Kernel registry and task bodies for the deferred array frontend.

Every array operation launches one of a handful of *generic* task bodies
defined at module level (their :func:`~repro.runtime.runtime.Context._task_key`
identities are stable across shards and backends).  The actual arithmetic
is looked up by a kernel code carried in the hashed task arguments, and
operands arrive as base-region blocks plus a :class:`~.views.ViewSpec`
transform description — :func:`~.views.extract_block` reorients each block
into logical order, and NumPy broadcasting does the rest.
"""

from __future__ import annotations

import numpy as np

from .views import extract_block

__all__ = ["KERNELS", "elementwise_body", "setitem_body", "fill_tile_body",
           "init_body", "reduce_tile_body", "dot_tile_body",
           "axis0_partial_body", "axis0_combine_body", "rowsum_body",
           "matvec_body", "rmatvec_partial_body", "rmatvec_combine_body",
           "matmat_body", "axpy_body"]


def _f(x):
    return x.astype(np.float64)


#: code -> kernel over logical-order operand blocks (arrays broadcast).
KERNELS = {
    # arithmetic
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
    # unary
    "neg": lambda a: -a,
    "abs": lambda a: np.abs(a),
    "exp": lambda a: np.exp(a),
    "log": lambda a: np.log(a),
    "sqrt": lambda a: np.sqrt(a),
    "tanh": lambda a: np.tanh(a),
    "sigmoid": lambda a: 1.0 / (1.0 + np.exp(-a)),
    "copy": lambda a: a,
    # scalar-parameterized
    "pow": lambda a, e: np.power(a, e),
    "clip": lambda a, lo, hi: np.clip(a, lo, hi),
    # binary selections
    "maximum": lambda a, b: np.maximum(a, b),
    "minimum": lambda a, b: np.minimum(a, b),
    # comparisons (0.0/1.0 doubles — the NumPy-bool analogue)
    "gt": lambda a, b: _f(a > b),
    "ge": lambda a, b: _f(a >= b),
    "lt": lambda a, b: _f(a < b),
    "le": lambda a, b: _f(a <= b),
    "eq": lambda a, b: _f(a == b),
    "ne": lambda a, b: _f(a != b),
    # ternary select: cond != 0 ? a : b
    "where": lambda c, a, b: np.where(c != 0, a, b),
}


def _operands(rargs, kinds, specs, scalars):
    """Interleave array blocks and scalars back into kernel-call order."""
    arrs = iter(rargs)
    svals = iter(scalars)
    spec_it = iter(specs)
    out = []
    for k in kinds:
        if k == "a":
            out.append(extract_block(next(arrs)["v"].view, next(spec_it)))
        else:
            out.append(next(svals))
    return out


def elementwise_body(point, *packed):
    """Generic elementwise kernel over one aligned tile."""
    code, kinds, specs, scalars = packed[-4:]
    out = packed[0]["v"].view
    ops = _operands(packed[1:-4], kinds, specs, scalars)
    np.copyto(out, KERNELS[code](*ops))


def setitem_body(point, *packed):
    """Copy a (possibly transformed) source tile into a destination slice."""
    spec, = packed[-1:]
    out = packed[0]["v"].view
    src = extract_block(packed[1]["v"].view, spec)
    np.copyto(out, np.broadcast_to(src, out.shape))


def fill_tile_body(point, out_arg, value):
    """Write a scalar into one tile of a destination slice."""
    out_arg["v"].view[...] = value


def init_body(point, out, payload, shape):
    """Materialize explicit values into one tile of a fresh array."""
    view = out["v"].view
    lo = out.region.index_space.rect.lo
    full = np.array(payload).reshape(shape)
    sl = tuple(slice(l, l + e) for l, e in
               zip(lo, out.region.index_space.rect.extents))
    view[...] = full[sl]


# -- reductions ---------------------------------------------------------------

def reduce_tile_body(point, a_arg, code, spec, shapes):
    """Per-tile scalar partial of a full reduction (sum/max/min).

    ``shapes[point]`` is the logical tile shape: broadcast views deliver
    size-1 blocks that must count once per logical element.
    """
    block = np.broadcast_to(extract_block(a_arg["v"].view, spec),
                            shapes[point])
    if code == "sum":
        return float(np.sum(block))
    if code == "max":
        return float(np.max(block))
    return float(np.min(block))


def dot_tile_body(point, a_arg, b_arg, spec_a, spec_b, shapes):
    """Per-tile partial inner product."""
    a = np.broadcast_to(extract_block(a_arg["v"].view, spec_a), shapes[point])
    b = np.broadcast_to(extract_block(b_arg["v"].view, spec_b), shapes[point])
    return float(np.sum(a * b))


def axis0_partial_body(point, p_arg, a_arg, code, spec, shapes):
    """One row of the (tiles, M) partials region for an axis-0 reduction."""
    block = np.broadcast_to(extract_block(a_arg["v"].view, spec),
                            shapes[point])
    p = p_arg["v"].view
    if code == "sum":
        p[...] = block.sum(axis=0)
    else:
        p[...] = block.max(axis=0)


def axis0_combine_body(p_arg, o_arg, code):
    """Fold the per-tile partials into the final axis-0 result."""
    p = p_arg["v"].view
    o = o_arg["v"].view
    if code == "sum":
        o[...] = p.sum(axis=0)
    else:
        o[...] = p.max(axis=0)


def rowsum_body(point, out_arg, a_arg, spec, shapes):
    """Tile-local axis-1 sum (rows stay whole under row tiling)."""
    block = np.broadcast_to(extract_block(a_arg["v"].view, spec),
                            shapes[point])
    out_arg["v"].view[...] = block.sum(axis=1)


# -- linear algebra -----------------------------------------------------------

def matvec_body(point, out_arg, mat_arg, vec_arg, spec):
    """Row tile of (N, F) @ (F,): the whole vector is a broadcast read."""
    mat = extract_block(mat_arg["v"].view, spec)
    out_arg["v"].view[...] = mat @ vec_arg["v"].view


def rmatvec_partial_body(point, p_arg, mat_arg, vec_arg, spec_m, spec_v):
    """One (F,) partial of (N, F).T @ (N,) from one row tile."""
    mat = extract_block(mat_arg["v"].view, spec_m)
    vec = extract_block(vec_arg["v"].view, spec_v)
    p_arg["v"].view[...] = mat.T @ vec


def rmatvec_combine_body(p_arg, o_arg):
    o_arg["v"].view[...] = p_arg["v"].view.sum(axis=0)


def matmat_body(point, out_arg, a_arg, b_arg, spec):
    """Row tile of (N, K) @ (K, M): the right operand is a broadcast read."""
    a = extract_block(a_arg["v"].view, spec)
    out_arg["v"].view[...] = a @ b_arg["v"].view


def axpy_body(point, out_arg, x_arg, alpha, spec):
    """In-place out += alpha * x over one aligned tile."""
    x = extract_block(x_arg["v"].view, spec)
    out_arg["v"].view[...] += alpha * x
