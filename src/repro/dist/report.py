"""Per-shard run reports and the cross-shard conformance merge.

A :class:`ShardReport` is what one shard replica returns after replaying
its program: the three conformance artifacts the headline property compares
— the task-graph :func:`~repro.core.pipeline.analysis_digest`, the interned
:func:`~repro.core.pipeline.fence_sequence`, and the control-determinism
:func:`~repro.core.determinism.stream_digest` — plus analysis counters,
the canonical collective schedule, and the transport's true wire traffic.

:func:`merge_reports` folds N of them into a :class:`MergedReport`:
conformant iff every shard produced byte-identical artifacts (what the CLI
prints and the multiprocess tests assert), with per-artifact mismatch
details when not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ShardReport", "MergedReport", "merge_reports"]


@dataclass(frozen=True)
class ShardReport:
    """One shard replica's replay outcome, as plain serializable data."""

    shard: int
    num_shards: int
    backend: str                 # "inprocess" | "loopback" | "multiprocess"
    graph_digest: str            # analysis_digest (sha256 hex)
    fence_sequence: tuple        # interned (at_seq, region, fids) triples
    determinism_digest: int      # stream_digest of the full call stream
    call_count: int              # API calls hashed
    checks: int                  # determinism windows verified
    ops_analyzed: int
    fences: int
    fences_elided: int
    points: int                  # point tasks this shard owns
    collectives: Dict[str, int] = field(default_factory=dict)
    coll_rounds: int = 0         # canonical schedule latency (hops)
    coll_messages: int = 0       # canonical schedule messages
    frames_sent: int = 0         # true wire traffic (0 for in-process)
    frames_received: int = 0
    duplicates_dropped: int = 0
    out_of_order: int = 0
    wall_s: float = 0.0
    pid: int = 0
    profile_path: str = ""
    # Service identity: which submission of which client session produced
    # this report ("" outside the service).  Threaded through profiler
    # events too, so a persistent gang's timeline attributes every span.
    program_id: str = ""
    session: str = ""
    # Per-call determinism digests, captured only when a service cold run
    # records an analysis template (the tail is structure-only, so repeat
    # submissions patch parameters instead of re-analyzing).
    call_digests: tuple = ()

    def to_payload(self) -> dict:
        """Wire form for the frames codec (tuples become lists)."""
        return {
            "shard": self.shard, "num_shards": self.num_shards,
            "backend": self.backend, "graph_digest": self.graph_digest,
            "fence_sequence": [[s, r, list(f)]
                               for s, r, f in self.fence_sequence],
            "determinism_digest": self.determinism_digest,
            "call_count": self.call_count, "checks": self.checks,
            "ops_analyzed": self.ops_analyzed, "fences": self.fences,
            "fences_elided": self.fences_elided, "points": self.points,
            "collectives": dict(self.collectives),
            "coll_rounds": self.coll_rounds,
            "coll_messages": self.coll_messages,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "duplicates_dropped": self.duplicates_dropped,
            "out_of_order": self.out_of_order,
            "wall_s": self.wall_s, "pid": self.pid,
            "profile_path": self.profile_path,
            "program_id": self.program_id, "session": self.session,
            "call_digests": list(self.call_digests),
        }

    @classmethod
    def from_payload(cls, p: dict) -> "ShardReport":
        # Payloads written before the service fields existed omit them.
        return cls(
            shard=int(p["shard"]), num_shards=int(p["num_shards"]),
            backend=str(p["backend"]), graph_digest=str(p["graph_digest"]),
            fence_sequence=tuple((int(s), int(r), tuple(f))
                                 for s, r, f in p["fence_sequence"]),
            determinism_digest=int(p["determinism_digest"]),
            call_count=int(p["call_count"]), checks=int(p["checks"]),
            ops_analyzed=int(p["ops_analyzed"]), fences=int(p["fences"]),
            fences_elided=int(p["fences_elided"]), points=int(p["points"]),
            collectives={str(k): int(v)
                         for k, v in p["collectives"].items()},
            coll_rounds=int(p["coll_rounds"]),
            coll_messages=int(p["coll_messages"]),
            frames_sent=int(p["frames_sent"]),
            frames_received=int(p["frames_received"]),
            duplicates_dropped=int(p["duplicates_dropped"]),
            out_of_order=int(p["out_of_order"]),
            wall_s=float(p["wall_s"]), pid=int(p["pid"]),
            profile_path=str(p["profile_path"]),
            program_id=str(p.get("program_id", "")),
            session=str(p.get("session", "")),
            call_digests=tuple(int(d) for d in p.get("call_digests", ())),
        )

    def artifacts(self) -> Tuple[str, tuple, int]:
        """The conformance triple compared across shards and backends."""
        return (self.graph_digest, self.fence_sequence,
                self.determinism_digest)


@dataclass(frozen=True)
class MergedReport:
    """N shard reports folded into one conformance verdict."""

    backend: str
    num_shards: int
    conformant: bool
    mismatches: Tuple[str, ...]      # artifact names that disagreed
    graph_digest: str                # shard 0's (canonical when conformant)
    determinism_digest: int
    fences: int
    fences_elided: int
    ops_analyzed: int
    total_points: int
    total_frames: int
    shards: Tuple[ShardReport, ...]
    program_id: str = ""
    session: str = ""
    template_hit: bool = False      # served from a cached analysis template

    def render(self) -> str:
        """Human-readable summary, printed by ``repro.tools.dist``."""
        lines = []
        if self.program_id:
            lines.append(f"program:            {self.program_id}"
                         + (f"  (session {self.session})" if self.session
                            else "")
                         + ("  [template hit]" if self.template_hit else ""))
        lines += [
            f"backend:            {self.backend}",
            f"shards:             {self.num_shards}",
            "conformant:         " + ("yes" if self.conformant else
                                      "NO  (" +
                                      ", ".join(self.mismatches) + ")"),
            f"graph digest:       {self.graph_digest[:16]}…",
            f"determinism hash:   {self.determinism_digest:032x}",
            f"ops analyzed:       {self.ops_analyzed}",
            f"fences:             {self.fences} "
            f"({self.fences_elided} elided)",
            f"point tasks:        {self.total_points}",
            f"wire frames:        {self.total_frames}",
        ]
        header = f"{'shard':>5} {'pid':>7} {'calls':>6} {'points':>7} " \
                 f"{'sent':>6} {'recv':>6} {'wall_s':>8}"
        lines.append(header)
        for r in sorted(self.shards, key=lambda r: r.shard):
            lines.append(f"{r.shard:>5} {r.pid:>7} {r.call_count:>6} "
                         f"{r.points:>7} {r.frames_sent:>6} "
                         f"{r.frames_received:>6} {r.wall_s:>8.3f}")
        return "\n".join(lines)


def merge_reports(reports: Sequence[ShardReport],
                  backend: Optional[str] = None,
                  program_id: str = "", session: str = "",
                  template_hit: bool = False) -> MergedReport:
    """Fold per-shard reports; conformant iff all artifacts agree."""
    if not reports:
        raise ValueError("no shard reports to merge")
    ordered = sorted(reports, key=lambda r: r.shard)
    head = ordered[0]
    mismatches: List[str] = []
    for name, pick in (("graph_digest", lambda r: r.graph_digest),
                       ("fence_sequence", lambda r: r.fence_sequence),
                       ("determinism_digest",
                        lambda r: r.determinism_digest),
                       ("call_count", lambda r: r.call_count)):
        if len({repr(pick(r)) for r in ordered}) > 1:
            mismatches.append(name)
    return MergedReport(
        backend=backend if backend is not None else head.backend,
        num_shards=head.num_shards,
        conformant=not mismatches,
        mismatches=tuple(mismatches),
        graph_digest=head.graph_digest,
        determinism_digest=head.determinism_digest,
        fences=head.fences,
        fences_elided=head.fences_elided,
        ops_analyzed=head.ops_analyzed,
        total_points=sum(r.points for r in ordered),
        total_frames=sum(r.frames_sent for r in ordered),
        shards=tuple(ordered),
        program_id=program_id or head.program_id,
        session=session or head.session,
        template_hit=template_hit,
    )
