"""Distributed control-determinism checking (paper §3, over real IPC).

:class:`DistDeterminismMonitor` is the per-process counterpart of
:class:`repro.core.determinism.DeterminismMonitor`: each shard process owns
one instance holding only its *own* :class:`ShardHasher`, and the window
check becomes a real all-reduce over the transport.

Protocol
--------
Each rank folds its pending calls into windows at deterministic points —
after every ``batch`` recorded calls, plus one *final* window at flush.
For each window it all-reduces ``(start, count, window_digest, final_total,
ok)``; the combine op verifies that every shard contributed the identical
tuple.  Because a control-deterministic program records the same calls in
the same order on every shard, window boundaries coincide globally without
any coordination; any divergence — different digests, different window
shapes (one shard flushing while another still has full batches), or
different final call counts — turns ``ok`` false on *every* rank in the
same collective, so all shards raise together and none deadlocks.  A shard
that dies instead of participating surfaces as
:class:`~repro.faults.injector.CollectiveTimeout` via the transport's hard
receive deadline.

On a mismatch, ``localize=True`` (the default here — a lone process cannot
inspect its peers' streams) runs the LOCALIZE protocol: one all-gather of
the window's per-call digests and descriptions, then the shared
:func:`~repro.core.determinism.locate_divergence` binary search, raising
:class:`ControlDeterminismViolation` with a full
:class:`~repro.core.determinism.DivergenceDiagnosis`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..core.determinism import (ControlDeterminismViolation, ShardHasher,
                                locate_divergence, stream_digest)
from ..faults.injector import FaultInjector
from ..obs.events import CAT_DETERMINISM, EV_DET_CHECK, EV_DET_LOCALIZE
from ..obs.profiler import Profiler, get_profiler
from .collectives import DistCollectives

__all__ = ["DistDeterminismMonitor"]

#: ``final_total`` slot value for a non-final (full batch) window.
_NOT_FINAL = -1


def _combine_check(a: Tuple, b: Tuple) -> Tuple:
    """All shards must contribute identical staged windows.

    The payload is ``(windows, ok)`` where ``windows`` is a tuple of
    ``(start, count, digest, final_total)`` — one entry per coalesced
    window.  Any difference (digests, window shapes, window count, or
    final totals) turns ``ok`` false on every rank in the same collective.
    """
    ok = a[1] and b[1] and a[0] == b[0]
    return (a[0], ok)


class DistDeterminismMonitor:
    """Windowed determinism checking for one shard process.

    ``coalesce`` batches that many completed windows into a single digest
    allreduce: the control-plane message count per window drops by the
    same factor, at the cost of divergence being detected up to
    ``coalesce × batch`` calls later (the LOCALIZE search then covers the
    whole coalesced span, so the diagnosis stays exact).
    """

    def __init__(self, collectives: DistCollectives, batch: int = 64,
                 enabled: bool = True, localize: bool = True,
                 profiler: Optional[Profiler] = None,
                 injector: Optional[FaultInjector] = None,
                 coalesce: int = 1):
        self.collectives = collectives
        self.rank = collectives.rank
        self.num_shards = collectives.num_shards
        self.hasher = ShardHasher(self.rank, injector)
        self.batch = max(1, batch)
        self.enabled = enabled
        self.localize = localize
        self.coalesce = max(1, coalesce)
        self.profiler = profiler if profiler is not None else get_profiler()
        self._verified = 0
        self._staged: List[Tuple[int, int, int, int]] = []
        self.checks_performed = 0

    # -- recording -----------------------------------------------------------

    def record(self, api_call: str, *args: Any, **kwargs: Any) -> int:
        """Hash one API call, then check if a full batch is pending."""
        digest = self.hasher.record(api_call, *args, **kwargs)
        self.maybe_check()
        return digest

    def maybe_check(self) -> None:
        if self.enabled and self._ready() >= self.batch:
            self._stage(self._ready(), final_total=_NOT_FINAL)
            if len(self._staged) >= self.coalesce:
                self._exchange()

    def flush(self) -> None:
        """Check the remaining calls and verify equal totals everywhere.

        Always performs the final collective (even with an empty remainder
        and no staged windows) so a shard that issued extra trailing calls
        is caught rather than silently ignored.
        """
        if not self.enabled:
            return
        self._stage(self._ready(), final_total=len(self.hasher.calls))
        self._exchange()

    def _ready(self) -> int:
        return len(self.hasher.calls) - self._verified

    @property
    def verified(self) -> int:
        return self._verified

    def stream_digest(self) -> int:
        """Digest of this shard's full call stream (the report hash)."""
        return stream_digest(self.hasher.calls)

    # -- the collective check ------------------------------------------------

    def _stage(self, count: int, final_total: int) -> None:
        """Close one window locally; exchange happens at coalesce points."""
        start = self._verified
        digest = stream_digest(self.hasher.calls[start:start + count])
        self._staged.append((start, count, digest, final_total))
        self._verified = start + count

    def _exchange(self) -> None:
        """All-reduce every staged window in one collective round."""
        staged, self._staged = self._staged, []
        prof = self.profiler
        t0 = prof.now_us() if prof.enabled else 0.0
        self.checks_performed += 1
        verdict = self.collectives.allreduce(
            (tuple(staged), True), _combine_check)
        span_count = sum(w[1] for w in staged)
        if not verdict[1]:
            self._diverged(staged[0][0], span_count, staged[-1][3])
        if prof.enabled:
            prof.complete(self.rank, CAT_DETERMINISM, EV_DET_CHECK, t0,
                          prof.now_us() - t0, calls=span_count,
                          windows=len(staged),
                          batch=self.checks_performed)
            prof.count("determinism.dist.batches")
            prof.count("determinism.dist.calls_checked", span_count)

    def _diverged(self, start: int, count: int, final_total: int) -> None:
        """Raise the structured violation; all ranks take this path."""
        if not self.localize:
            raise ControlDeterminismViolation(
                start, ["<window mismatch>"], shard_ids=[self.rank])
        prof = self.profiler
        t0 = prof.now_us() if prof.enabled else 0.0
        # LOCALIZE over the wire: gather every shard's window digests,
        # descriptions, window shape and total call count in one allgather.
        calls = self.hasher.calls[start:start + count]
        descr = self.hasher.descriptions[start:start + count]
        gathered = self.collectives.allgather(
            (start, count, calls, descr, len(self.hasher.calls)))
        shard_ids = list(range(self.num_shards))
        counts = [g[4] for g in gathered]
        shapes = {(g[0], g[1]) for g in gathered}
        if len(shapes) > 1 or len(set(counts)) > 1:
            # Shards disagree about how many calls exist: the unequal-
            # call-count violation, localized to the short shard(s).
            seq = min(counts)
            descriptions = []
            for g in gathered:
                w_start, w_descr = g[0], g[3]
                off = seq - w_start
                descriptions.append(w_descr[off]
                                    if 0 <= off < len(w_descr)
                                    else "<no call>")
            raise ControlDeterminismViolation(
                seq, descriptions, shard_ids=shard_ids, call_counts=counts)
        width = min(len(g[2]) for g in gathered)
        diagnosis = locate_divergence(
            shard_ids,
            [list(g[2])[:width] for g in gathered],
            [list(g[3])[:width] for g in gathered],
            counts, start, width)
        if prof.enabled:
            prof.complete(self.rank, CAT_DETERMINISM, EV_DET_LOCALIZE,
                          t0, prof.now_us() - t0, seq=diagnosis.seq,
                          shards=list(diagnosis.divergent_shards),
                          window=count)
            prof.count("determinism.dist.localizations")
        raise ControlDeterminismViolation(
            diagnosis.seq, list(diagnosis.descriptions),
            shard_digests=list(diagnosis.shard_digests),
            shard_ids=list(diagnosis.shard_ids),
            diagnosis=diagnosis)
