"""The multiprocess backend: shard replicas as separate OS processes.

Everything the in-process model simulates — deterministic collective
schedules, windowed determinism checking, cross-shard fences — executed
for real over IPC:

* :mod:`~repro.dist.frames` — the length-prefixed canonical wire format;
* :mod:`~repro.dist.transport` — tagged, sequenced, deadline-bounded
  shard-to-shard exchange (in-process loopback and multiprocessing pipes);
* :mod:`~repro.dist.collectives` — the butterfly/tree schedules over a
  transport, drop-in for :class:`repro.core.collectives.Collectives`;
* :mod:`~repro.dist.monitor` — distributed control-determinism checking;
* :mod:`~repro.dist.programs` — serializable program specs every replica
  expands identically;
* :mod:`~repro.dist.worker` / :mod:`~repro.dist.runner` — one shard
  replica, and the gang launcher that supervises N of them;
* :mod:`~repro.dist.report` — per-shard artifacts and the conformance
  merge.

``python -m repro.tools.dist`` drives a complete run from the command
line; see ``docs/dist.md``.
"""

from .collectives import DistCollectives
from .frames import Frame, FrameDecoder, FrameError, decode_frame, \
    encode_frame, pack, unpack
from .monitor import DistDeterminismMonitor
from .programs import OpSpec, ProgramSpec, build_field, build_operations, \
    stencil_program
from .report import MergedReport, ShardReport, merge_reports
from .runner import BACKENDS, DistRunner, ServiceRunner, run_reference
from .transport import DEFAULT_DEADLINE_S, PROCESS_BACKENDS, \
    LoopbackFabric, PeerGone, PipeFabric, ReorderWindowExceeded, \
    SharedMemFabric, TCPFabric, Transport, TransportError, \
    connect_tcp_mesh, fabric_for_backend, transport_from_claim
from .worker import ServiceShardWorker, ShardWorker, op_signature, replay

__all__ = [
    "Frame", "FrameDecoder", "FrameError", "decode_frame", "encode_frame",
    "pack", "unpack",
    "Transport", "LoopbackFabric", "PipeFabric", "SharedMemFabric",
    "TCPFabric", "TransportError", "ReorderWindowExceeded",
    "PeerGone", "DEFAULT_DEADLINE_S", "PROCESS_BACKENDS",
    "connect_tcp_mesh", "fabric_for_backend", "transport_from_claim",
    "DistCollectives", "DistDeterminismMonitor",
    "OpSpec", "ProgramSpec", "build_field", "build_operations",
    "stencil_program",
    "ShardReport", "MergedReport", "merge_reports",
    "ShardWorker", "ServiceShardWorker", "op_signature", "replay",
    "DistRunner", "ServiceRunner", "run_reference", "BACKENDS",
]
