"""Heartbeat liveness: phi-style failure suspicion for persistent gangs.

The transport's hard receive deadline (:data:`~repro.dist.transport.
DEFAULT_DEADLINE_S`) guarantees a dead peer eventually becomes an
exception, but "eventually" is the *full* deadline — tens of seconds of a
gang parked in a collective that can never complete.  This module gives
the supervisor a much earlier signal: every worker emits periodic
**heartbeat frames** on its control channel, and a driver-side
:class:`HeartbeatMonitor` accrues a *suspicion level* per rank,

.. math:: \\varphi(r) = \\frac{\\text{time since r's last beat}}
                             {\\text{EWMA of r's beat intervals}}

the simplified form of phi-accrual failure detection (Hayashibara et
al.): :math:`\\varphi` crossing ``phi_suspect`` marks a rank *suspected*
(slow — keep waiting), crossing ``phi_dead`` marks it *dead* (stop
waiting, quarantine it, respawn).  Distinguishing the two is the whole
point: a slow shard recovers its own suspicion by beating again, only a
silent one is declared dead — long before the recv deadline would fire.

Everything here is deterministic by construction:

* the monitor takes an **injectable clock** (tests drive transitions with
  a fake clock, timestamps in snapshots are rendered relative to the
  monitor's start so two fake-clock runs are byte-identical);
* heartbeat intervals and respawn backoff draw their jitter from the
  counter-based Threefry stream (:func:`repro.core.rng.threefry2x64`) —
  pure functions of ``(seed, rank, index)``, never of wall clock, so a
  chaos run replays bit-identically (the backoff-determinism audit in
  ``tests/dist/test_heartbeat.py``).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.rng import threefry2x64

__all__ = ["HB_HEALTHY", "HB_SUSPECTED", "HB_DEAD", "HeartbeatMonitor",
           "heartbeat_interval", "respawn_backoff"]

#: Per-rank liveness states, in order of escalation.
HB_HEALTHY = "healthy"
HB_SUSPECTED = "suspected"
HB_DEAD = "dead"

#: Domain-separation streams (arbitrary non-zero constants, one per use,
#: mirroring the fault injector's ``_FAULT_STREAM`` discipline).
_HB_STREAM = 0x48B7
_BACKOFF_STREAM = 0xB0FF


def _unit(seed: int, stream: int, c0: int, c1: int) -> float:
    """One deterministic draw in [0, 1) from the Threefry stream."""
    word, _ = threefry2x64((seed, stream), (c0, c1))
    return (word >> 11) * (1.0 / (1 << 53))


def heartbeat_interval(seed: int, rank: int, index: int,
                       base_s: float, jitter: float = 0.2) -> float:
    """Delay before beat number ``index`` of ``rank``.

    ``base_s`` ± ``jitter`` fraction, the jitter drawn from the Threefry
    stream keyed on ``(seed, rank, index)`` — de-synchronizes the ranks'
    beat schedules (no thundering herd on the control channel) without
    ever consulting the wall clock, so the schedule replays exactly.
    """
    u = _unit(seed, _HB_STREAM, rank, index)
    return base_s * (1.0 + jitter * (2.0 * u - 1.0))


def respawn_backoff(seed: int, attempt: int, base_s: float = 0.05,
                    factor: float = 2.0, cap_s: float = 2.0,
                    jitter: float = 0.25) -> float:
    """Pause before respawn ``attempt`` (1-based): capped exponential.

    The jittered exponential every supervisor uses, with the jitter drawn
    from the counter-based stream instead of ``random``/wall clock —
    ``respawn_backoff(seed, k)`` is a pure function, so recovery reports
    can record it and two chaos runs back off identically.
    """
    if attempt < 1:
        raise ValueError(f"attempt is 1-based, got {attempt}")
    raw = min(cap_s, base_s * factor ** (attempt - 1))
    return raw * (1.0 + jitter * _unit(seed, _BACKOFF_STREAM, attempt, 0))


class HeartbeatMonitor:
    """Accrues per-rank suspicion from beat arrivals; thread-safe.

    One instance lives on the gang driver; the channel pump feeds it
    :meth:`beat` calls and periodically drains :meth:`poll` for state
    transitions (each transition is reported exactly once — the pump
    turns them into profiler events).  ``clock`` is injectable so every
    threshold crossing is testable without sleeping.
    """

    def __init__(self, ranks: int, interval_s: float,
                 phi_suspect: float = 4.0, phi_dead: float = 8.0,
                 clock: Callable[[], float] = time.monotonic):
        if not 0 < phi_suspect < phi_dead:
            raise ValueError(
                f"need 0 < phi_suspect < phi_dead, got "
                f"{phi_suspect} / {phi_dead}")
        self.num_ranks = ranks
        self.interval_s = interval_s
        self.phi_suspect = phi_suspect
        self.phi_dead = phi_dead
        self._clock = clock
        self._lock = threading.Lock()
        self._t0 = clock()
        now = self._t0
        self._last: Dict[int, float] = {r: now for r in range(ranks)}
        self._mean: Dict[int, float] = {r: interval_s for r in range(ranks)}
        self._beats: Dict[int, int] = {r: 0 for r in range(ranks)}
        self._suspected_at: Dict[int, Optional[float]] = \
            {r: None for r in range(ranks)}
        self._dead_at: Dict[int, Optional[float]] = \
            {r: None for r in range(ranks)}

    # -- feeding -------------------------------------------------------------

    def beat(self, rank: int, at: Optional[float] = None) -> None:
        """Record one heartbeat arrival from ``rank``."""
        now = self._clock() if at is None else at
        with self._lock:
            if rank not in self._last:
                return
            observed = max(0.0, now - self._last[rank])
            self._last[rank] = now
            self._beats[rank] += 1
            # EWMA of inter-arrival times, seeded with the nominal
            # interval so the very first gap already has a baseline.
            self._mean[rank] = 0.7 * self._mean[rank] + 0.3 * observed
            if self._dead_at[rank] is None:
                # A slow rank that beats again sheds its suspicion — the
                # slow-vs-dead distinction the detector exists for.
                self._suspected_at[rank] = None

    def force_dead(self, rank: int, at: Optional[float] = None) -> bool:
        """Declare ``rank`` dead out of band (channel EOF); True if new."""
        now = self._clock() if at is None else at
        with self._lock:
            if rank not in self._dead_at or self._dead_at[rank] is not None:
                return False
            if self._suspected_at[rank] is None:
                self._suspected_at[rank] = now
            self._dead_at[rank] = now
            return True

    def reset(self, rank: int, at: Optional[float] = None) -> None:
        """Fresh baseline for ``rank`` (a replacement worker rejoined)."""
        now = self._clock() if at is None else at
        with self._lock:
            self._last[rank] = now
            self._mean[rank] = self.interval_s
            self._beats[rank] = 0
            self._suspected_at[rank] = None
            self._dead_at[rank] = None

    # -- reading -------------------------------------------------------------

    def phi(self, rank: int, now: Optional[float] = None) -> float:
        now = self._clock() if now is None else now
        with self._lock:
            return self._phi_locked(rank, now)

    def _phi_locked(self, rank: int, now: float) -> float:
        elapsed = max(0.0, now - self._last[rank])
        return elapsed / max(self._mean[rank], 1e-9)

    def state(self, rank: int, now: Optional[float] = None) -> str:
        now = self._clock() if now is None else now
        with self._lock:
            return self._state_locked(rank, now)

    def _state_locked(self, rank: int, now: float) -> str:
        if self._dead_at[rank] is not None:
            return HB_DEAD
        p = self._phi_locked(rank, now)
        if p >= self.phi_dead:
            return HB_DEAD
        if p >= self.phi_suspect:
            return HB_SUSPECTED
        return HB_HEALTHY

    def dead_ranks(self, now: Optional[float] = None) -> List[int]:
        now = self._clock() if now is None else now
        with self._lock:
            return [r for r in sorted(self._last)
                    if self._state_locked(r, now) == HB_DEAD]

    def poll(self, now: Optional[float] = None
             ) -> List[Tuple[str, int, float]]:
        """New state transitions since the last poll, recorded once each.

        Returns ``(state, rank, at)`` tuples — ``state`` is
        :data:`HB_SUSPECTED` or :data:`HB_DEAD` — and stamps the
        per-rank ``suspected_at`` / ``dead_at`` walls used by
        :meth:`snapshot` (the "wall of suspicion").
        """
        now = self._clock() if now is None else now
        transitions: List[Tuple[str, int, float]] = []
        with self._lock:
            for rank in sorted(self._last):
                if self._dead_at[rank] is not None:
                    continue
                p = self._phi_locked(rank, now)
                if p >= self.phi_dead:
                    if self._suspected_at[rank] is None:
                        self._suspected_at[rank] = now
                        transitions.append((HB_SUSPECTED, rank, now))
                    self._dead_at[rank] = now
                    transitions.append((HB_DEAD, rank, now))
                elif p >= self.phi_suspect \
                        and self._suspected_at[rank] is None:
                    self._suspected_at[rank] = now
                    transitions.append((HB_SUSPECTED, rank, now))
        return transitions

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """JSON-safe summary of every rank's liveness.

        Timestamps are relative to the monitor's start, so with an
        injectable clock two identical runs render identical snapshots
        (asserted by the recovery-report round-trip tests).
        """
        now = self._clock() if now is None else now
        with self._lock:
            ranks: Dict[str, Any] = {}
            for r in sorted(self._last):
                rel = lambda t: (None if t is None
                                 else round(t - self._t0, 6))  # noqa: E731
                ranks[str(r)] = {
                    "state": self._state_locked(r, now),
                    "phi": round(self._phi_locked(r, now), 3),
                    "beats": self._beats[r],
                    "last_beat_age_s": round(now - self._last[r], 6),
                    "suspected_at": rel(self._suspected_at[r]),
                    "dead_at": rel(self._dead_at[r]),
                }
            return {"interval_s": self.interval_s,
                    "phi_suspect": self.phi_suspect,
                    "phi_dead": self.phi_dead,
                    "ranks": ranks}
