"""Shard-to-shard transports for the multiprocess backend.

A :class:`Transport` gives one shard (its *rank*) tagged, reliable,
deadline-bounded message exchange with every peer shard.  Four
implementations:

* :class:`LoopbackFabric` — in-process queues, one transport per rank; the
  unit-test fabric.  Threads stand in for processes, and an optional
  ``scramble`` hook reorders deliveries to exercise the tag/sequence
  matching logic.
* :class:`PipeFabric` — a full mesh of ``multiprocessing.Pipe`` duplex
  connections carrying length-prefixed frames (:mod:`repro.dist.frames`);
  each endpoint set is handed to one worker process.
* :class:`SharedMemFabric` — one single-producer/single-consumer ring
  buffer in ``multiprocessing.shared_memory`` per directed (src, dst)
  channel.  Frames are written once into the ring and decoded **in
  place** on the receive side; large ndarray payloads come out as
  zero-copy views into the ring, whose slots are reclaimed only once the
  views are garbage collected.
* :class:`TCPFabric` — one TCP socket per channel, pre-connected in the
  parent for single-host gangs; :func:`connect_tcp_mesh` performs a
  host:port rendezvous so gangs can span hosts.

Delivery semantics shared by all (implemented in the base class):

* every frame carries a per-``(src, dst)`` channel **sequence number**;
  duplicates (same ``seq`` seen twice) are dropped, and out-of-order
  arrivals are resolved by the receiver's tag matching — :meth:`recv`
  returns the payload for one exact ``(kind, op, round)`` tag, buffering
  any frames that arrive for later tags.  The out-of-order window is
  bounded: a peer that skips ahead more than ``max_reorder`` sequence
  numbers (e.g. a mis-rebound post-rejoin worker) surfaces as a
  structured :class:`ReorderWindowExceeded` instead of unbounded state
  growth;
* every :meth:`recv` has a **hard deadline**: rather than hang on a dead
  or diverged peer, it raises :class:`~repro.faults.injector
  .CollectiveTimeout` carrying the caller's real ``(kind, op)`` tag and
  the actual number of poll attempts made (retry budget semantics
  borrowed from :class:`~repro.core.collectives.RetryConfig` — polling
  backs off geometrically between attempts, and resets to the base
  interval whenever a poll succeeds so bursts drain at full speed);
* a peer that closed its end (worker crash) surfaces immediately as
  :class:`PeerGone` (a ``CollectiveTimeout`` subclass), never a hang;
* a transport that has been :meth:`~Transport.close`\\ d rejects further
  ``send``/``recv`` with :class:`TransportError` — a parked secondary
  observer that cascade-closed its endpoints cannot silently push frames
  into a stale fabric.
"""

from __future__ import annotations

import os
import queue
import select
import socket
import struct
import threading
import time
import weakref
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.collectives import RetryConfig
from ..faults.injector import CollectiveTimeout
from .frames import (MAGIC, Frame, FrameDecoder, FrameError, decode_frame,
                     decode_frame_view, encode_frame, encode_frame_parts)

__all__ = ["TransportError", "PeerGone", "ReorderWindowExceeded",
           "Transport", "LoopbackFabric", "PipeFabric", "SharedMemFabric",
           "TCPFabric", "claimed_transport", "transport_from_claim",
           "fabric_for_backend", "connect_tcp_mesh", "PROCESS_BACKENDS",
           "DEFAULT_DEADLINE_S", "DEFAULT_RING_BYTES", "DEFAULT_MAX_REORDER"]

#: Default hard deadline on every receive.  Generous for CI machines, but
#: finite: a dead peer turns into an exception, never a hang.
DEFAULT_DEADLINE_S = 30.0

#: recv polling starts at the base interval and backs off geometrically to
#: the cap while the channel is idle; any successful poll resets it.
POLL_BASE_S = 0.0005
POLL_CAP_S = 0.05

#: Bound on the per-peer out-of-order window: a frame whose seq is this far
#: above the contiguous watermark is a protocol violation, not reordering.
DEFAULT_MAX_REORDER = 4096

#: Per-channel shared-memory ring capacity.  One frame must fit
#: contiguously, so fabrics carrying large ndarray payloads should size
#: this to a few multiples of the largest expected frame.
DEFAULT_RING_BYTES = 4 * 1024 * 1024

#: Backends that run real worker processes over a fabric from this module
#: (as opposed to "loopback", which threads transports in-process).
PROCESS_BACKENDS = ("multiprocess", "shm", "tcp")


class TransportError(RuntimeError):
    """Transport-level failure that is not a timeout."""


class ReorderWindowExceeded(TransportError):
    """A peer skipped ahead of the bounded out-of-order window.

    Carries the offending channel state so supervisors can attribute the
    violation: ``src`` (the peer), ``seq`` (the frame that overflowed the
    window), ``floor`` (the contiguous watermark), and ``window`` (the
    configured bound).
    """

    def __init__(self, rank: int, src: int, seq: int, floor: int,
                 window: int):
        super().__init__(
            f"shard {rank}: frame seq {seq} from shard {src} is "
            f"{seq - floor} ahead of the contiguous watermark {floor}, "
            f"beyond the {window}-frame reorder window (mis-rebound or "
            f"corrupted peer)")
        self.rank = rank
        self.src = src
        self.seq = seq
        self.floor = floor
        self.window = window


class PeerGone(CollectiveTimeout):
    """The peer's endpoint is closed — its worker crashed or exited early.

    Subclasses :class:`CollectiveTimeout` so callers that guard collectives
    against lost messages handle a dead peer the same way (the ISSUE's
    "crash surfaces as an exception, not a hang" requirement).
    """

    def __init__(self, kind: str, op: int, peer: int, attempts: int = 1):
        super().__init__(kind, op, msg=peer, attempts=attempts)
        self.peer = peer
        # Rewrite the generic message with the crash-specific one.
        self.args = (f"collective {kind} #{op}: shard {peer}'s endpoint is "
                     f"closed (worker crashed or exited early)",)


class Transport:
    """Tagged, sequenced, deadline-bounded exchange with peer shards.

    Subclasses implement the raw byte movement (:meth:`_send_bytes` and
    either :meth:`_poll_bytes` or :meth:`_poll_frame`); this base class
    implements framing, per-peer sequence numbering, duplicate
    suppression, tag matching, and deadlines.  ``clock`` is injectable so
    deadline/backoff behavior is testable without real sleeps.
    """

    def __init__(self, rank: int, num_shards: int,
                 deadline_s: float = DEFAULT_DEADLINE_S,
                 retry: Optional[RetryConfig] = None,
                 clock: Callable[[], float] = time.monotonic,
                 max_reorder: int = DEFAULT_MAX_REORDER):
        if not 0 <= rank < num_shards:
            raise ValueError(f"rank {rank} outside [0, {num_shards})")
        self.rank = rank
        self.num_shards = num_shards
        self.deadline_s = deadline_s
        self.retry = retry or RetryConfig()
        self.max_reorder = max_reorder
        self._clock = clock
        self._send_seq: Dict[int, int] = {}
        # Duplicate suppression with bounded state: per peer, every seq
        # below ``_recv_floor`` has been accepted (contiguous watermark);
        # ``_recv_ahead`` holds only the out-of-order seqs above it.  A
        # persistent gang exchanges millions of frames per channel, so
        # remembering every seq ever seen (the old Set) is a leak — the
        # watermark keeps per-peer state proportional to the reorder
        # window, which is O(1) for FIFO fabrics and hard-capped at
        # ``max_reorder`` for misbehaving peers.
        self._recv_floor: Dict[int, int] = {}
        self._recv_ahead: Dict[int, Set[int]] = {}
        self._pending: Dict[Tuple[int, Tuple[str, int, int]], List[Any]] = {}
        self.frames_sent = 0
        self.frames_received = 0
        self.duplicates_dropped = 0
        self.out_of_order = 0
        self._closed = False

    # -- subclass interface --------------------------------------------------

    def _send_frame(self, dst: int, frame: Frame) -> None:
        """Encode and transmit one frame.

        The default serializes to one bytes object for
        :meth:`_send_bytes`; transports whose wire buffer can take
        scatter-gather writes (shm rings) override this to skip the
        intermediate copies.
        """
        self._send_bytes(dst, encode_frame(frame))

    def _send_bytes(self, dst: int, data: bytes) -> None:
        raise NotImplementedError

    def _poll_bytes(self, src: int, timeout_s: float) -> Optional[bytes]:
        """One encoded frame from ``src``, or None if none within timeout.

        Raises :class:`PeerGone` (with a generic tag) if the peer's
        endpoint is closed.
        """
        raise NotImplementedError

    def _poll_frame(self, src: int, timeout_s: float) -> Optional[Frame]:
        """One decoded frame from ``src``, or None if none within timeout.

        The default implementation decodes :meth:`_poll_bytes`; transports
        that can decode in place (shm rings) or maintain their own stream
        decoder (sockets) override this directly.
        """
        raw = self._poll_bytes(src, timeout_s)
        if raw is None:
            return None
        try:
            return decode_frame(raw)
        except FrameError as exc:
            raise TransportError(
                f"shard {self.rank}: corrupt frame from shard {src}: {exc}"
            ) from exc

    def close(self) -> None:
        self._closed = True

    # -- public API ----------------------------------------------------------

    def _require_open(self, what: str) -> None:
        if self._closed:
            raise TransportError(
                f"shard {self.rank}: {what} on a closed transport — this "
                f"endpoint was shut down (parked observer or torn-down "
                f"gang); rebind before reuse")

    def send(self, dst: int, kind: str, op: int, round_: int,
             payload: Any) -> None:
        """Send one tagged payload to shard ``dst``."""
        self._require_open(f"send({kind} #{op})")
        if dst == self.rank:
            raise TransportError("self-sends are not routed; loop locally")
        seq = self._send_seq.get(dst, 0)
        self._send_seq[dst] = seq + 1
        frame = Frame(kind=kind, op=op, round=round_, src=self.rank,
                      dst=dst, seq=seq, payload=payload)
        try:
            self._send_frame(dst, frame)
        except PeerGone:
            # Re-tag with the caller's collective so failure attribution
            # sees the real (kind, op) instead of a generic ("send", 0).
            raise PeerGone(kind, op, dst) from None
        self.frames_sent += 1

    def recv(self, src: int, kind: str, op: int, round_: int,
             timeout_s: Optional[float] = None) -> Any:
        """Payload of the frame tagged ``(kind, op, round_)`` from ``src``.

        Frames from ``src`` bearing other tags are buffered for later
        ``recv`` calls (out-of-order delivery is resolved here).  Raises
        :class:`CollectiveTimeout` when the deadline expires and
        :class:`PeerGone` when the peer's endpoint is closed — both carry
        the caller's tag and the actual number of poll attempts made.
        """
        self._require_open(f"recv({kind} #{op})")
        tag = (kind, op, round_)
        deadline = self._clock() + (timeout_s if timeout_s is not None
                                    else self.deadline_s)
        poll_s = POLL_BASE_S
        attempts = 0
        while True:
            bucket = self._pending.get((src, tag))
            if bucket:
                payload = bucket.pop(0)
                if not bucket:
                    # Drained buckets are deleted, not kept as empty lists:
                    # a long-lived transport sees an unbounded stream of
                    # distinct tags, one short-lived bucket each.
                    del self._pending[(src, tag)]
                return payload
            remaining = deadline - self._clock()
            if remaining <= 0:
                raise CollectiveTimeout(kind, op, msg=src,
                                        attempts=max(1, attempts))
            attempts += 1
            try:
                frame = self._poll_frame(src, min(poll_s, remaining))
            except PeerGone:
                raise PeerGone(kind, op, src, attempts=attempts) from None
            if frame is None:
                # Geometric backoff between polls (bounded by the retry
                # config's schedule shape); the deadline stays hard.
                poll_s = min(poll_s * self.retry.factor, POLL_CAP_S)
                continue
            # A successful poll resets the backoff: a burst of buffered
            # frames (e.g. out-of-order drain) is consumed at the base
            # interval instead of the capped idle interval.
            poll_s = POLL_BASE_S
            self._accept(src, frame, expected_tag=tag)

    def _accept(self, src: int, frame: Frame,
                expected_tag: Tuple[str, int, int]) -> None:
        if frame.dst != self.rank:
            raise TransportError(
                f"misrouted frame: dst={frame.dst} arrived at {self.rank}")
        if not self._note_seq(frame.src, frame.seq):
            self.duplicates_dropped += 1
            return
        self.frames_received += 1
        if frame.tag() != expected_tag:
            self.out_of_order += 1
        self._pending.setdefault((frame.src, frame.tag()), []) \
            .append(frame.payload)

    def _note_seq(self, src: int, seq: int) -> bool:
        """Record one arrival; False if ``seq`` was already accepted.

        Contiguous watermark plus out-of-order window: seqs below the
        per-peer floor are duplicates by definition, seqs above it live in
        a small set until the floor catches up and absorbs them.  The set
        is hard-capped: a seq more than ``max_reorder`` above the floor
        raises :class:`ReorderWindowExceeded` instead of growing state
        without bound.
        """
        floor = self._recv_floor.get(src, 0)
        if seq < floor:
            return False
        if seq - floor >= self.max_reorder:
            raise ReorderWindowExceeded(self.rank, src, seq, floor,
                                        self.max_reorder)
        ahead = self._recv_ahead.setdefault(src, set())
        if seq in ahead:
            return False
        if seq == floor:
            floor += 1
            while floor in ahead:
                ahead.discard(floor)
                floor += 1
            self._recv_floor[src] = floor
        else:
            ahead.add(seq)
        return True


# ---------------------------------------------------------------------------
# Loopback (in-process) fabric
# ---------------------------------------------------------------------------

class _LoopbackTransport(Transport):
    def __init__(self, fabric: "LoopbackFabric", rank: int):
        super().__init__(rank, fabric.num_shards,
                         deadline_s=fabric.deadline_s, retry=fabric.retry,
                         clock=fabric.clock or time.monotonic)
        self._fabric = fabric

    def _send_bytes(self, dst: int, data: bytes) -> None:
        if self._fabric.is_closed(dst):
            # Match the process fabrics: writing to a dead peer surfaces
            # immediately (send() re-tags with the caller's collective).
            raise PeerGone("send", 0, dst)
        self._fabric.deliver(self.rank, dst, data)

    def _poll_bytes(self, src: int, timeout_s: float) -> Optional[bytes]:
        q = self._fabric.channel(src, self.rank)
        try:
            return q.get(timeout=timeout_s)
        except queue.Empty:
            if self._fabric.is_closed(src):
                raise PeerGone("recv", 0, src) from None
            return None


class LoopbackFabric:
    """In-process mesh of queues — the test stand-in for real IPC.

    The fabric still runs every payload through the full frame
    encode/decode path, so serialization bugs show up here too.  An
    optional ``scramble(src, dst, pending) -> list`` hook reorders (or
    duplicates) queued deliveries, modelling an adversarial network, and
    an optional ``clock`` is threaded into every transport so deadline
    and backoff behavior can be driven by a fake clock in tests.
    """

    parent_must_release = False

    def __init__(self, num_shards: int,
                 deadline_s: float = DEFAULT_DEADLINE_S,
                 retry: Optional[RetryConfig] = None,
                 scramble=None,
                 clock: Optional[Callable[[], float]] = None):
        self.num_shards = num_shards
        self.deadline_s = deadline_s
        self.retry = retry
        self.scramble = scramble
        self.clock = clock
        self._channels: Dict[Tuple[int, int], "queue.Queue[bytes]"] = {
            (s, d): queue.Queue()
            for s in range(num_shards) for d in range(num_shards) if s != d
        }
        self._closed: Set[int] = set()

    def transport(self, rank: int) -> Transport:
        return _LoopbackTransport(self, rank)

    def transports(self) -> List[Transport]:
        return [self.transport(r) for r in range(self.num_shards)]

    def channel(self, src: int, dst: int) -> "queue.Queue[bytes]":
        return self._channels[(src, dst)]

    def deliver(self, src: int, dst: int, data: bytes) -> None:
        q = self._channels[(src, dst)]
        if self.scramble is None:
            q.put(data)
            return
        # Drain, let the hook reorder/duplicate, refill.  Only used by
        # single-threaded tests, so the drain/refill window is benign.
        # The hook must see the backlog in FIFO arrival order (queue drains
        # oldest-first) with the new frame last, so an identity scramble is
        # a true no-op on delivery order.
        pending: List[bytes] = []
        while True:
            try:
                pending.append(q.get_nowait())
            except queue.Empty:
                break
        pending.append(data)
        for item in self.scramble(src, dst, pending):
            q.put(item)

    def mark_closed(self, rank: int) -> None:
        """Declare ``rank`` dead: peers polling it get :class:`PeerGone`."""
        self._closed.add(rank)

    def is_closed(self, rank: int) -> bool:
        return rank in self._closed


# ---------------------------------------------------------------------------
# Multiprocessing pipe fabric
# ---------------------------------------------------------------------------

class _PipeTransport(Transport):
    """One rank's endpoints of the full pipe mesh."""

    def __init__(self, rank: int, num_shards: int, conns: Dict[int, Any],
                 deadline_s: float = DEFAULT_DEADLINE_S,
                 retry: Optional[RetryConfig] = None):
        super().__init__(rank, num_shards, deadline_s=deadline_s,
                         retry=retry)
        self._conns = conns            # peer rank -> Connection

    def _send_bytes(self, dst: int, data: bytes) -> None:
        try:
            self._conns[dst].send_bytes(data)
        except (BrokenPipeError, OSError):
            raise PeerGone("send", 0, dst) from None

    def _poll_bytes(self, src: int, timeout_s: float) -> Optional[bytes]:
        conn = self._conns[src]
        try:
            if not conn.poll(timeout_s):
                return None
            return conn.recv_bytes()
        except (EOFError, BrokenPipeError, OSError):
            raise PeerGone("recv", 0, src) from None

    def close(self) -> None:
        super().close()
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass


class PipeFabric:
    """Full mesh of duplex ``multiprocessing.Pipe`` connections.

    Built in the parent before forking; :meth:`transport` is then called
    once per rank (in that rank's process) to claim its endpoints.  The
    counterpart endpoints are closed lazily by each process on claim, so a
    crashed worker's peers observe EOF rather than blocking forever.
    """

    #: The parent must close its endpoint copies after forking workers,
    #: else a crashed worker's peers never see EOF.
    parent_must_release = True

    def __init__(self, num_shards: int,
                 deadline_s: float = DEFAULT_DEADLINE_S,
                 retry: Optional[RetryConfig] = None):
        import multiprocessing as mp
        self.num_shards = num_shards
        self.deadline_s = deadline_s
        self.retry = retry
        # _ends[(a, b)] = (end held by a, end held by b), for a < b.
        self._ends: Dict[Tuple[int, int], Tuple[Any, Any]] = {}
        for a in range(num_shards):
            for b in range(a + 1, num_shards):
                self._ends[(a, b)] = mp.Pipe(duplex=True)

    def transport(self, rank: int) -> Transport:
        return _PipeTransport(rank, self.num_shards, self.claim_conns(rank),
                              deadline_s=self.deadline_s, retry=self.retry)

    def transports(self) -> List[Transport]:
        return [self.transport(r) for r in range(self.num_shards)]

    def claim_conns(self, rank: int) -> Dict[int, Any]:
        """``rank``'s endpoint set, as a picklable peer→Connection map.

        The re-endpointing half of live rejoin: the supervisor builds a
        *fresh* fabric, sends each surviving worker its claimed endpoints
        over the existing control pipe (``multiprocessing`` pickles
        ``Connection`` objects by duplicating the descriptor at pickle
        time, so the parent may close its copies afterwards), and the
        worker rebuilds its transport via :func:`transport_from_claim`.
        """
        conns: Dict[int, Any] = {}
        for (a, b), (end_a, end_b) in self._ends.items():
            if rank == a:
                conns[b] = end_a
            elif rank == b:
                conns[a] = end_b
        return conns

    def claim(self, rank: int) -> Dict[str, Any]:
        """Self-describing, picklable rejoin claim for ``rank``."""
        return {"kind": "pipe", "rank": rank, "num_shards": self.num_shards,
                "deadline_s": self.deadline_s,
                "conns": self.claim_conns(rank)}

    def close_other_ends(self, rank: int) -> None:
        """In a worker: drop every endpoint not belonging to ``rank``.

        Keeping foreign write-ends open would mask peer crashes (the pipe
        never reports EOF while any copy of the write end survives).
        """
        for (a, b), (end_a, end_b) in self._ends.items():
            for owner, end in ((a, end_a), (b, end_b)):
                if owner != rank:
                    try:
                        end.close()
                    except OSError:
                        pass

    def close_all(self) -> None:
        for end_a, end_b in self._ends.values():
            for end in (end_a, end_b):
                try:
                    end.close()
                except OSError:
                    pass


# ---------------------------------------------------------------------------
# Shared-memory ring fabric
# ---------------------------------------------------------------------------

class _ShmRing:
    """One direction of one channel: an SPSC byte ring in shared memory.

    Layout: 16-byte header (``head`` — total bytes published, written only
    by the producer; ``tail`` — total bytes released, written only by the
    consumer; both monotonic u64 counters) followed by ``capacity`` data
    bytes.  Frames are always stored contiguously: when one would straddle
    the end of the buffer the producer stamps a one-byte PAD marker
    (0xFF — unambiguous, the frame magic starts 0xD5) and skips to offset
    zero.  The consumer parses at its private ``_read`` cursor and
    publishes ``tail`` separately, which is what lets zero-copy ndarray
    views pin their slots: ``tail`` only advances past a frame once every
    view carved from it has been garbage collected.

    Single-producer/single-consumer with the producer publishing ``head``
    strictly after the frame body is in place; no locks needed.
    """

    HDR = 16
    PAD = 0xFF

    def __init__(self, shm, created: bool):
        self._shm = shm
        self.capacity = shm.size - self.HDR
        self._buf = shm.buf
        if created:
            struct.pack_into("<QQ", self._buf, 0, 0, 0)
            self._head = 0
            self._read = 0
        else:
            head, tail = struct.unpack_from("<QQ", self._buf, 0)
            self._head = head
            self._read = tail
        self._released = False

    @classmethod
    def create(cls, ring_bytes: int) -> "_ShmRing":
        from multiprocessing import shared_memory
        return cls(shared_memory.SharedMemory(create=True,
                                              size=ring_bytes + cls.HDR),
                   created=True)

    @classmethod
    def attach(cls, name: str) -> "_ShmRing":
        from multiprocessing import shared_memory
        # Attaching re-registers the name with the resource tracker; the
        # tracker process is inherited across fork, so this is a no-op
        # duplicate and the creating fabric's unlink clears it exactly
        # once.
        return cls(shared_memory.SharedMemory(name=name), created=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # -- producer side -------------------------------------------------------

    def _load_tail(self) -> int:
        return struct.unpack_from("<Q", self._buf, 8)[0]

    def try_write(self, data: bytes) -> bool:
        """One attempt to append a frame; False if the ring is too full."""
        return self.try_write_parts((data,), len(data))

    def try_write_parts(self, parts, n: int) -> bool:
        """Append one frame given as bytes-like pieces totalling ``n``.

        The scatter-gather fast path: pieces are copied into the ring
        back to back, so a large ndarray payload handed over as its own
        buffer (:func:`~repro.dist.frames.encode_frame_parts`) is copied
        exactly once end to end.
        """
        cap = self.capacity
        if n > cap:
            raise TransportError(
                f"frame of {n} bytes exceeds the shm ring capacity "
                f"({cap} bytes); construct the fabric with a larger "
                f"ring_bytes")
        head = self._head
        pos = head % cap
        if pos + n > cap:
            # The frame must be contiguous: stamp a PAD marker and skip to
            # offset zero.  The skipped remainder counts as live span, so
            # it must itself fit before we commit it.
            pad = cap - pos
            if (head - self._load_tail()) + pad > cap:
                return False
            self._buf[self.HDR + pos] = self.PAD
            head += pad
            self._head = head
            struct.pack_into("<Q", self._buf, 0, head)
            pos = 0
        if (head - self._load_tail()) + n > cap:
            return False
        off = self.HDR + pos
        for part in parts:
            ln = len(part)
            self._buf[off:off + ln] = part
            off += ln
        self._head = head + n
        # Publish strictly after the body so the consumer never parses a
        # half-written frame.
        struct.pack_into("<Q", self._buf, 0, self._head)
        return True

    # -- consumer side -------------------------------------------------------

    def _load_head(self) -> int:
        return struct.unpack_from("<Q", self._buf, 0)[0]

    def try_read(self) -> Optional[Tuple[memoryview, int]]:
        """``(frame_view, cursor_after)`` for the next frame, or None.

        The view aliases ring storage; the caller must :meth:`release` up
        to ``cursor_after`` once no zero-copy decode of this frame (or an
        earlier one) is still alive.
        """
        cap = self.capacity
        while True:
            head = self._load_head()
            if self._read >= head:
                return None
            rpos = self._read % cap
            first = self._buf[self.HDR + rpos]
            if first == self.PAD:
                self._read += cap - rpos
                continue
            hdr = bytes(self._buf[self.HDR + rpos:self.HDR + rpos + 6])
            if hdr[:2] != MAGIC:
                raise FrameError(f"bad frame magic {hdr[:2]!r} in shm ring")
            total = 6 + struct.unpack(">I", hdr[2:])[0]
            view = memoryview(self._buf)[self.HDR + rpos:
                                         self.HDR + rpos + total]
            self._read += total
            return view, self._read

    def release(self, upto: int) -> None:
        """Publish ``tail``: the producer may now reuse bytes below it.

        Monotonic: reap can run re-entrantly (a weakref callback firing
        under an outer reap's lock), so a stale smaller cursor must never
        move the tail backwards.
        """
        if upto > struct.unpack_from("<Q", self._buf, 8)[0]:
            struct.pack_into("<Q", self._buf, 8, upto)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Unmap this process's view of the segment (idempotent)."""
        if self._released:
            return
        self._released = True
        try:
            self._buf = None
            self._shm.close()
        except (BufferError, OSError):
            # Exported zero-copy views still alive; the mapping dies with
            # the process instead.
            pass

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except (FileNotFoundError, OSError):
            pass


class _ShmStatus:
    """Tiny shared status board: per-rank pid + closed flag.

    Shared-memory rings have no file descriptor to deliver EOF, so crash
    detection is explicit: every transport announces its pid, ``close``
    raises its closed flag, and peers combine the flag with a throttled
    liveness probe (``os.kill(pid, 0)``) to turn a dead peer into
    :class:`PeerGone` instead of a hang.
    """

    STRIDE = 16  # u64 pid + u8 closed + padding

    def __init__(self, shm, created: bool):
        self._shm = shm
        self._buf = shm.buf
        self._released = False
        if created:
            self._buf[:shm.size] = b"\x00" * shm.size

    @classmethod
    def create(cls, num_shards: int) -> "_ShmStatus":
        from multiprocessing import shared_memory
        return cls(shared_memory.SharedMemory(create=True,
                                              size=cls.STRIDE * num_shards),
                   created=True)

    @classmethod
    def attach(cls, name: str) -> "_ShmStatus":
        from multiprocessing import shared_memory
        return cls(shared_memory.SharedMemory(name=name), created=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def announce(self, rank: int) -> None:
        struct.pack_into("<Q", self._buf, rank * self.STRIDE, os.getpid())

    def mark_closed(self, rank: int) -> None:
        self._buf[rank * self.STRIDE + 8] = 1

    def is_closed(self, rank: int) -> bool:
        return self._buf[rank * self.STRIDE + 8] == 1

    def alive(self, rank: int) -> bool:
        pid = struct.unpack_from("<Q", self._buf, rank * self.STRIDE)[0]
        if pid == 0:
            return True  # not announced yet — assume starting up
        # /proc tells zombies apart from live processes: a crashed sibling
        # stays kill(0)-visible until the common parent reaps it, which
        # would turn every crash into a full deadline stall.
        try:
            with open(f"/proc/{pid}/stat", "rb") as fh:
                stat = fh.read()
            return stat.rsplit(b")", 1)[1].split()[0] != b"Z"
        except FileNotFoundError:
            return False
        except OSError:
            pass
        try:
            os.kill(pid, 0)
            return True
        except ProcessLookupError:
            return False
        except PermissionError:
            return True

    def close(self) -> None:
        if self._released:
            return
        self._released = True
        try:
            self._buf = None
            self._shm.close()
        except (BufferError, OSError):
            pass

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except (FileNotFoundError, OSError):
            pass


class _SharedMemTransport(Transport):
    """One rank's view of the shm ring mesh; decodes frames in place."""

    #: Seconds between liveness probes of a silent peer.
    LIVENESS_INTERVAL_S = 0.05

    def __init__(self, rank: int, num_shards: int,
                 rings_out: Dict[int, _ShmRing],
                 rings_in: Dict[int, _ShmRing],
                 status: _ShmStatus,
                 deadline_s: float = DEFAULT_DEADLINE_S,
                 retry: Optional[RetryConfig] = None,
                 zero_copy: bool = True):
        super().__init__(rank, num_shards, deadline_s=deadline_s,
                         retry=retry)
        self._rings_out = rings_out
        self._rings_in = rings_in
        self._status = status
        self.zero_copy = zero_copy
        # Per peer: FIFO of (release_cursor, [weakref to each zero-copy
        # array] or None).  The ring tail advances through an entry only
        # once all its views are dead, in order — a frame cannot be
        # reclaimed while a later frame's slot is still pinned before it.
        self._inflight: Dict[int, deque] = {s: deque() for s in rings_in}
        # Reap runs both from the poll path and from weakref callbacks
        # (so a consumer that drops its views between collectives still
        # unblocks a stalled producer without ever polling again).  A
        # callback can fire mid-reap via GC, hence the RLock plus the
        # monotonic tail in :meth:`_ShmRing.release`.
        self._reap_lock = threading.RLock()
        # Frames drained opportunistically while a send was stalled on a
        # full outbound ring, waiting for their recv.
        self._stash: Dict[int, deque] = {s: deque() for s in rings_in}
        self._next_liveness: Dict[int, float] = {s: 0.0 for s in rings_in}
        status.announce(rank)

    def _send_frame(self, dst: int, frame: Frame) -> None:
        # Scatter-gather into the ring: the payload's own buffer is one
        # of the parts, so big arrays are copied once (array -> ring)
        # instead of thrice (tobytes -> join -> ring).
        parts, total = encode_frame_parts(frame)
        self._send_parts(dst, parts, total)

    def _send_bytes(self, dst: int, data: bytes) -> None:
        self._send_parts(dst, (data,), len(data))

    def _send_parts(self, dst: int, parts, total: int) -> None:
        ring = self._rings_out[dst]
        deadline = time.monotonic() + self.deadline_s
        while not ring.try_write_parts(parts, total):
            # Drain our inbound rings while stalled: with symmetric large
            # exchanges every peer may be mid-send, and nobody's outbound
            # ring empties until somebody consumes.
            drained = False
            for src in self._rings_in:
                while True:
                    frame = self._take_one(src)
                    if frame is None:
                        break
                    self._stash[src].append(frame)
                    drained = True
            if drained:
                continue
            if self._status.is_closed(dst) or not self._status.alive(dst):
                raise PeerGone("send", 0, dst)
            if time.monotonic() >= deadline:
                raise TransportError(
                    f"shard {self.rank}: shm ring to shard {dst} stayed "
                    f"full for {self.deadline_s}s (receiver not draining, "
                    f"or zero-copy views pinning the ring)")
            time.sleep(0.0002)

    def _take_one(self, src: int) -> Optional[Frame]:
        """Decode the next frame from ``src``'s ring, if one is ready."""
        ring = self._rings_in[src]
        self._reap(src, ring)
        try:
            out = ring.try_read()
        except FrameError as exc:
            raise TransportError(
                f"shard {self.rank}: corrupt frame from shard {src}: "
                f"{exc}") from exc
        if out is None:
            return None
        view, cursor = out
        try:
            frame, holds = decode_frame_view(view, zero_copy=self.zero_copy)
        except FrameError as exc:
            raise TransportError(
                f"shard {self.rank}: corrupt frame from shard {src}: "
                f"{exc}") from exc
        if holds:
            on_dead = (lambda _r, s=src: self._reap_safe(s))
            refs = [weakref.ref(a, on_dead) for a in holds]
        else:
            refs = None
            view.release()
        self._inflight[src].append((cursor, refs))
        self._reap(src, ring)
        return frame

    def _poll_frame(self, src: int, timeout_s: float) -> Optional[Frame]:
        stash = self._stash[src]
        if stash:
            return stash.popleft()
        deadline = time.monotonic() + timeout_s
        while True:
            frame = self._take_one(src)
            if frame is not None:
                return frame
            now = time.monotonic()
            dead = self._status.is_closed(src)
            if not dead and now >= self._next_liveness[src]:
                self._next_liveness[src] = now + self.LIVENESS_INTERVAL_S
                dead = not self._status.alive(src)
            if dead:
                # A peer commits its final frames to the ring *before*
                # closing or exiting, so drain once more after observing
                # death — pipe/tcp get the same ordering for free from
                # kernel EOF semantics (buffered data before EOF).
                frame = self._take_one(src)
                if frame is not None:
                    return frame
                raise PeerGone("recv", 0, src)
            if now >= deadline:
                return None
            time.sleep(0.0002)

    def _reap(self, src: int, ring: _ShmRing) -> None:
        """Advance the ring tail past frames whose views are all dead."""
        with self._reap_lock:
            q = self._inflight[src]
            released = None
            while q:
                cursor, refs = q[0]
                if refs is not None and any(r() is not None for r in refs):
                    break
                released = cursor
                q.popleft()
            if released is not None:
                ring.release(released)

    def _reap_safe(self, src: int) -> None:
        """Weakref-callback entry: best-effort reap, never raises."""
        try:
            self._reap(src, self._rings_in[src])
        except Exception:  # noqa: BLE001 - fired during GC/teardown
            pass

    def close(self) -> None:
        super().close()
        self._status.mark_closed(self.rank)


class SharedMemFabric:
    """Zero-copy mesh of shared-memory rings, one per directed channel.

    Frames are written once into a per-(src, dst) SPSC ring
    (:class:`_ShmRing`) and decoded in place on the receive side; ndarray
    payloads of at least ``frames.ZERO_COPY_MIN_BYTES`` come out as views
    into the ring (toggle with ``zero_copy=False`` to force copies).
    Workers inherit the mappings across ``fork``; rejoin claims travel as
    segment *names* and reattach.  Crash detection is via a shared status
    board (pid liveness + closed flags) rather than fd EOF, so the parent
    keeps its mappings until :meth:`close_all`, which also unlinks the
    segments (exactly once, in the creating process).
    """

    parent_must_release = False

    def __init__(self, num_shards: int,
                 deadline_s: float = DEFAULT_DEADLINE_S,
                 retry: Optional[RetryConfig] = None,
                 ring_bytes: int = DEFAULT_RING_BYTES,
                 zero_copy: bool = True):
        self.num_shards = num_shards
        self.deadline_s = deadline_s
        self.retry = retry
        self.ring_bytes = ring_bytes
        self.zero_copy = zero_copy
        self._creator_pid = os.getpid()
        self._unlinked = False
        self._rings: Dict[Tuple[int, int], _ShmRing] = {
            (s, d): _ShmRing.create(ring_bytes)
            for s in range(num_shards) for d in range(num_shards) if s != d
        }
        self._status = _ShmStatus.create(num_shards)

    def transport(self, rank: int) -> Transport:
        rings_out = {d: self._rings[(rank, d)]
                     for d in range(self.num_shards) if d != rank}
        rings_in = {s: self._rings[(s, rank)]
                    for s in range(self.num_shards) if s != rank}
        return _SharedMemTransport(rank, self.num_shards, rings_out,
                                   rings_in, self._status,
                                   deadline_s=self.deadline_s,
                                   retry=self.retry,
                                   zero_copy=self.zero_copy)

    def transports(self) -> List[Transport]:
        return [self.transport(r) for r in range(self.num_shards)]

    def claim(self, rank: int) -> Dict[str, Any]:
        """Picklable rejoin claim: segment names, reattached on receipt."""
        return {
            "kind": "shm", "rank": rank, "num_shards": self.num_shards,
            "deadline_s": self.deadline_s, "zero_copy": self.zero_copy,
            "rings_out": {d: self._rings[(rank, d)].name
                          for d in range(self.num_shards) if d != rank},
            "rings_in": {s: self._rings[(s, rank)].name
                         for s in range(self.num_shards) if s != rank},
            "status": self._status.name,
        }

    def mark_closed(self, rank: int) -> None:
        """Declare ``rank`` dead: peers polling it get :class:`PeerGone`."""
        self._status.mark_closed(rank)

    def close_other_ends(self, rank: int) -> None:
        """In a worker: unmap every ring not touching ``rank``."""
        for (s, d), ring in self._rings.items():
            if rank not in (s, d):
                ring.close()

    def close_all(self) -> None:
        """Unmap everything; unlink the segments if we created them."""
        for ring in self._rings.values():
            ring.close()
        self._status.close()
        if not self._unlinked and os.getpid() == self._creator_pid:
            self._unlinked = True
            for ring in self._rings.values():
                ring.unlink()
            self._status.unlink()

    def __del__(self):
        try:
            self.close_all()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# TCP socket fabric
# ---------------------------------------------------------------------------

_RECV_CHUNK = 1 << 18


class _TCPTransport(Transport):
    """One rank's sockets of the TCP mesh, with per-peer stream decoders."""

    def __init__(self, rank: int, num_shards: int,
                 socks: Dict[int, socket.socket],
                 deadline_s: float = DEFAULT_DEADLINE_S,
                 retry: Optional[RetryConfig] = None):
        super().__init__(rank, num_shards, deadline_s=deadline_s,
                         retry=retry)
        self._socks = socks
        self._decoders: Dict[int, FrameDecoder] = {
            p: FrameDecoder() for p in socks}
        self._ready: Dict[int, deque] = {p: deque() for p in socks}
        for sock in socks.values():
            sock.setblocking(False)

    def _send_bytes(self, dst: int, data: bytes) -> None:
        sock = self._socks[dst]
        view = memoryview(data)
        off = 0
        deadline = time.monotonic() + self.deadline_s
        while off < len(data):
            try:
                off += sock.send(view[off:])
            except (BlockingIOError, InterruptedError):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportError(
                        f"shard {self.rank}: tcp send to shard {dst} "
                        f"stalled for {self.deadline_s}s")
                # Drain inbound buffers while stalled: with symmetric
                # large exchanges every peer may be mid-send, and no
                # socket becomes writable until somebody reads.
                self._pump_incoming()
                select.select([], [sock], [], min(0.01, remaining))
            except (BrokenPipeError, ConnectionResetError, OSError):
                raise PeerGone("send", 0, dst) from None

    def _pump_incoming(self) -> None:
        """Opportunistically move readable bytes into the frame queues.

        Errors are swallowed here — EOF and corruption re-surface with
        proper attribution on the next :meth:`_poll_frame` of that peer.
        """
        by_sock = {s: p for p, s in self._socks.items()}
        try:
            readable, _, _ = select.select(list(by_sock), [], [], 0)
        except (ValueError, OSError):
            return
        for sock in readable:
            peer = by_sock[sock]
            try:
                chunk = sock.recv(_RECV_CHUNK)
            except OSError:
                continue
            if not chunk:
                continue
            try:
                self._ready[peer].extend(self._decoders[peer].feed(chunk))
            except FrameError:
                continue

    def _poll_frame(self, src: int, timeout_s: float) -> Optional[Frame]:
        ready = self._ready[src]
        if ready:
            return ready.popleft()
        sock = self._socks[src]
        try:
            readable, _, _ = select.select([sock], [], [], max(0.0,
                                                               timeout_s))
        except (ValueError, OSError):
            raise PeerGone("recv", 0, src) from None
        if not readable:
            return None
        try:
            chunk = sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return None
        except (ConnectionResetError, OSError):
            raise PeerGone("recv", 0, src) from None
        if not chunk:
            raise PeerGone("recv", 0, src)
        try:
            frames = self._decoders[src].feed(chunk)
        except FrameError as exc:
            raise TransportError(
                f"shard {self.rank}: corrupt frame from shard {src}: {exc}"
            ) from exc
        ready.extend(frames)
        return ready.popleft() if ready else None

    def close(self) -> None:
        super().close()
        for sock in self._socks.values():
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class TCPFabric:
    """Full mesh of TCP socket pairs, pre-connected in the parent.

    The single-host construction mirrors :class:`PipeFabric` — every pair
    is connected up front over loopback and the endpoints are inherited
    across ``fork`` — so it slots into the same runner/service machinery.
    For gangs spanning hosts, each rank instead builds its own transport
    with :func:`connect_tcp_mesh` against a shared address list.
    """

    parent_must_release = True

    def __init__(self, num_shards: int,
                 deadline_s: float = DEFAULT_DEADLINE_S,
                 retry: Optional[RetryConfig] = None,
                 host: str = "127.0.0.1"):
        self.num_shards = num_shards
        self.deadline_s = deadline_s
        self.retry = retry
        # _ends[(a, b)] = (socket held by a, socket held by b), for a < b.
        self._ends: Dict[Tuple[int, int], Tuple[socket.socket,
                                                socket.socket]] = {}
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind((host, 0))
            listener.listen(max(1, num_shards * num_shards))
            addr = listener.getsockname()
            for a in range(num_shards):
                for b in range(a + 1, num_shards):
                    # Sequential connect-then-accept keeps the pairing
                    # deterministic on the single accept queue.
                    end_b = socket.create_connection(addr)
                    end_a, _ = listener.accept()
                    for sock in (end_a, end_b):
                        sock.setsockopt(socket.IPPROTO_TCP,
                                        socket.TCP_NODELAY, 1)
                    self._ends[(a, b)] = (end_a, end_b)
        finally:
            listener.close()

    def _claim_socks(self, rank: int) -> Dict[int, socket.socket]:
        socks: Dict[int, socket.socket] = {}
        for (a, b), (end_a, end_b) in self._ends.items():
            if rank == a:
                socks[b] = end_a
            elif rank == b:
                socks[a] = end_b
        return socks

    def transport(self, rank: int) -> Transport:
        return _TCPTransport(rank, self.num_shards, self._claim_socks(rank),
                             deadline_s=self.deadline_s, retry=self.retry)

    def transports(self) -> List[Transport]:
        return [self.transport(r) for r in range(self.num_shards)]

    def claim(self, rank: int) -> Dict[str, Any]:
        """Picklable rejoin claim (sockets pickle by descriptor dup)."""
        return {"kind": "tcp", "rank": rank, "num_shards": self.num_shards,
                "deadline_s": self.deadline_s,
                "socks": self._claim_socks(rank)}

    def close_other_ends(self, rank: int) -> None:
        """In a worker: drop every socket not belonging to ``rank``."""
        for (a, b), (end_a, end_b) in self._ends.items():
            for owner, sock in ((a, end_a), (b, end_b)):
                if owner != rank:
                    try:
                        sock.close()
                    except OSError:
                        pass

    def close_all(self) -> None:
        for end_a, end_b in self._ends.values():
            for sock in (end_a, end_b):
                try:
                    sock.close()
                except OSError:
                    pass


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise TransportError("tcp rendezvous peer closed mid-hello")
        buf += chunk
    return buf


def connect_tcp_mesh(rank: int, num_shards: int,
                     addresses: List[Tuple[str, int]],
                     deadline_s: float = DEFAULT_DEADLINE_S,
                     retry: Optional[RetryConfig] = None,
                     listener: Optional[socket.socket] = None) -> Transport:
    """Rendezvous one rank's transport of a (possibly multi-host) mesh.

    ``addresses[r]`` is the ``(host, port)`` rank ``r`` listens on.  Each
    rank dials every lower rank (retrying until the deadline, since peers
    may not be listening yet) and sends a 4-byte hello carrying its rank;
    it then accepts one connection from every higher rank.  Pass a
    pre-bound ``listener`` to avoid bind races in tests; it is closed once
    the mesh is up.
    """
    deadline = time.monotonic() + deadline_s
    own = listener
    if own is None:
        own = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        own.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        own.bind(tuple(addresses[rank]))
        own.listen(num_shards)
    socks: Dict[int, socket.socket] = {}
    try:
        for peer in range(rank):
            while True:
                try:
                    sock = socket.create_connection(tuple(addresses[peer]),
                                                    timeout=1.0)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise TransportError(
                            f"rank {rank}: could not reach rank {peer} at "
                            f"{addresses[peer]} within {deadline_s}s")
                    time.sleep(0.05)
            sock.sendall(struct.pack(">I", rank))
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            socks[peer] = sock
        for _ in range(num_shards - rank - 1):
            own.settimeout(max(0.1, deadline - time.monotonic()))
            try:
                sock, _ = own.accept()
            except socket.timeout:
                raise TransportError(
                    f"rank {rank}: rendezvous accept timed out with "
                    f"{num_shards - rank - 1 - len([p for p in socks if p > rank])} "
                    f"higher rank(s) missing") from None
            sock.settimeout(max(0.1, deadline - time.monotonic()))
            try:
                peer = struct.unpack(">I", _recv_exact(sock, 4))[0]
            except socket.timeout:
                raise TransportError(
                    f"rank {rank}: rendezvous hello timed out") from None
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            socks[peer] = sock
    finally:
        own.close()
    return _TCPTransport(rank, num_shards, socks,
                         deadline_s=deadline_s, retry=retry)


# ---------------------------------------------------------------------------
# Fabric registry + rejoin claims
# ---------------------------------------------------------------------------

def fabric_for_backend(backend: str, num_shards: int,
                       deadline_s: float = DEFAULT_DEADLINE_S,
                       retry: Optional[RetryConfig] = None,
                       **kwargs) -> Any:
    """The process-mesh fabric for one of :data:`PROCESS_BACKENDS`.

    ``"multiprocess"`` keeps its historical meaning of the pipe mesh;
    ``"shm"`` and ``"tcp"`` select the shared-memory ring and TCP socket
    fabrics.  Extra ``kwargs`` (e.g. ``ring_bytes``) go to the fabric
    constructor.
    """
    if backend == "multiprocess":
        return PipeFabric(num_shards, deadline_s=deadline_s, retry=retry,
                          **kwargs)
    if backend == "shm":
        return SharedMemFabric(num_shards, deadline_s=deadline_s,
                               retry=retry, **kwargs)
    if backend == "tcp":
        return TCPFabric(num_shards, deadline_s=deadline_s, retry=retry,
                         **kwargs)
    raise ValueError(f"no process fabric for backend {backend!r}; "
                     f"expected one of {PROCESS_BACKENDS}")


def transport_from_claim(claim: Dict[str, Any],
                         retry: Optional[RetryConfig] = None) -> Transport:
    """Rebuild a transport from a fabric's :meth:`claim` in another process.

    The worker-side half of live rejoin, generalized over fabrics: pipe
    claims carry duplicated Connection endpoints, tcp claims carry
    duplicated sockets, shm claims carry segment names to reattach.
    """
    kind = claim["kind"]
    if kind == "pipe":
        return _PipeTransport(claim["rank"], claim["num_shards"],
                              dict(claim["conns"]),
                              deadline_s=claim["deadline_s"], retry=retry)
    if kind == "tcp":
        return _TCPTransport(claim["rank"], claim["num_shards"],
                             dict(claim["socks"]),
                             deadline_s=claim["deadline_s"], retry=retry)
    if kind == "shm":
        rings_out = {int(d): _ShmRing.attach(name)
                     for d, name in claim["rings_out"].items()}
        rings_in = {int(s): _ShmRing.attach(name)
                    for s, name in claim["rings_in"].items()}
        status = _ShmStatus.attach(claim["status"])
        return _SharedMemTransport(claim["rank"], claim["num_shards"],
                                   rings_out, rings_in, status,
                                   deadline_s=claim["deadline_s"],
                                   retry=retry,
                                   zero_copy=claim.get("zero_copy", True))
    raise TransportError(f"unknown rejoin claim kind {kind!r}")


def claimed_transport(rank: int, num_shards: int, conns: Dict[int, Any],
                      deadline_s: float = DEFAULT_DEADLINE_S,
                      retry: Optional[RetryConfig] = None) -> Transport:
    """A pipe transport over endpoints claimed from another process.

    Kept for compatibility; :func:`transport_from_claim` is the
    fabric-generic entry point.
    """
    return _PipeTransport(rank, num_shards, dict(conns),
                          deadline_s=deadline_s, retry=retry)
