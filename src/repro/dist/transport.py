"""Shard-to-shard transports for the multiprocess backend.

A :class:`Transport` gives one shard (its *rank*) tagged, reliable,
deadline-bounded message exchange with every peer shard.  Two
implementations:

* :class:`LoopbackFabric` — in-process queues, one transport per rank; the
  unit-test fabric.  Threads stand in for processes, and an optional
  ``scramble`` hook reorders deliveries to exercise the tag/sequence
  matching logic.
* :class:`PipeFabric` — a full mesh of ``multiprocessing.Pipe`` duplex
  connections carrying length-prefixed frames (:mod:`repro.dist.frames`);
  each endpoint set is handed to one worker process.

Delivery semantics shared by both (implemented in the base class):

* every frame carries a per-``(src, dst)`` channel **sequence number**;
  duplicates (same ``seq`` seen twice) are dropped, and out-of-order
  arrivals are resolved by the receiver's tag matching — :meth:`recv`
  returns the payload for one exact ``(kind, op, round)`` tag, buffering
  any frames that arrive for later tags;
* every :meth:`recv` has a **hard deadline**: rather than hang on a dead
  or diverged peer, it raises :class:`~repro.faults.injector
  .CollectiveTimeout` (retry budget semantics borrowed from
  :class:`~repro.core.collectives.RetryConfig` — polling backs off
  geometrically between attempts up to the deadline);
* a peer that closed its end (worker crash) surfaces immediately as
  :class:`PeerGone` (a ``CollectiveTimeout`` subclass), never a hang.
"""

from __future__ import annotations

import queue
import time
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.collectives import RetryConfig
from ..faults.injector import CollectiveTimeout
from .frames import Frame, FrameError, decode_frame, encode_frame

__all__ = ["TransportError", "PeerGone", "Transport", "LoopbackFabric",
           "PipeFabric", "claimed_transport", "DEFAULT_DEADLINE_S"]

#: Default hard deadline on every receive.  Generous for CI machines, but
#: finite: a dead peer turns into an exception, never a hang.
DEFAULT_DEADLINE_S = 30.0


class TransportError(RuntimeError):
    """Transport-level failure that is not a timeout."""


class PeerGone(CollectiveTimeout):
    """The peer's endpoint is closed — its worker crashed or exited early.

    Subclasses :class:`CollectiveTimeout` so callers that guard collectives
    against lost messages handle a dead peer the same way (the ISSUE's
    "crash surfaces as an exception, not a hang" requirement).
    """

    def __init__(self, kind: str, op: int, peer: int):
        super().__init__(kind, op, msg=peer, attempts=1)
        self.peer = peer
        # Rewrite the generic message with the crash-specific one.
        self.args = (f"collective {kind} #{op}: shard {peer}'s endpoint is "
                     f"closed (worker crashed or exited early)",)


class Transport:
    """Tagged, sequenced, deadline-bounded exchange with peer shards.

    Subclasses implement the raw byte movement (:meth:`_send_bytes`,
    :meth:`_poll_bytes`); this base class implements framing, per-peer
    sequence numbering, duplicate suppression, tag matching, and deadlines.
    """

    def __init__(self, rank: int, num_shards: int,
                 deadline_s: float = DEFAULT_DEADLINE_S,
                 retry: Optional[RetryConfig] = None):
        if not 0 <= rank < num_shards:
            raise ValueError(f"rank {rank} outside [0, {num_shards})")
        self.rank = rank
        self.num_shards = num_shards
        self.deadline_s = deadline_s
        self.retry = retry or RetryConfig()
        self._send_seq: Dict[int, int] = {}
        # Duplicate suppression with bounded state: per peer, every seq
        # below ``_recv_floor`` has been accepted (contiguous watermark);
        # ``_recv_ahead`` holds only the out-of-order seqs above it.  A
        # persistent gang exchanges millions of frames per channel, so
        # remembering every seq ever seen (the old Set) is a leak — the
        # watermark keeps per-peer state proportional to the reorder
        # window, which is O(1) for FIFO fabrics.
        self._recv_floor: Dict[int, int] = {}
        self._recv_ahead: Dict[int, Set[int]] = {}
        self._pending: Dict[Tuple[int, Tuple[str, int, int]], List[Any]] = {}
        self.frames_sent = 0
        self.frames_received = 0
        self.duplicates_dropped = 0
        self.out_of_order = 0
        self._closed = False

    # -- subclass interface --------------------------------------------------

    def _send_bytes(self, dst: int, data: bytes) -> None:
        raise NotImplementedError

    def _poll_bytes(self, src: int, timeout_s: float) -> Optional[bytes]:
        """One encoded frame from ``src``, or None if none within timeout.

        Raises :class:`PeerGone` (with a generic tag) if the peer's
        endpoint is closed.
        """
        raise NotImplementedError

    def close(self) -> None:
        self._closed = True

    # -- public API ----------------------------------------------------------

    def send(self, dst: int, kind: str, op: int, round_: int,
             payload: Any) -> None:
        """Send one tagged payload to shard ``dst``."""
        if dst == self.rank:
            raise TransportError("self-sends are not routed; loop locally")
        seq = self._send_seq.get(dst, 0)
        self._send_seq[dst] = seq + 1
        frame = Frame(kind=kind, op=op, round=round_, src=self.rank,
                      dst=dst, seq=seq, payload=payload)
        self._send_bytes(dst, encode_frame(frame))
        self.frames_sent += 1

    def recv(self, src: int, kind: str, op: int, round_: int,
             timeout_s: Optional[float] = None) -> Any:
        """Payload of the frame tagged ``(kind, op, round_)`` from ``src``.

        Frames from ``src`` bearing other tags are buffered for later
        ``recv`` calls (out-of-order delivery is resolved here).  Raises
        :class:`CollectiveTimeout` when the deadline expires and
        :class:`PeerGone` when the peer's endpoint is closed.
        """
        tag = (kind, op, round_)
        deadline = time.monotonic() + (timeout_s if timeout_s is not None
                                       else self.deadline_s)
        poll_s = 0.0005
        while True:
            bucket = self._pending.get((src, tag))
            if bucket:
                payload = bucket.pop(0)
                if not bucket:
                    # Drained buckets are deleted, not kept as empty lists:
                    # a long-lived transport sees an unbounded stream of
                    # distinct tags, one short-lived bucket each.
                    del self._pending[(src, tag)]
                return payload
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise CollectiveTimeout(kind, op, msg=src, attempts=1)
            try:
                raw = self._poll_bytes(src, min(poll_s, remaining))
            except PeerGone:
                raise PeerGone(kind, op, src) from None
            if raw is None:
                # Geometric backoff between polls (bounded by the retry
                # config's schedule shape); the deadline stays hard.
                poll_s = min(poll_s * self.retry.factor, 0.05)
                continue
            self._accept(src, raw, expected_tag=tag)

    def _accept(self, src: int, raw: bytes,
                expected_tag: Tuple[str, int, int]) -> None:
        try:
            frame = decode_frame(raw)
        except FrameError as exc:
            raise TransportError(
                f"shard {self.rank}: corrupt frame from shard {src}: {exc}"
            ) from exc
        if frame.dst != self.rank:
            raise TransportError(
                f"misrouted frame: dst={frame.dst} arrived at {self.rank}")
        if not self._note_seq(frame.src, frame.seq):
            self.duplicates_dropped += 1
            return
        self.frames_received += 1
        if frame.tag() != expected_tag:
            self.out_of_order += 1
        self._pending.setdefault((frame.src, frame.tag()), []) \
            .append(frame.payload)

    def _note_seq(self, src: int, seq: int) -> bool:
        """Record one arrival; False if ``seq`` was already accepted.

        Contiguous watermark plus out-of-order window: seqs below the
        per-peer floor are duplicates by definition, seqs above it live in
        a small set until the floor catches up and absorbs them.
        """
        floor = self._recv_floor.get(src, 0)
        if seq < floor:
            return False
        ahead = self._recv_ahead.setdefault(src, set())
        if seq in ahead:
            return False
        if seq == floor:
            floor += 1
            while floor in ahead:
                ahead.discard(floor)
                floor += 1
            self._recv_floor[src] = floor
        else:
            ahead.add(seq)
        return True


# ---------------------------------------------------------------------------
# Loopback (in-process) fabric
# ---------------------------------------------------------------------------

class _LoopbackTransport(Transport):
    def __init__(self, fabric: "LoopbackFabric", rank: int):
        super().__init__(rank, fabric.num_shards,
                         deadline_s=fabric.deadline_s, retry=fabric.retry)
        self._fabric = fabric

    def _send_bytes(self, dst: int, data: bytes) -> None:
        self._fabric.deliver(self.rank, dst, data)

    def _poll_bytes(self, src: int, timeout_s: float) -> Optional[bytes]:
        q = self._fabric.channel(src, self.rank)
        try:
            return q.get(timeout=timeout_s)
        except queue.Empty:
            if self._fabric.is_closed(src):
                raise PeerGone("recv", 0, src) from None
            return None


class LoopbackFabric:
    """In-process mesh of queues — the test stand-in for real IPC.

    The fabric still runs every payload through the full frame
    encode/decode path, so serialization bugs show up here too.  An
    optional ``scramble(src, dst, pending) -> list`` hook reorders (or
    duplicates) queued deliveries, modelling an adversarial network.
    """

    def __init__(self, num_shards: int,
                 deadline_s: float = DEFAULT_DEADLINE_S,
                 retry: Optional[RetryConfig] = None,
                 scramble=None):
        self.num_shards = num_shards
        self.deadline_s = deadline_s
        self.retry = retry
        self.scramble = scramble
        self._channels: Dict[Tuple[int, int], "queue.Queue[bytes]"] = {
            (s, d): queue.Queue()
            for s in range(num_shards) for d in range(num_shards) if s != d
        }
        self._closed: Set[int] = set()

    def transport(self, rank: int) -> Transport:
        return _LoopbackTransport(self, rank)

    def transports(self) -> List[Transport]:
        return [self.transport(r) for r in range(self.num_shards)]

    def channel(self, src: int, dst: int) -> "queue.Queue[bytes]":
        return self._channels[(src, dst)]

    def deliver(self, src: int, dst: int, data: bytes) -> None:
        q = self._channels[(src, dst)]
        if self.scramble is None:
            q.put(data)
            return
        # Drain, let the hook reorder/duplicate, refill.  Only used by
        # single-threaded tests, so the drain/refill window is benign.
        # The hook must see the backlog in FIFO arrival order (queue drains
        # oldest-first) with the new frame last, so an identity scramble is
        # a true no-op on delivery order.
        pending: List[bytes] = []
        while True:
            try:
                pending.append(q.get_nowait())
            except queue.Empty:
                break
        pending.append(data)
        for item in self.scramble(src, dst, pending):
            q.put(item)

    def mark_closed(self, rank: int) -> None:
        """Declare ``rank`` dead: peers polling it get :class:`PeerGone`."""
        self._closed.add(rank)

    def is_closed(self, rank: int) -> bool:
        return rank in self._closed


# ---------------------------------------------------------------------------
# Multiprocessing pipe fabric
# ---------------------------------------------------------------------------

class _PipeTransport(Transport):
    """One rank's endpoints of the full pipe mesh."""

    def __init__(self, rank: int, num_shards: int, conns: Dict[int, Any],
                 deadline_s: float = DEFAULT_DEADLINE_S,
                 retry: Optional[RetryConfig] = None):
        super().__init__(rank, num_shards, deadline_s=deadline_s,
                         retry=retry)
        self._conns = conns            # peer rank -> Connection

    def _send_bytes(self, dst: int, data: bytes) -> None:
        try:
            self._conns[dst].send_bytes(data)
        except (BrokenPipeError, OSError):
            raise PeerGone("send", 0, dst) from None

    def _poll_bytes(self, src: int, timeout_s: float) -> Optional[bytes]:
        conn = self._conns[src]
        try:
            if not conn.poll(timeout_s):
                return None
            return conn.recv_bytes()
        except (EOFError, BrokenPipeError, OSError):
            raise PeerGone("recv", 0, src) from None

    def close(self) -> None:
        super().close()
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass


class PipeFabric:
    """Full mesh of duplex ``multiprocessing.Pipe`` connections.

    Built in the parent before forking; :meth:`transport` is then called
    once per rank (in that rank's process) to claim its endpoints.  The
    counterpart endpoints are closed lazily by each process on claim, so a
    crashed worker's peers observe EOF rather than blocking forever.
    """

    def __init__(self, num_shards: int,
                 deadline_s: float = DEFAULT_DEADLINE_S,
                 retry: Optional[RetryConfig] = None):
        import multiprocessing as mp
        self.num_shards = num_shards
        self.deadline_s = deadline_s
        self.retry = retry
        # _ends[(a, b)] = (end held by a, end held by b), for a < b.
        self._ends: Dict[Tuple[int, int], Tuple[Any, Any]] = {}
        for a in range(num_shards):
            for b in range(a + 1, num_shards):
                self._ends[(a, b)] = mp.Pipe(duplex=True)

    def transport(self, rank: int) -> Transport:
        conns: Dict[int, Any] = {}
        for (a, b), (end_a, end_b) in self._ends.items():
            if rank == a:
                conns[b] = end_a
            elif rank == b:
                conns[a] = end_b
        return _PipeTransport(rank, self.num_shards, conns,
                              deadline_s=self.deadline_s, retry=self.retry)

    def claim_conns(self, rank: int) -> Dict[int, Any]:
        """``rank``'s endpoint set, as a picklable peer→Connection map.

        The re-endpointing half of live rejoin: the supervisor builds a
        *fresh* fabric, sends each surviving worker its claimed endpoints
        over the existing control pipe (``multiprocessing`` pickles
        ``Connection`` objects by duplicating the descriptor at pickle
        time, so the parent may close its copies afterwards), and the
        worker rebuilds its transport via :func:`claimed_transport`.
        """
        conns: Dict[int, Any] = {}
        for (a, b), (end_a, end_b) in self._ends.items():
            if rank == a:
                conns[b] = end_a
            elif rank == b:
                conns[a] = end_b
        return conns

    def close_other_ends(self, rank: int) -> None:
        """In a worker: drop every endpoint not belonging to ``rank``.

        Keeping foreign write-ends open would mask peer crashes (the pipe
        never reports EOF while any copy of the write end survives).
        """
        for (a, b), (end_a, end_b) in self._ends.items():
            for owner, end in ((a, end_a), (b, end_b)):
                if owner != rank:
                    try:
                        end.close()
                    except OSError:
                        pass

    def close_all(self) -> None:
        for end_a, end_b in self._ends.values():
            for end in (end_a, end_b):
                try:
                    end.close()
                except OSError:
                    pass


def claimed_transport(rank: int, num_shards: int, conns: Dict[int, Any],
                      deadline_s: float = DEFAULT_DEADLINE_S,
                      retry: Optional[RetryConfig] = None) -> Transport:
    """A pipe transport over endpoints claimed from another process.

    The worker-side counterpart of :meth:`PipeFabric.claim_conns`: a
    surviving gang member receives a replacement mesh's endpoints over
    its control channel and wires itself into the new fabric without
    restarting.
    """
    return _PipeTransport(rank, num_shards, dict(conns),
                          deadline_s=deadline_s, retry=retry)
