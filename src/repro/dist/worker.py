"""One shard replica: the per-process entrypoint of the multiprocess backend.

A :class:`ShardWorker` owns everything one replica of the control program
needs — a :class:`~repro.core.pipeline.DCRPipeline`, a
:class:`~repro.dist.collectives.DistCollectives` over its transport, and a
:class:`~repro.dist.monitor.DistDeterminismMonitor` — and replays the
shared :class:`~repro.dist.programs.ProgramSpec` exactly the way dynamic
control replication prescribes: every shard re-derives and analyzes the
*entire* operation stream, hashing each control decision into the
determinism monitor, and executes one wire barrier per runtime-inserted
cross-shard fence.

The replay helpers (:func:`op_signature`, :func:`replay`) are shared with
the serial in-process reference in :mod:`repro.dist.runner`, so both
backends hash byte-identical call streams by construction — the whole
point of the conformance property.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, List, Optional

from ..core.operation import Operation
from ..core.pipeline import DCRPipeline, analysis_digest, fence_sequence
from ..faults.injector import FaultInjector
from ..obs.events import CAT_SERVICE, EV_JOB_DISPATCH
from ..obs.profiler import Profiler
from .collectives import DistCollectives
from .monitor import DistDeterminismMonitor
from .programs import ProgramSpec, build_field, build_operations
from .report import ShardReport
from .transport import Transport

__all__ = ["ShardWorker", "ServiceShardWorker", "op_signature", "replay"]


def op_signature(op: Operation) -> tuple:
    """Canonical, process-independent description of one operation.

    Region/partition objects are passed through for the hasher to intern
    by first-use order; everything else is plain data (sharding *ids*, not
    objects, mirroring how the coarse stage reasons symbolically).
    """
    return (
        op.kind,
        op.name,
        -1 if op.launch_domain is None else len(op.launch_domain),
        -1 if op.sharding is None else op.sharding.sid,
        op.owner_shard,
        # Fields are passed as *objects* (sorted by fid, i.e. creation
        # order, which every replica shares) so the hasher interns them by
        # first use — raw fids are process-global counters and differ.
        tuple((req.upper,
               tuple(sorted(req.fields, key=lambda f: f.fid)),
               req.privilege.kind.value,
               req.privilege.redop or "",
               req.projection.pid if req.projection is not None else -1)
              for req in op.coarse_reqs),
    )


def replay(pipeline: DCRPipeline, ops: List[Operation],
           record: Callable[..., Any],
           on_fence: Callable[[], Any]) -> int:
    """Drive the pipeline over ``ops``, the same way on every backend.

    For each operation: hash its signature into ``record`` (the control
    determinism stream), analyze it, then run ``on_fence`` once per fence
    the coarse stage inserted — over the wire that is a real barrier
    collective, the cross-shard fence of paper §2.3.  Returns the number
    of fences executed.
    """
    fences = 0
    for op in ops:
        record("analyze", *op_signature(op))
        rec = pipeline.analyze(op)
        for _ in rec.fences:
            on_fence()
            fences += 1
    return fences


class ShardWorker:
    """Replays one replica of the program over a transport."""

    def __init__(self, transport: Transport, spec: ProgramSpec,
                 backend: str, batch: int = 64,
                 profiler: Optional[Profiler] = None,
                 profile_dir: Optional[str] = None,
                 auto_trace: bool = False, coalesce: int = 1):
        self.transport = transport
        self.rank = transport.rank
        self.num_shards = transport.num_shards
        self.spec = spec
        self.backend = backend
        self.profile_dir = profile_dir
        self.profiler = profiler if profiler is not None else Profiler(
            enabled=profile_dir is not None)
        self.collectives = DistCollectives(transport,
                                           profiler=self.profiler)
        self.monitor = DistDeterminismMonitor(
            self.collectives, batch=batch, profiler=self.profiler,
            coalesce=coalesce)
        self.pipeline = DCRPipeline(self.num_shards,
                                    auto_trace=auto_trace,
                                    profiler=self.profiler)

    def run(self) -> ShardReport:
        """Replay the program; returns this shard's conformance report."""
        t0 = time.perf_counter()
        field = build_field(self.spec)
        ops = build_operations(self.spec, self.num_shards, field)
        # The program description itself is a control decision: hash it
        # first so replicas expanding different specs diverge on call 0.
        self.monitor.record("program", *self.spec.signature())
        replay(self.pipeline, ops, self.monitor.record,
               self.collectives.barrier)
        self.monitor.flush()
        profile_path = self._save_profile()
        coarse = self.pipeline.coarse_result
        fine = self.pipeline.fine_result
        stats = self.collectives.stats
        return ShardReport(
            shard=self.rank,
            num_shards=self.num_shards,
            backend=self.backend,
            graph_digest=analysis_digest(coarse, fine),
            fence_sequence=tuple(fence_sequence(coarse)),
            determinism_digest=self.monitor.stream_digest(),
            call_count=len(self.monitor.hasher.calls),
            checks=self.monitor.checks_performed,
            ops_analyzed=coarse.ops_analyzed,
            fences=len(coarse.fences),
            fences_elided=coarse.fences_elided,
            points=fine.points_per_shard.get(self.rank, 0),
            collectives=dict(stats.by_kind),
            coll_rounds=stats.rounds,
            coll_messages=stats.messages,
            frames_sent=self.transport.frames_sent,
            frames_received=self.transport.frames_received,
            duplicates_dropped=self.transport.duplicates_dropped,
            out_of_order=self.transport.out_of_order,
            wall_s=time.perf_counter() - t0,
            pid=os.getpid(),
            profile_path=profile_path,
        )

    def _save_profile(self) -> str:
        if self.profile_dir is None or not self.profiler.enabled:
            return ""
        os.makedirs(self.profile_dir, exist_ok=True)
        path = os.path.join(self.profile_dir,
                            f"shard{self.rank}.profile.json")
        self.profiler.save(path)
        return path


class ServiceShardWorker:
    """Session-serving shard replica: one transport, many programs.

    Where :class:`ShardWorker` replays exactly one program and exits, a
    service worker keeps its transport and :class:`DistCollectives` alive
    across an open-ended stream of jobs (the collective operation ordinal
    keeps climbing, so consecutive jobs can never collide on a ``(kind,
    op, round)`` wire tag) while giving every job a **fresh**
    :class:`DCRPipeline` and :class:`DistDeterminismMonitor` — per-job
    analysis state is fully reset, so a program's conformance artifacts
    are identical whether it ran first or thousandth on the gang.
    """

    def __init__(self, transport: Transport, backend: str, batch: int = 64,
                 profiler: Optional[Profiler] = None,
                 profile_dir: Optional[str] = None, coalesce: int = 1):
        self.transport = transport
        self.rank = transport.rank
        self.num_shards = transport.num_shards
        self.backend = backend
        self.batch = batch
        self.coalesce = coalesce
        self.profile_dir = profile_dir
        self.profiler = profiler if profiler is not None else Profiler(
            enabled=profile_dir is not None)
        self.collectives = DistCollectives(transport,
                                           profiler=self.profiler)
        self.jobs_run = 0

    def rebind(self, transport: Transport) -> None:
        """Wire this replica into a replacement fabric (live rejoin).

        After a peer dies mid-collective, the survivors' transports are
        poisoned state: aborted ranks stopped at *different* collective
        ordinals, so their ``(kind, op, round)`` wire tags would never
        match again.  Rejoin therefore replaces the whole fabric and
        every rank — survivor and replacement alike — rebinds to a fresh
        transport with a fresh :class:`DistCollectives`, resetting the
        operation ordinal to zero on all ranks simultaneously.
        """
        try:
            self.transport.close()
        except Exception:  # noqa: BLE001 - old fabric may be half dead
            pass
        self.transport = transport
        self.collectives = DistCollectives(transport,
                                           profiler=self.profiler)

    def run_job(self, spec: ProgramSpec, program_id: str = "",
                session: str = "", capture_digests: bool = False,
                injector: Optional[FaultInjector] = None) -> ShardReport:
        """Analyze one program on the persistent gang; report conformance.

        ``capture_digests`` additionally returns the per-call determinism
        digests (the raw material of an analysis template).  ``injector``
        scopes injected faults to this job only — the shared plan fires on
        whichever rank it names, the other replicas run clean.
        """
        t0 = time.perf_counter()
        prof = self.profiler
        span0 = prof.now_us() if prof.enabled else 0.0
        monitor = DistDeterminismMonitor(
            self.collectives, batch=self.batch, profiler=prof,
            injector=injector, coalesce=self.coalesce)
        pipeline = DCRPipeline(self.num_shards, profiler=prof)
        field = build_field(spec)
        ops = build_operations(spec, self.num_shards, field)
        monitor.record("program", *spec.signature())
        replay(pipeline, ops, monitor.record, self.collectives.barrier)
        monitor.flush()
        self.jobs_run += 1
        if prof.enabled:
            prof.complete(self.rank, CAT_SERVICE, EV_JOB_DISPATCH, span0,
                          prof.now_us() - span0, program_id=program_id,
                          session=session, job=self.jobs_run)
        coarse = pipeline.coarse_result
        fine = pipeline.fine_result
        stats = self.collectives.stats
        return ShardReport(
            shard=self.rank,
            num_shards=self.num_shards,
            backend=self.backend,
            graph_digest=analysis_digest(coarse, fine),
            fence_sequence=tuple(fence_sequence(coarse)),
            determinism_digest=monitor.stream_digest(),
            call_count=len(monitor.hasher.calls),
            checks=monitor.checks_performed,
            ops_analyzed=coarse.ops_analyzed,
            fences=len(coarse.fences),
            fences_elided=coarse.fences_elided,
            points=fine.points_per_shard.get(self.rank, 0),
            collectives=dict(stats.by_kind),
            coll_rounds=stats.rounds,
            coll_messages=stats.messages,
            frames_sent=self.transport.frames_sent,
            frames_received=self.transport.frames_received,
            duplicates_dropped=self.transport.duplicates_dropped,
            out_of_order=self.transport.out_of_order,
            wall_s=time.perf_counter() - t0,
            pid=os.getpid(),
            profile_path="",
            program_id=program_id,
            session=session,
            call_digests=tuple(monitor.hasher.calls)
            if capture_digests else (),
        )

    def save_profile(self) -> str:
        """Persist the whole service lifetime's profile (at shutdown)."""
        if self.profile_dir is None or not self.profiler.enabled:
            return ""
        os.makedirs(self.profile_dir, exist_ok=True)
        path = os.path.join(self.profile_dir,
                            f"shard{self.rank}.profile.json")
        self.profiler.save(path)
        return path
