"""Rank-local collectives over a :class:`~repro.dist.transport.Transport`.

:class:`DistCollectives` is the multiprocess counterpart of
:class:`repro.core.collectives.Collectives`.  The in-process class holds a
global view (``values`` indexed by shard, results back the same way); here
each shard owns one instance and contributes only its *own* value — the
schedules, combine orders, and results are identical:

* **broadcast / reduce** — binomial tree (pairs at distance 1, 2, 4, ...),
  with the in-process implementation's deterministic combine order
  ``acc[i] = op(acc[i], acc[i + dist])``;
* **all-gather / all-reduce** — recursive-doubling butterfly over the
  largest power-of-two block, non-power-of-2 extras folding in before and
  receiving the result after (the same two extra hops the in-process
  accounting charges), with the lower-index-first combine order;
* **barrier** — an all-gather with no payload (paper §4.2).

``stats`` records the *canonical schedule* — the same rounds/messages the
in-process class and the simulator's cost model charge — so per-shard
reports are byte-comparable across backends.  The true wire traffic
(which differs for non-power-of-2 shard counts, where the real fold
hops are cheaper than the charged schedule) is visible on the transport's
``frames_sent``/``frames_received`` counters.

Every receive inherits the transport's hard deadline: a lost peer raises
:class:`~repro.faults.injector.CollectiveTimeout` (or its
:class:`~repro.dist.transport.PeerGone` subclass), never hangs.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TypeVar

from ..core.collectives import CollectiveStats, _log2_rounds
from ..obs.events import CAT_COLLECTIVE
from ..obs.profiler import Profiler, get_profiler
from .transport import Transport

__all__ = ["DistCollectives"]

T = TypeVar("T")


class DistCollectives:
    """The deterministic collective schedules, executed over real IPC."""

    def __init__(self, transport: Transport,
                 profiler: Optional[Profiler] = None):
        self.transport = transport
        self.rank = transport.rank
        self.num_shards = transport.num_shards
        self.profiler = profiler if profiler is not None else get_profiler()
        self.stats = CollectiveStats()
        self._ops = 0

    # -- plumbing ------------------------------------------------------------

    def _begin(self) -> int:
        op = self._ops
        self._ops += 1
        return op

    def _finish(self, kind: str, op: int, t0: float,
                rounds: int, messages: int) -> None:
        """Record the canonical schedule (see module docstring)."""
        self.stats.record(kind, rounds, messages)
        prof = self.profiler
        if prof.enabled:
            prof.complete(self.rank, CAT_COLLECTIVE, f"{kind}.op{op}",
                          t0, max(prof.now_us() - t0, 0.0), kind=kind,
                          rounds=rounds, msgs_total=messages)
            prof.count("collectives.dist.ops")

    def _check_root(self, kind: str, root: int) -> None:
        if not 0 <= root < self.num_shards:
            raise ValueError(
                f"{kind}: root shard {root} outside the valid range "
                f"[0, {self.num_shards}) for {self.num_shards} shard(s)")

    # -- broadcast / reduce (binomial tree) ----------------------------------

    def broadcast(self, value: T, root: int = 0) -> T:
        """Root's value delivered to every shard; binomial tree."""
        self._check_root("broadcast", root)
        n = self.num_shards
        prof = self.profiler
        t0 = prof.now_us() if prof.enabled else 0.0
        op = self._begin()
        rel = (self.rank - root) % n
        dist, rnd = 1, 0
        while dist < n:
            if rel < dist:
                peer_rel = rel + dist
                if peer_rel < n:
                    self.transport.send((peer_rel + root) % n,
                                        "broadcast", op, rnd, value)
            elif rel < 2 * dist:
                value = self.transport.recv((rel - dist + root) % n,
                                            "broadcast", op, rnd)
            dist *= 2
            rnd += 1
        self._finish("broadcast", op, t0, _log2_rounds(n), max(0, n - 1))
        return value

    def reduce(self, value: T, op: Callable[[T, T], T],
               root: int = 0) -> Optional[T]:
        """Combine per-shard values toward ``root`` along a binomial tree.

        The combine order is the in-process one (``acc[i] = op(acc[i],
        acc[i + dist])``, distances doubling), so merely-associative ops
        reduce to bit-identical results.  Returns the reduction on
        ``root`` and ``None`` elsewhere.
        """
        self._check_root("reduce", root)
        n = self.num_shards
        prof = self.profiler
        t0 = prof.now_us() if prof.enabled else 0.0
        ordinal = self._begin()
        acc = value
        dist, rnd = 1, 0
        holds = True
        while dist < n:
            if holds:
                if self.rank % (2 * dist) == 0:
                    peer = self.rank + dist
                    if peer < n:
                        other = self.transport.recv(peer, "reduce",
                                                    ordinal, rnd)
                        acc = op(acc, other)
                else:
                    self.transport.send(self.rank - dist, "reduce",
                                        ordinal, rnd, acc)
                    holds = False
            dist *= 2
            rnd += 1
        rounds, msgs = _log2_rounds(n), max(0, n - 1)
        if root != 0:
            # The in-process schedule ends at shard 0; relay to the
            # requested root (one extra, honestly-charged hop).
            if self.rank == 0:
                self.transport.send(root, "reduce", ordinal, rnd, acc)
                holds = False
            elif self.rank == root:
                acc = self.transport.recv(0, "reduce", ordinal, rnd)
                holds = True
            rounds += 1
            msgs += 1
        self._finish("reduce", ordinal, t0, rounds, msgs)
        return acc if (self.rank == root and holds) else None

    # -- all-gather / all-reduce (butterfly) ---------------------------------

    def _butterfly_gather(self, kind: str, ordinal: int, value: Any) -> list:
        """Recursive-doubling gather of every shard's value, in shard order.

        Returns the full per-shard list on every rank.  Non-power-of-2
        extras fold into their partner before the butterfly and receive
        the assembled list after it.
        """
        n = self.num_shards
        if n == 1:
            return [value]
        pow2 = 1 << (n.bit_length() - 1)
        extra = n - pow2
        held = {self.rank: value}
        rnd = 0
        if extra:
            if self.rank >= pow2:
                self.transport.send(self.rank - pow2, kind, ordinal, rnd,
                                    value)
            elif self.rank < extra:
                held[self.rank + pow2] = self.transport.recv(
                    self.rank + pow2, kind, ordinal, rnd)
            rnd += 1
        if self.rank < pow2:
            dist = 1
            while dist < pow2:
                partner = self.rank ^ dist
                self.transport.send(partner, kind, ordinal, rnd,
                                    sorted(held.items()))
                for shard, val in self.transport.recv(partner, kind,
                                                      ordinal, rnd):
                    held[shard] = val
                dist *= 2
                rnd += 1
        else:
            rnd += _log2_rounds(pow2)
        if extra:
            if self.rank < extra:
                full = [held[s] for s in range(n)]
                self.transport.send(self.rank + pow2, kind, ordinal, rnd,
                                    full)
                return full
            if self.rank >= pow2:
                return list(self.transport.recv(self.rank - pow2, kind,
                                                ordinal, rnd))
        return [held[s] for s in range(n)]

    def allgather(self, value: T) -> List[T]:
        """Every shard receives every shard's value, in shard order."""
        n = self.num_shards
        prof = self.profiler
        t0 = prof.now_us() if prof.enabled else 0.0
        ordinal = self._begin()
        result = self._butterfly_gather("allgather", ordinal, value)
        base = _log2_rounds(n)
        self._finish("allgather", ordinal, t0, base, base * n)
        return result

    def allreduce(self, value: T, op: Callable[[T, T], T]) -> T:
        """Every shard receives the reduction of all values (butterfly).

        Mirrors the in-process schedule exactly: extras fold into the
        power-of-two block first and receive the result at the end; each
        butterfly round exchanges with the partner at distance ``2^r`` and
        both sides combine lower-index-first, so merely-associative ops
        still agree bit-for-bit across shards.
        """
        n = self.num_shards
        prof = self.profiler
        t0 = prof.now_us() if prof.enabled else 0.0
        ordinal = self._begin()
        acc = value
        pow2 = 1 << (n.bit_length() - 1)
        extra = n - pow2
        rounds = _log2_rounds(pow2)
        msgs = rounds * pow2
        rnd = 0
        if extra:
            rounds += 2
            msgs += 2 * extra
            if self.rank >= pow2:
                self.transport.send(self.rank - pow2, "allreduce", ordinal,
                                    rnd, acc)
            elif self.rank < extra:
                folded = self.transport.recv(self.rank + pow2, "allreduce",
                                             ordinal, rnd)
                acc = op(acc, folded)
            rnd += 1
        if self.rank < pow2:
            dist = 1
            while dist < pow2:
                partner = self.rank ^ dist
                self.transport.send(partner, "allreduce", ordinal, rnd, acc)
                other = self.transport.recv(partner, "allreduce", ordinal,
                                            rnd)
                lo, hi = ((acc, other) if self.rank < partner
                          else (other, acc))
                acc = op(lo, hi)
                dist *= 2
                rnd += 1
        else:
            rnd += _log2_rounds(pow2)
        if extra:
            if self.rank < extra:
                self.transport.send(self.rank + pow2, "allreduce", ordinal,
                                    rnd, acc)
            elif self.rank >= pow2:
                acc = self.transport.recv(self.rank - pow2, "allreduce",
                                          ordinal, rnd)
        self._finish("allreduce", ordinal, t0, rounds, msgs)
        return acc

    def barrier(self) -> None:
        """Synchronize all shards; an all-gather with no payload (§4.2)."""
        n = self.num_shards
        prof = self.profiler
        t0 = prof.now_us() if prof.enabled else 0.0
        ordinal = self._begin()
        self._butterfly_gather("barrier", ordinal, None)
        base = _log2_rounds(n)
        self._finish("barrier", ordinal, t0, base, base * n)

    def fence_rounds(self) -> int:
        """Latency (in hops) of one cross-shard fence collective."""
        return _log2_rounds(self.num_shards)
