"""Serializable program specs expanded identically in every process.

The multiprocess backend cannot ship live :class:`~repro.core.Operation`
objects between processes (they hold region trees, closures, and
process-global uids), so conformance runs describe programs as plain data:
a :class:`ProgramSpec` is a tuple of :class:`OpSpec` codes over one
two-field tiled region.  Every shard process — and the in-process
reference run — calls :func:`build_operations` on the *same spec* and gets
a structurally identical operation stream, which is exactly the premise of
dynamic control replication: each replica re-derives the program rather
than receiving it.

Op codes (mirroring the generators in
``tests/integration/test_random_programs.py``):

========  =====================================================
``bump``   group launch, read-write field ``x`` over owned tiles
``scale``  group launch, read-write field ``y`` over owned tiles
``blend``  group launch, rw ``y`` owned + read-only ``x`` ghosts
``readx``  group launch, read-only ``x`` over owned tiles
``fill``   single task, write-discard ``x``+``y`` on the root
``spot``   single task, read-write ``x``, owner ``value % shards``
========  =====================================================

``blend`` is the stencil step: its ghost read forces the cross-shard
dependencies (and fences, when a ``fill`` precedes it) that make the
conformance digests non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core import BLOCKED, CYCLIC, HASHED, Operation, ShardingFunction
from ..oracle import READ_ONLY, READ_WRITE, WRITE_DISCARD
from ..apps.common import TiledField, group_op, single_op

__all__ = ["OpSpec", "ProgramSpec", "SHARDINGS", "OP_CODES",
           "build_field", "build_operations", "stencil_program"]

#: Sharding functions a spec may name (stable ids in core.sharding).
SHARDINGS: Dict[str, ShardingFunction] = {
    "blocked": BLOCKED,
    "cyclic": CYCLIC,
    "hashed": HASHED,
}

OP_CODES: Tuple[str, ...] = ("bump", "scale", "blend", "readx", "fill",
                             "spot")


@dataclass(frozen=True)
class OpSpec:
    """One operation: an op ``code`` plus a small integer parameter."""

    code: str
    value: int = 0

    def signature(self) -> Tuple[str, int]:
        """Canonical form, both for wire payloads and call hashing."""
        return (self.code, self.value)


@dataclass(frozen=True)
class ProgramSpec:
    """A complete program: one tiled region and an op stream."""

    tiles: int
    sharding: str = "blocked"
    ops: Tuple[OpSpec, ...] = ()
    cells_per_tile: int = 4

    def __post_init__(self) -> None:
        if self.tiles < 1:
            raise ValueError(f"need at least one tile, got {self.tiles}")
        if self.sharding not in SHARDINGS:
            raise ValueError(
                f"unknown sharding {self.sharding!r}; "
                f"expected one of {sorted(SHARDINGS)}")
        for op in self.ops:
            if op.code not in OP_CODES:
                raise ValueError(f"unknown op code {op.code!r}; "
                                 f"expected one of {OP_CODES}")

    def signature(self) -> tuple:
        """Canonical description — what the workers hash and exchange."""
        return (self.tiles, self.cells_per_tile, self.sharding,
                tuple(op.signature() for op in self.ops))

    # -- wire form (plain frames payload, no pickling needed) ---------------

    def to_payload(self) -> dict:
        return {"tiles": self.tiles, "cells_per_tile": self.cells_per_tile,
                "sharding": self.sharding,
                "ops": [[op.code, op.value] for op in self.ops]}

    @classmethod
    def from_payload(cls, payload: dict) -> "ProgramSpec":
        return cls(tiles=int(payload["tiles"]),
                   cells_per_tile=int(payload["cells_per_tile"]),
                   sharding=str(payload["sharding"]),
                   ops=tuple(OpSpec(str(c), int(v))
                             for c, v in payload["ops"]))


def build_field(spec: ProgramSpec) -> TiledField:
    """The spec's region tree: fields ``x``/``y``, tiles, 1-cell ghosts."""
    return TiledField.build("dist", [("x", float), ("y", float)],
                            num_tiles=spec.tiles,
                            cells_per_tile=spec.cells_per_tile,
                            with_ghost=True)


def build_operations(spec: ProgramSpec, num_shards: int,
                     field: TiledField = None) -> List[Operation]:
    """Expand a spec into the concrete operation stream, deterministically.

    Every process calling this with an equal ``(spec, num_shards)`` pair
    produces operations with identical structure (kinds, requirements,
    launch domains, sharding ids, owner shards, names) — uids and object
    identities differ, which is why all cross-process comparisons go
    through interned digests.
    """
    if num_shards < 1:
        raise ValueError(f"need at least one shard, got {num_shards}")
    f = field if field is not None else build_field(spec)
    sharding = SHARDINGS[spec.sharding]
    x, y = f.fieldset("x"), f.fieldset("y")
    ops: List[Operation] = []
    for i, o in enumerate(spec.ops):
        name = f"{o.code}{i}"
        if o.code == "bump":
            ops.append(group_op(name, spec.tiles,
                                [(f.tiles, x, READ_WRITE)], sharding))
        elif o.code == "scale":
            ops.append(group_op(name, spec.tiles,
                                [(f.tiles, y, READ_WRITE)], sharding))
        elif o.code == "blend":
            ops.append(group_op(name, spec.tiles,
                                [(f.tiles, y, READ_WRITE),
                                 (f.ghost, x, READ_ONLY)], sharding))
        elif o.code == "readx":
            ops.append(group_op(name, spec.tiles,
                                [(f.tiles, x, READ_ONLY)], sharding))
        elif o.code == "fill":
            ops.append(single_op(name, [(f.region, x | y, WRITE_DISCARD)]))
        elif o.code == "spot":
            ops.append(single_op(name, [(f.region, x, READ_WRITE)],
                                 owner_shard=o.value % num_shards))
        else:  # pragma: no cover - __post_init__ rejects unknown codes
            raise ValueError(f"unknown op code {o.code!r}")
    return ops


def stencil_program(tiles: int, steps: int = 4,
                    sharding: str = "blocked") -> ProgramSpec:
    """The canonical demo program: fill, then ``steps`` stencil sweeps.

    Each sweep is a ghost-reading ``blend`` (cross-shard halo exchange)
    followed by an owned-only ``bump``, bracketed by a ``fill`` epoch that
    forces a fence — the shape the CLI smoke run and docs use.
    """
    ops: List[OpSpec] = [OpSpec("fill")]
    for _ in range(steps):
        ops.append(OpSpec("blend"))
        ops.append(OpSpec("bump"))
    ops.append(OpSpec("readx"))
    return ProgramSpec(tiles=tiles, sharding=sharding, ops=tuple(ops))
