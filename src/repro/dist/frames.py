"""Wire format for cross-shard control messages.

Every message that crosses a shard boundary travels as a *frame*: a
length-prefixed, type-tagged binary blob (msgpack-style — a compact
self-describing encoding implemented here so the backend has zero
third-party dependencies).  A frame carries

* routing/tag metadata — collective ``kind``, operation ordinal ``op``,
  schedule ``round``, source/destination shard, and a per-peer sequence
  number used to detect reordering and loss, and
* one ``payload`` value: anything the control plane exchanges — 128-bit
  determinism digests (arbitrary-precision ints), fence keys, trace
  metadata dicts, future values (including numpy scalars/arrays).

The encoding is canonical: equal values encode to identical bytes on every
shard, which the conformance tests rely on (a digest that round-trips
through the wire must compare equal to the in-process one, bit for bit).

Layout of one frame on the wire::

    +-------+----------+-----------------------------+
    | magic | length   | body (``length`` bytes)     |
    | 2 B   | u32 BE   | packed header + payload     |
    +-------+----------+-----------------------------+

``encode_frame``/``decode_frame`` handle a single frame;
:class:`FrameDecoder` incrementally splits a byte stream back into frames
(for socket-style transports that deliver arbitrary chunks).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

__all__ = ["Frame", "FrameError", "pack", "unpack", "encode_frame",
           "encode_frame_parts", "decode_frame", "decode_frame_view",
           "FrameDecoder", "MAGIC", "ZERO_COPY_MIN_BYTES"]

MAGIC = b"\xd5\x01"          # frame marker + wire-format version 1
_MAX_FRAME = 64 * 1024 * 1024  # sanity bound on one frame's body

#: ndarray payloads at least this large decode as zero-copy views when the
#: transport supports it (shm rings); smaller ones are copied out so the
#: ring slot can be reclaimed immediately.
ZERO_COPY_MIN_BYTES = 4096


class FrameError(ValueError):
    """Malformed bytes on the wire (bad magic, truncation, unknown tag)."""


# ---------------------------------------------------------------------------
# Value encoding (msgpack-style type-tagged canonical binary)
# ---------------------------------------------------------------------------

_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT64 = b"i"      # fits in signed 64-bit
_T_BIGINT = b"I"     # arbitrary precision (e.g. 128-bit digests), signed
_T_FLOAT = b"f"      # IEEE-754 double
_T_STR = b"s"
_T_BYTES = b"b"
_T_LIST = b"l"
_T_TUPLE = b"t"
_T_DICT = b"d"
_T_NDARRAY = b"a"

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


def _pack_into(value: Any, out: List[bytes], views: bool = False) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            out.append(_T_INT64)
            out.append(struct.pack(">q", value))
        else:
            # Signed big int: sign byte + magnitude, length-prefixed.
            mag = abs(value)
            raw = mag.to_bytes((mag.bit_length() + 7) // 8, "big")
            out.append(_T_BIGINT)
            out.append(struct.pack(">BI", 1 if value < 0 else 0, len(raw)))
            out.append(raw)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out.append(struct.pack(">d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out.append(struct.pack(">I", len(raw)))
        out.append(raw)
    elif isinstance(value, bytes):
        out.append(_T_BYTES)
        out.append(struct.pack(">I", len(value)))
        out.append(value)
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST if isinstance(value, list) else _T_TUPLE)
        out.append(struct.pack(">I", len(value)))
        for item in value:
            _pack_into(item, out, views)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out.append(struct.pack(">I", len(value)))
        # Canonical order: sort by each key's own encoding.
        items = sorted(value.items(), key=lambda kv: pack(kv[0]))
        for k, v in items:
            _pack_into(k, out, views)
            _pack_into(v, out, views)
    elif isinstance(value, np.generic):
        _pack_into(value.item(), out)
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        dt = arr.dtype.str.encode()
        out.append(_T_NDARRAY)
        out.append(struct.pack(">I", len(dt)))
        out.append(dt)
        out.append(struct.pack(">I", arr.ndim))
        out.append(struct.pack(f">{arr.ndim}q", *arr.shape))
        out.append(struct.pack(">I", arr.nbytes))
        if views:
            # Scatter-gather path: hand the array's own buffer to the
            # caller (the memoryview keeps ``arr`` alive), skipping the
            # ``tobytes`` copy.  Only fabrics that write parts in place
            # (the shm rings) request this.
            out.append(arr.data.cast("B"))
        else:
            out.append(arr.tobytes())
    else:
        raise FrameError(
            f"cannot serialize {type(value).__name__!r} onto the wire; "
            f"shard-boundary payloads must be plain data "
            f"(None/bool/int/float/str/bytes/list/tuple/dict/ndarray)")


def pack(value: Any) -> bytes:
    """Canonical binary encoding of one payload value."""
    out: List[bytes] = []
    _pack_into(value, out)
    return b"".join(out)


# Single-byte tag ordinals: indexing works identically on bytes and
# memoryview inputs, which is what lets the shm path decode in place.
_TAG_NONE = _T_NONE[0]
_TAG_TRUE = _T_TRUE[0]
_TAG_FALSE = _T_FALSE[0]
_TAG_INT64 = _T_INT64[0]
_TAG_BIGINT = _T_BIGINT[0]
_TAG_FLOAT = _T_FLOAT[0]
_TAG_STR = _T_STR[0]
_TAG_BYTES = _T_BYTES[0]
_TAG_LIST = _T_LIST[0]
_TAG_TUPLE = _T_TUPLE[0]
_TAG_DICT = _T_DICT[0]
_TAG_NDARRAY = _T_NDARRAY[0]


def _unpack_from(buf, pos: int,
                 arrays: Optional[List[np.ndarray]] = None) -> Tuple[Any, int]:
    """Decode one value from ``buf`` (bytes or memoryview) at ``pos``.

    When ``arrays`` is a list, large ndarray payloads are returned as
    zero-copy views into ``buf`` and appended to ``arrays`` so the caller
    can track when the underlying storage may be reclaimed.
    """
    if pos >= len(buf):
        raise FrameError("truncated payload")
    tag = buf[pos]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT64:
        return struct.unpack_from(">q", buf, pos)[0], pos + 8
    if tag == _TAG_BIGINT:
        neg, n = struct.unpack_from(">BI", buf, pos)
        pos += 5
        mag = int.from_bytes(bytes(buf[pos:pos + n]), "big")
        return (-mag if neg else mag), pos + n
    if tag == _TAG_FLOAT:
        return struct.unpack_from(">d", buf, pos)[0], pos + 8
    if tag == _TAG_STR:
        n = struct.unpack_from(">I", buf, pos)[0]
        pos += 4
        return bytes(buf[pos:pos + n]).decode("utf-8"), pos + n
    if tag == _TAG_BYTES:
        n = struct.unpack_from(">I", buf, pos)[0]
        pos += 4
        return bytes(buf[pos:pos + n]), pos + n
    if tag in (_TAG_LIST, _TAG_TUPLE):
        n = struct.unpack_from(">I", buf, pos)[0]
        pos += 4
        items = []
        for _ in range(n):
            item, pos = _unpack_from(buf, pos, arrays)
            items.append(item)
        return (items if tag == _TAG_LIST else tuple(items)), pos
    if tag == _TAG_DICT:
        n = struct.unpack_from(">I", buf, pos)[0]
        pos += 4
        d = {}
        for _ in range(n):
            k, pos = _unpack_from(buf, pos, arrays)
            v, pos = _unpack_from(buf, pos, arrays)
            d[k] = v
        return d, pos
    if tag == _TAG_NDARRAY:
        n = struct.unpack_from(">I", buf, pos)[0]
        pos += 4
        dt = bytes(buf[pos:pos + n]).decode()
        pos += n
        ndim = struct.unpack_from(">I", buf, pos)[0]
        pos += 4
        shape = struct.unpack_from(f">{ndim}q", buf, pos)
        pos += 8 * ndim
        nb = struct.unpack_from(">I", buf, pos)[0]
        pos += 4
        arr = np.frombuffer(buf[pos:pos + nb], dtype=np.dtype(dt))
        arr = arr.reshape(shape)
        if arrays is not None and nb >= ZERO_COPY_MIN_BYTES:
            arrays.append(arr)
            return arr, pos + nb
        return arr.copy(), pos + nb
    raise FrameError(f"unknown wire tag {bytes([tag])!r} at offset {pos - 1}")


def unpack(buf: bytes) -> Any:
    """Inverse of :func:`pack`; requires the buffer be exactly one value."""
    value, pos = _unpack_from(buf, 0)
    if pos != len(buf):
        raise FrameError(f"{len(buf) - pos} trailing bytes after payload")
    return value


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Frame:
    """One tagged control-plane message between two shards.

    ``(kind, op, round)`` identify the schedule step this message belongs
    to — the *tag* receivers match on — and ``seq`` is the per-(src, dst)
    channel sequence number that makes reordering detectable.
    """

    kind: str        # collective kind or control channel ("allreduce", ...)
    op: int          # per-collectives operation ordinal
    round: int       # schedule round within the operation
    src: int         # sending shard
    dst: int         # receiving shard
    seq: int         # per-(src, dst) channel sequence number
    payload: Any = None

    def tag(self) -> Tuple[str, int, int]:
        return (self.kind, self.op, self.round)


def encode_frame(frame: Frame) -> bytes:
    """Serialize one frame, length prefix included."""
    body = pack((frame.kind, frame.op, frame.round,
                 frame.src, frame.dst, frame.seq, frame.payload))
    if len(body) > _MAX_FRAME:
        raise FrameError(f"frame body of {len(body)} bytes exceeds the "
                         f"{_MAX_FRAME}-byte bound")
    return MAGIC + struct.pack(">I", len(body)) + body


def encode_frame_parts(frame: Frame) -> Tuple[List[Any], int]:
    """``(parts, total_bytes)`` — :func:`encode_frame` as scatter-gather.

    ``parts`` is a list of bytes-like pieces whose concatenation equals
    ``encode_frame(frame)``, except that large contiguous ndarray
    payloads contribute their own buffer instead of a ``tobytes`` copy.
    A fabric that can write pieces sequentially into its wire buffer (the
    shm rings) sends big arrays with a single copy end to end.
    """
    out: List[Any] = []
    _pack_into((frame.kind, frame.op, frame.round,
                frame.src, frame.dst, frame.seq, frame.payload), out,
               views=True)
    body_len = sum(len(p) for p in out)
    if body_len > _MAX_FRAME:
        raise FrameError(f"frame body of {body_len} bytes exceeds the "
                         f"{_MAX_FRAME}-byte bound")
    return ([MAGIC + struct.pack(">I", body_len)] + out, 6 + body_len)


def decode_frame(buf: bytes) -> Frame:
    """Decode exactly one frame from ``buf`` (prefix + body, no trailing)."""
    frame, used = _decode_prefix(buf)
    if frame is None:
        raise FrameError("truncated frame")
    if used != len(buf):
        raise FrameError(f"{len(buf) - used} trailing bytes after frame")
    return frame


def decode_frame_view(view,
                      zero_copy: bool = True
                      ) -> Tuple[Frame, List[np.ndarray]]:
    """Decode one frame in place from ``view`` (bytes or memoryview).

    With ``zero_copy`` large ndarray payloads stay backed by ``view``'s
    buffer; the second return value lists those arrays so the caller can
    hold the storage alive until every view is dropped.  Scalars, strings,
    digests, and small arrays are copied out as usual.
    """
    if len(view) < 6:
        raise FrameError("truncated frame")
    if bytes(view[:2]) != MAGIC:
        raise FrameError(f"bad frame magic {bytes(view[:2])!r}")
    n = struct.unpack_from(">I", view, 2)[0]
    if n > _MAX_FRAME:
        raise FrameError(f"frame length {n} exceeds the {_MAX_FRAME} bound")
    if len(view) != 6 + n:
        raise FrameError(f"frame view is {len(view)} bytes, expected {6 + n}")
    arrays: List[np.ndarray] = [] if zero_copy else None
    fields, pos = _unpack_from(view, 6, arrays)
    if pos != 6 + n:
        raise FrameError(f"{6 + n - pos} trailing bytes after frame body")
    if not (isinstance(fields, tuple) and len(fields) == 7):
        raise FrameError("malformed frame body")
    kind, op, rnd, src, dst, seq, payload = fields
    return Frame(kind, op, rnd, src, dst, seq, payload), (arrays or [])


def _decode_prefix(buf: bytes) -> Tuple[Optional[Frame], int]:
    """Try to decode one frame from the head of ``buf``.

    Returns ``(frame, bytes_consumed)``; ``(None, 0)`` when more bytes are
    needed.  Raises :class:`FrameError` on a corrupt header.
    """
    if len(buf) < 6:
        return None, 0
    if buf[:2] != MAGIC:
        raise FrameError(f"bad frame magic {bytes(buf[:2])!r}")
    n = struct.unpack_from(">I", buf, 2)[0]
    if n > _MAX_FRAME:
        raise FrameError(f"frame length {n} exceeds the {_MAX_FRAME} bound")
    if len(buf) < 6 + n:
        return None, 0
    fields = unpack(bytes(buf[6:6 + n]))
    if not (isinstance(fields, tuple) and len(fields) == 7):
        raise FrameError("malformed frame body")
    kind, op, rnd, src, dst, seq, payload = fields
    return Frame(kind, op, rnd, src, dst, seq, payload), 6 + n


class FrameDecoder:
    """Incremental frame splitter for stream transports."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, chunk: bytes) -> List[Frame]:
        """Absorb ``chunk``; return every frame completed by it."""
        self._buf.extend(chunk)
        frames: List[Frame] = []
        while True:
            frame, used = _decode_prefix(self._buf)
            if frame is None:
                break
            del self._buf[:used]
            frames.append(frame)
        return frames

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)
