"""Launch, supervise, and merge an N-shard replicated run.

Three ways to run the same :class:`~repro.dist.programs.ProgramSpec`:

* :func:`run_reference` — the serial in-process reference.  No transport
  at all: each shard replica is replayed one after another with a plain
  :class:`~repro.core.determinism.ShardHasher`, producing the conformance
  artifacts the other backends must match byte-for-byte.
* :class:`DistRunner` with ``backend="loopback"`` — one thread per shard
  over a :class:`~repro.dist.transport.LoopbackFabric`.  Real collective
  schedules, real frames, one process; what the unit tests use.
* :class:`DistRunner` with ``backend="multiprocess"`` — one forked OS
  process per shard over a :class:`~repro.dist.transport.PipeFabric`.
  The paper's actual deployment shape: replicas share nothing but pipes.

Supervision guarantees for the multiprocess path (the ISSUE's "no orphaned
workers" criterion): every worker is joined with a hard deadline, any
failure or timeout terminates the whole gang, and the ``finally`` block
re-terminates and re-joins anything still alive before returning or
raising.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import Any, Dict, List, Optional

from ..core.determinism import ShardHasher, stream_digest
from ..core.pipeline import DCRPipeline, analysis_digest, fence_sequence
from .programs import ProgramSpec, build_field, build_operations
from .report import MergedReport, ShardReport, merge_reports
from .transport import (DEFAULT_DEADLINE_S, PROCESS_BACKENDS,
                        LoopbackFabric, fabric_for_backend)
from .worker import ShardWorker, replay

__all__ = ["DistRunner", "ServiceRunner", "run_reference", "BACKENDS",
           "supervise_gang", "terminate_gang"]

#: "loopback" threads transports in one process; the rest fork one worker
#: process per shard over the matching fabric ("multiprocess" = pipe mesh,
#: "shm" = shared-memory rings, "tcp" = socket mesh).
BACKENDS = ("loopback",) + PROCESS_BACKENDS


def supervise_gang(entries: List[tuple], timeout_s: float,
                   grace_s: float = 5.0):
    """Collect one ``(status, payload)`` message per worker, hard deadline.

    ``entries`` is a list of ``(rank, process, parent_conn)``.  Returns
    ``(payloads, failures)`` where ``payloads`` maps rank to the payload of
    each ``("ok", payload)`` message and ``failures`` is a list of
    human-readable failure strings (worker errors, silent deaths, and
    deadline overruns all land here — never an indefinite wait).

    All polls and joins share **one** monotonic deadline (``timeout_s``
    for reports, plus ``grace_s`` once — not per worker — for exits): a
    wedged gang of N is reaped within ~1× the configured timeout, where
    the old per-worker ``join(remaining + 5.0)`` accounting could overrun
    the deadline by 5s × N.
    """
    payloads: Dict[int, Any] = {}
    failures: List[str] = []
    deadline = time.monotonic() + timeout_s
    for rank, proc, conn in entries:
        remaining = max(0.0, deadline - time.monotonic())
        if conn.poll(remaining):
            try:
                status, payload = conn.recv()
            except EOFError:
                failures.append(f"shard {rank}: died without a report "
                                f"(pid {proc.pid})")
                continue
            if status == "ok":
                payloads[rank] = payload
            else:
                failures.append(f"shard {rank}: {payload}")
        else:
            failures.append(f"shard {rank}: no report within "
                            f"{timeout_s:.0f}s (pid {proc.pid})")
    join_deadline = deadline + grace_s
    for _rank, proc, _conn in entries:
        proc.join(max(0.0, join_deadline - time.monotonic()))
    return payloads, failures


def terminate_gang(entries: List[tuple]) -> None:
    """Terminate and reap every still-alive worker (the no-orphans sweep).

    Idempotent and order-independent: calling it twice, calling it on a
    gang that already exited, or calling it while a respawned worker is
    dying mid-rejoin must never raise or leave a process behind.  Every
    per-entry step therefore tolerates an already-reaped process (whose
    ``is_alive``/``terminate`` can race exit) and an already-closed pipe,
    and the last resort is SIGKILL — SIGTERM is merely *queued* on a
    stopped (``SIGSTOP``-ed, e.g. stalled) worker, so ``terminate()``
    alone cannot guarantee the sweep converges.
    """
    for _rank, proc, _conn in entries:
        try:
            if proc.is_alive():
                proc.terminate()
        except (ValueError, OSError):  # already closed/reaped elsewhere
            pass
    for _rank, proc, conn in entries:
        try:
            if proc.is_alive():
                proc.join(5.0)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(5.0)
        except (ValueError, OSError):
            pass
        try:
            conn.close()
        except OSError:
            pass


def run_reference(spec: ProgramSpec, num_shards: int,
                  batch: int = 64) -> MergedReport:
    """Serial in-process reference run — the conformance ground truth.

    Replays every shard replica in one thread of one process, recording
    the identical call stream the distributed workers record (same
    :func:`~repro.dist.worker.op_signature` helper), with fences counted
    but not synchronized (there is nothing to synchronize with).
    """
    reports: List[ShardReport] = []
    for rank in range(num_shards):
        t0 = time.perf_counter()
        hasher = ShardHasher(rank)
        pipeline = DCRPipeline(num_shards)
        field = build_field(spec)
        ops = build_operations(spec, num_shards, field)
        hasher.record("program", *spec.signature())
        replay(pipeline, ops, hasher.record, lambda: None)
        coarse, fine = pipeline.coarse_result, pipeline.fine_result
        reports.append(ShardReport(
            shard=rank, num_shards=num_shards, backend="inprocess",
            graph_digest=analysis_digest(coarse, fine),
            fence_sequence=tuple(fence_sequence(coarse)),
            determinism_digest=stream_digest(hasher.calls),
            call_count=len(hasher.calls),
            checks=0,
            ops_analyzed=coarse.ops_analyzed,
            fences=len(coarse.fences),
            fences_elided=coarse.fences_elided,
            points=fine.points_per_shard.get(rank, 0),
            wall_s=time.perf_counter() - t0, pid=os.getpid()))
    return merge_reports(reports, backend="inprocess")


def _worker_main(fabric: Any, rank: int, spec: ProgramSpec,
                 batch: int, profile_dir: Optional[str],
                 conn: Any, backend: str = "multiprocess",
                 coalesce: int = 1) -> None:
    """Forked child entrypoint: claim endpoints, replay, report, exit."""
    transport = None
    try:
        fabric.close_other_ends(rank)
        transport = fabric.transport(rank)
        worker = ShardWorker(transport, spec, backend=backend,
                             batch=batch, profile_dir=profile_dir,
                             coalesce=coalesce)
        report = worker.run()
        conn.send(("ok", report.to_payload()))
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        if transport is not None:
            transport.close()
        conn.close()


class DistRunner:
    """Run one spec at N shards on a chosen backend; merge the reports."""

    def __init__(self, spec: ProgramSpec, num_shards: int,
                 backend: str = "multiprocess", batch: int = 64,
                 deadline_s: float = DEFAULT_DEADLINE_S,
                 join_timeout_s: float = 60.0,
                 profile_dir: Optional[str] = None,
                 coalesce: int = 1, **fabric_kwargs: Any):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"expected one of {BACKENDS}")
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.spec = spec
        self.num_shards = num_shards
        self.backend = backend
        self.batch = batch
        self.coalesce = coalesce
        self.deadline_s = deadline_s
        self.join_timeout_s = join_timeout_s
        self.profile_dir = profile_dir
        self.fabric_kwargs = fabric_kwargs

    def run(self) -> MergedReport:
        if self.backend == "loopback":
            reports = self._run_loopback()
        else:
            reports = self._run_multiprocess()
        return merge_reports(reports, backend=self.backend)

    # -- loopback (threads) --------------------------------------------------

    def _run_loopback(self) -> List[ShardReport]:
        fabric = LoopbackFabric(self.num_shards, deadline_s=self.deadline_s)
        results: List[Optional[ShardReport]] = [None] * self.num_shards
        errors: Dict[int, BaseException] = {}

        def main(rank: int) -> None:
            try:
                worker = ShardWorker(fabric.transport(rank), self.spec,
                                     backend="loopback", batch=self.batch,
                                     profile_dir=self.profile_dir,
                                     coalesce=self.coalesce)
                results[rank] = worker.run()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors[rank] = exc
                fabric.mark_closed(rank)

        threads = [threading.Thread(target=main, args=(r,),
                                    name=f"shard-{r}", daemon=True)
                   for r in range(self.num_shards)]
        for t in threads:
            t.start()
        # One shared deadline across all joins: N wedged shards are
        # declared dead after ~1× join_timeout_s of wall clock, not N×.
        deadline = time.monotonic() + self.join_timeout_s
        for t in threads:
            t.join(max(0.0, deadline - time.monotonic()))
        if errors:
            rank = min(errors)
            raise errors[rank]
        alive = [t.name for t in threads if t.is_alive()]
        if alive:
            raise TimeoutError(f"loopback shards did not finish: {alive}")
        return [r for r in results if r is not None]

    # -- multiprocess (fork) -------------------------------------------------

    def _run_multiprocess(self) -> List[ShardReport]:
        # Fork keeps the (already imported) code and the spec without any
        # pickling of closures; the worker protocol itself needs only the
        # inherited fabric endpoints.
        ctx = multiprocessing.get_context("fork")
        fabric = fabric_for_backend(self.backend, self.num_shards,
                                    deadline_s=self.deadline_s,
                                    **self.fabric_kwargs)
        entries: List[tuple] = []
        try:
            for rank in range(self.num_shards):
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(fabric, rank, self.spec, self.batch,
                          self.profile_dir, child_conn, self.backend,
                          self.coalesce),
                    name=f"repro-shard-{rank}", daemon=True)
                proc.start()
                child_conn.close()
                entries.append((rank, proc, parent_conn))
            # Fd-based fabrics: the parent holds copies of every mesh
            # endpoint; release them so a dead worker's peers observe EOF
            # instead of a timeout.  (Shm rings have no fd to release —
            # crash detection there is pid liveness via the status board.)
            if fabric.parent_must_release:
                fabric.close_all()
            payloads, failures = supervise_gang(entries,
                                                self.join_timeout_s)
        finally:
            terminate_gang(entries)
            fabric.close_all()
        if failures:
            raise RuntimeError(
                "multiprocess run failed: " + "; ".join(failures))
        return [ShardReport.from_payload(payloads[r])
                for r in sorted(payloads)]


class ServiceRunner:
    """Client-side convenience over :class:`repro.service.DCRService`.

    The session-serving counterpart of :class:`DistRunner`: where a
    DistRunner launches a gang, runs one spec, and tears everything down,
    a ServiceRunner holds a persistent service and submits a *stream* of
    specs through one default session — repeat shapes are served from
    cached analysis templates instead of re-analyzed.

    ``repro.service`` is imported lazily inside the methods (it imports
    this module for the worker machinery, so a top-level import here would
    be a cycle).
    """

    def __init__(self, num_shards: int, backend: str = "loopback",
                 batch: int = 64, **service_kwargs: Any):
        self.num_shards = num_shards
        self.backend = backend
        self.batch = batch
        self.service_kwargs = service_kwargs
        self._service = None
        self._session = None

    @property
    def service(self):
        if self._service is None:
            raise RuntimeError("ServiceRunner is not started")
        return self._service

    def start(self) -> "ServiceRunner":
        from ..service import DCRService
        self._service = DCRService(self.num_shards, backend=self.backend,
                                   batch=self.batch,
                                   **self.service_kwargs).start()
        self._session = self._service.open_session("service-runner")
        return self

    def close(self) -> None:
        if self._service is not None:
            self._service.close()
            self._service = None
            self._session = None

    def __enter__(self) -> "ServiceRunner":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def submit(self, spec: ProgramSpec):
        """Queue one program; returns a ``JobHandle`` (non-blocking)."""
        return self._session.submit(spec)

    def run(self, spec: ProgramSpec) -> MergedReport:
        """Submit one program and block for its merged report."""
        return self._session.run(spec)

    def open_session(self, name: Optional[str] = None):
        """An additional named client session on the shared service."""
        return self.service.open_session(name)
