"""Analysis reporting: human-readable profiles of a finished DCR run.

The paper exposes replication and sharding decisions through the mapping
interface so users can reason about performance; this module gives them the
observability side — what the analysis actually did: operation and point
counts, fence pressure by region, elision effectiveness, per-shard load
balance, and critical-path statistics of the produced task graph.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..runtime.runtime import Runtime

__all__ = ["AnalysisReport", "analyze_run"]


@dataclass
class AnalysisReport:
    """Everything :func:`analyze_run` extracts from a runtime."""

    num_shards: int
    operations: int
    traced_operations: int
    point_tasks: int
    dependences: int
    critical_path: int
    fences: int
    fences_elided: int
    fence_pressure: List[Tuple[str, int]] = field(default_factory=list)
    points_per_shard: Dict[int, int] = field(default_factory=dict)
    cross_shard_edges: int = 0
    local_edges: int = 0
    determinism_checks: int = 0
    moved_bytes: int = 0
    moved_points: int = 0
    trace_fallbacks: int = 0      # replays abandoned on divergence
    scans_saved: int = 0          # epoch scans skipped via trace replay
    auto_traces: int = 0          # fragments the auto-tracer identified
    # Flat profiler metrics dict (repro.obs MetricsRegistry.as_dict()) when
    # the run was profiled; empty — and absent from render() — otherwise.
    profiler_metrics: Dict[str, float] = field(default_factory=dict)

    #: rough per-scan cost of an epoch-list entry (operation pointer +
    #: interval + field set) used to translate skipped scans into a
    #: bytes-of-analysis-state-not-touched figure for reports.
    BYTES_PER_SCAN = 48

    @property
    def elision_rate(self) -> float:
        total = self.fences + self.fences_elided
        return self.fences_elided / total if total else 1.0

    @property
    def trace_hit_rate(self) -> float:
        """Fraction of operations served by trace replay."""
        return self.traced_operations / self.operations \
            if self.operations else 0.0

    @property
    def analysis_bytes_saved(self) -> int:
        """Estimated bytes of epoch-list state replays never touched."""
        return self.scans_saved * self.BYTES_PER_SCAN

    @property
    def parallelism(self) -> float:
        """Average width of the task graph (tasks / critical path)."""
        return self.point_tasks / self.critical_path \
            if self.critical_path else 0.0

    @property
    def load_imbalance(self) -> float:
        """max/mean of per-shard analyzed point counts (1.0 = perfect)."""
        counts = list(self.points_per_shard.values())
        if not counts:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0

    def render(self) -> str:
        lines = [
            "DCR analysis report",
            "===================",
            f"shards                : {self.num_shards}",
            f"operations analyzed   : {self.operations} "
            f"({self.traced_operations} trace-replayed, "
            f"{self.trace_hit_rate:.0%} hit rate)",
            f"tracing               : {self.auto_traces} fragments "
            f"auto-identified, {self.trace_fallbacks} replay fallbacks, "
            f"{self.scans_saved} scans saved "
            f"(~{self.analysis_bytes_saved} bytes of analysis)",
            f"point tasks           : {self.point_tasks}",
            f"dependences           : {self.dependences} "
            f"({self.cross_shard_edges} cross-shard, "
            f"{self.local_edges} shard-local)",
            f"critical path         : {self.critical_path} tasks "
            f"(avg parallelism {self.parallelism:.1f})",
            f"cross-shard fences    : {self.fences} inserted, "
            f"{self.fences_elided} elided "
            f"({self.elision_rate:.0%} elision rate)",
            f"analysis load balance : {self.load_imbalance:.2f}x "
            f"(max shard / mean)",
            f"determinism checks    : {self.determinism_checks} batches",
            f"data moved            : {self.moved_points} points / "
            f"{self.moved_bytes} bytes (directory-tracked)",
        ]
        if self.fence_pressure:
            lines.append("fence pressure by region:")
            for name, count in self.fence_pressure:
                lines.append(f"  {name:<24} {count}")
        if self.profiler_metrics:
            lines.append("profiler metrics:")
            for name, value in sorted(self.profiler_metrics.items()):
                lines.append(f"  {name:<32} {value:g}")
        return "\n".join(lines)


def analyze_run(runtime: Runtime) -> AnalysisReport:
    """Summarize a finished :class:`Runtime` execution."""
    from ..runtime.instance import track_movement

    pipe = runtime.pipeline
    coarse = pipe.coarse_result
    fine = pipe.fine_result
    movement = track_movement(runtime)
    pressure = Counter(
        f.region.name if f.region is not None else "<global>"
        for f in coarse.fences)
    return AnalysisReport(
        num_shards=runtime.num_shards,
        operations=pipe.stats.ops,
        traced_operations=pipe.stats.traced_ops,
        point_tasks=len(fine.graph.tasks),
        dependences=len(fine.graph.deps),
        critical_path=fine.graph.critical_path_length(),
        fences=len(coarse.fences),
        # Credited counter: includes elisions a trace recording performed
        # that replayed iterations inherit (pipeline stats, not the live
        # coarse counter, which only sees fresh analysis).
        fences_elided=pipe.stats.fences_elided,
        fence_pressure=pressure.most_common(),
        points_per_shard=dict(fine.points_per_shard),
        cross_shard_edges=len(fine.cross_edges),
        local_edges=len(fine.local_edges),
        determinism_checks=runtime.monitor.checks_performed,
        moved_bytes=movement.total_bytes,
        moved_points=movement.total_points_moved,
        trace_fallbacks=pipe.stats.trace_fallbacks,
        scans_saved=pipe.stats.scans_saved,
        auto_traces=pipe.stats.auto_traces,
        profiler_metrics=runtime.profiler.metrics.as_dict(),
    )
