"""Observability and utility tooling layered on the runtime."""

from .autotune import TuningResult, tune_mapper
from .checkpoint import (load_partitioned, load_region, save_partitioned,
                         save_region)
from .dot import coarse_graph_dot, task_graph_dot
from .report import AnalysisReport, analyze_run
from .spy import SpyFinding, SpyReport, validate_run

__all__ = [
    "TuningResult", "tune_mapper",
    "load_partitioned", "load_region", "save_partitioned", "save_region",
    "coarse_graph_dot", "task_graph_dot",
    "AnalysisReport", "analyze_run",
    "SpyFinding", "SpyReport", "validate_run",
]
