"""Observability and utility tooling layered on the runtime."""

from .autotune import TuningResult, tune_mapper
from .checkpoint import (load_partitioned, load_region, save_partitioned,
                         save_region)
from .dot import coarse_graph_dot, task_graph_dot
from .report import AnalysisReport, analyze_run
from .spy import SpyFinding, SpyReport, validate_run

#: Exposed lazily (PEP 562) so ``python -m repro.tools.prof`` does not
#: import the CLI module twice (once here, once as ``__main__``).
_PROF_NAMES = ("fence_pressure", "render_summary", "shard_summary")


def __getattr__(name):
    if name in _PROF_NAMES:
        from . import prof
        return getattr(prof, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "TuningResult", "tune_mapper",
    "load_partitioned", "load_region", "save_partitioned", "save_region",
    "coarse_graph_dot", "task_graph_dot",
    "fence_pressure", "render_summary", "shard_summary",
    "AnalysisReport", "analyze_run",
    "SpyFinding", "SpyReport", "validate_run",
]
