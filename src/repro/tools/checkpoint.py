"""Region checkpoint/restore built on attach/detach (paper §4.3 extension).

A practical library feature layered on the external-resource machinery:
save every field of a region (or each subregion of a partition, for
parallel I/O) to ``.npz``/``.npy`` files, and restore into a later run.
Checkpoint operations are ordinary runtime operations, so they are
correctly ordered against in-flight tasks and replicate safely.
"""

from __future__ import annotations

import os
from typing import Hashable

import numpy as np

from ..regions import LogicalRegion, Partition
from ..runtime.attach import detach_file, attach_file
from ..runtime.runtime import Context

__all__ = ["save_region", "load_region", "save_partitioned",
           "load_partitioned", "save_store_snapshot", "load_store_snapshot"]


def _field_path(directory: str, region_name: str, field_name: str) -> str:
    return os.path.join(directory, f"{region_name}.{field_name}.npy")


# -- whole-store snapshots (resilience checkpoints) --------------------------

def _store_field_path(directory: str, tree_id: int, fid: int) -> str:
    return os.path.join(directory, f"tree{tree_id}.f{fid}.npy")


def save_store_snapshot(store, directory: str) -> int:
    """Mirror every allocated field array of a :class:`~repro.runtime.store.
    RegionStore` to ``directory`` (one ``.npy`` per field plus an offsets
    index).  Used by the RESTART recovery policy's batch-boundary
    checkpoints; returns the number of arrays written."""
    os.makedirs(directory, exist_ok=True)
    arrays, offsets = store.snapshot()
    for (tree_id, fid), arr in arrays.items():
        np.save(_store_field_path(directory, tree_id, fid), arr)
    import json
    with open(os.path.join(directory, "offsets.json"), "w") as fh:
        json.dump({str(t): list(o) for t, o in offsets.items()}, fh)
    return len(arrays)


def load_store_snapshot(store, directory: str) -> int:
    """Restore a :func:`save_store_snapshot` checkpoint into ``store``.

    Only fields present in the checkpoint are replaced; returns the number
    of arrays restored."""
    import json
    with open(os.path.join(directory, "offsets.json")) as fh:
        offsets = {int(t): tuple(o) for t, o in json.load(fh).items()}
    arrays = {}
    for fname in sorted(os.listdir(directory)):
        if not (fname.startswith("tree") and fname.endswith(".npy")):
            continue
        stem = fname[len("tree"):-len(".npy")]
        tree_str, fid_str = stem.split(".f")
        arrays[(int(tree_str), int(fid_str))] = np.load(
            os.path.join(directory, fname))
    store.restore((arrays, offsets))
    return len(arrays)


def save_region(ctx: Context, region: LogicalRegion, directory: str) -> None:
    """Checkpoint every field of ``region`` into ``directory``."""
    ctx._record("save_region", region, directory)
    if ctx.is_driver:
        os.makedirs(directory, exist_ok=True)
    for f in sorted(region.field_space.fields, key=lambda f: f.name):
        detach_file(ctx, region, f.name,
                    _field_path(directory, region.name, f.name))


def load_region(ctx: Context, region: LogicalRegion, directory: str) -> None:
    """Restore every field of ``region`` from ``directory``."""
    ctx._record("load_region", region, directory)
    for f in sorted(region.field_space.fields, key=lambda f: f.name):
        path = _field_path(directory, region.name, f.name)
        if ctx.is_driver and not os.path.exists(path):
            raise FileNotFoundError(
                f"checkpoint is missing field file {path}")
        attach_file(ctx, region, f.name, path)


def save_partitioned(ctx: Context, partition: Partition, field_name: str,
                     directory: str) -> None:
    """Parallel checkpoint: one file per subregion (group detach)."""
    from ..runtime.attach import detach_file_group
    ctx._record("save_partitioned", partition, field_name, directory)
    if ctx.is_driver:
        os.makedirs(directory, exist_ok=True)
    detach_file_group(
        ctx, partition, field_name,
        lambda c: os.path.join(directory,
                               f"{partition.name}.{field_name}.{c}.npy"))


def load_partitioned(ctx: Context, partition: Partition, field_name: str,
                     directory: str) -> None:
    """Parallel restore: one file per subregion (group attach)."""
    from ..runtime.attach import attach_file_group
    ctx._record("load_partitioned", partition, field_name, directory)
    attach_file_group(
        ctx, partition, field_name,
        lambda c: os.path.join(directory,
                               f"{partition.name}.{field_name}.{c}.npy"))
