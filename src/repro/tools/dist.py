"""CLI: launch an N-shard multiprocess run and print the merged report.

::

    python -m repro.tools.dist --shards 3
    python -m repro.tools.dist --shards 4 --steps 8 --tiles 16 \\
        --profile-dir out/ --verify

Runs the canonical stencil program (or a custom ``--steps``/``--tiles``
shape) with one OS process per shard over the pipe transport, merges the
per-shard reports, and prints the conformance verdict.  ``--verify``
additionally runs the serial in-process reference and checks the
distributed artifacts against it byte for byte.  ``--profile-dir`` saves a
per-shard profile plus a Chrome trace next to each.

Exit status: 0 on a conformant run, 1 on any mismatch or failure — so the
CI ``dist`` tier can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from ..dist import BACKENDS, DistRunner, run_reference, stencil_program
from ..dist.programs import SHARDINGS
from ..obs.chrome import export_chrome_trace
from ..obs.profiler import Profiler

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.dist",
        description="Run the stencil demo program replicated across N "
                    "shard processes and print the merged report.")
    parser.add_argument("--shards", type=int, default=3,
                        help="number of shard processes (default 3)")
    parser.add_argument("--tiles", type=int, default=12,
                        help="tiles in the stencil region (default 12)")
    parser.add_argument("--steps", type=int, default=4,
                        help="stencil sweeps (default 4)")
    parser.add_argument("--sharding", choices=sorted(SHARDINGS),
                        default="blocked",
                        help="sharding function (default blocked)")
    parser.add_argument("--backend", choices=BACKENDS,
                        default="multiprocess",
                        help="transport backend: multiprocess = pipe mesh, "
                             "shm = shared-memory rings, tcp = socket "
                             "mesh, loopback = in-process threads "
                             "(default multiprocess)")
    parser.add_argument("--batch", type=int, default=16,
                        help="determinism check window (default 16)")
    parser.add_argument("--coalesce", type=int, default=1,
                        help="digest windows batched per allreduce round "
                             "(default 1)")
    parser.add_argument("--verify", action="store_true",
                        help="also run the serial in-process reference and "
                             "compare artifacts byte for byte")
    parser.add_argument("--profile-dir", metavar="DIR", default=None,
                        help="save per-shard profiles and Chrome traces")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the merged report as JSON")
    args = parser.parse_args(argv)

    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 1
    spec = stencil_program(args.tiles, steps=args.steps,
                           sharding=args.sharding)
    runner = DistRunner(spec, args.shards, backend=args.backend,
                        batch=args.batch, coalesce=args.coalesce,
                        profile_dir=args.profile_dir)
    try:
        merged = runner.run()
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    print(merged.render())
    ok = merged.conformant

    if args.verify:
        reference = run_reference(spec, args.shards, batch=args.batch)
        agree = (merged.graph_digest == reference.graph_digest
                 and merged.determinism_digest
                 == reference.determinism_digest
                 and merged.shards[0].fence_sequence
                 == reference.shards[0].fence_sequence)
        print("reference match:    " + ("yes" if agree else "NO"))
        ok = ok and agree and reference.conformant

    if args.profile_dir:
        for shard in merged.shards:
            if not shard.profile_path:
                continue
            chrome = shard.profile_path.replace(".json", "") \
                + ".chrome.json"
            export_chrome_trace(Profiler.load(shard.profile_path), chrome)
        print(f"per-shard profiles in {args.profile_dir}/ "
              f"(with .chrome.json traces)")

    if args.json:
        payload = {
            "backend": merged.backend,
            "num_shards": merged.num_shards,
            "conformant": merged.conformant,
            "mismatches": list(merged.mismatches),
            "graph_digest": merged.graph_digest,
            "determinism_digest": f"{merged.determinism_digest:032x}",
            "ops_analyzed": merged.ops_analyzed,
            "fences": merged.fences,
            "fences_elided": merged.fences_elided,
            "total_points": merged.total_points,
            "total_frames": merged.total_frames,
            "shards": [s.to_payload() for s in merged.shards],
        }
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"merged report written to {args.json}")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
