"""Graphviz export of analysis products, for debugging and documentation.

``task_graph_dot`` renders the precise point-task graph (clustered by
operation, colored by shard); ``coarse_graph_dot`` renders the coarse
operation-level graph with fence edges highlighted — the picture the
paper's Fig. 10 draws by hand.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.coarse import CoarseResult
from ..core.taskgraph import TaskGraph

__all__ = ["task_graph_dot", "coarse_graph_dot"]

_SHARD_COLORS = ["lightblue", "lightpink", "lightgreen", "khaki",
                 "lightsalmon", "plum", "palegreen", "lightgray"]


def _quote(s: str) -> str:
    return '"' + s.replace('"', r'\"') + '"'


def task_graph_dot(graph: TaskGraph, max_tasks: int = 500) -> str:
    """DOT text for a point-task graph; raises if it would be unreadable."""
    if len(graph.tasks) > max_tasks:
        raise ValueError(
            f"graph has {len(graph.tasks)} tasks; refusing to render more "
            f"than {max_tasks} (pass max_tasks= to override)")
    lines = ["digraph tasks {", "  rankdir=TB;",
             '  node [shape=box, style=filled];']
    by_op = {}
    for task in graph.tasks:
        by_op.setdefault(task.op, []).append(task)

    def node_id(task) -> str:
        return _quote(f"{task.op.name}#{task.op.seq}[{task.point}]")

    for op, tasks in sorted(by_op.items(), key=lambda kv: kv[0].seq):
        lines.append(f"  subgraph cluster_{op.seq} {{")
        lines.append(f"    label={_quote(f'{op.name} (seq {op.seq})')};")
        for task in sorted(tasks, key=lambda t: str(t.point)):
            color = _SHARD_COLORS[task.shard % len(_SHARD_COLORS)]
            lines.append(
                f"    {node_id(task)} "
                f"[label={_quote(str(task.point))}, fillcolor={color}];")
        lines.append("  }")
    for a, b in sorted(graph.deps,
                       key=lambda e: (e[0].op.seq, str(e[0].point),
                                      e[1].op.seq, str(e[1].point))):
        style = "" if a.shard == b.shard else " [color=red, penwidth=2]"
        lines.append(f"  {node_id(a)} -> {node_id(b)}{style};")
    lines.append("}")
    return "\n".join(lines)


def coarse_graph_dot(coarse: CoarseResult,
                     ops: Optional[Iterable] = None) -> str:
    """DOT text for the coarse dependence graph, fences marked in red."""
    lines = ["digraph coarse {", "  rankdir=TB;",
             '  node [shape=box, style=filled, fillcolor=white];']
    fence_positions = {f.at_seq for f in coarse.fences}
    seen = set()
    for a, b in sorted(coarse.deps, key=lambda e: (e[0].seq, e[1].seq)):
        for op in (a, b):
            if op.seq not in seen:
                seen.add(op.seq)
                fenced = op.seq in fence_positions
                fill = ", fillcolor=mistyrose" if fenced else ""
                lines.append(
                    f"  op{op.seq} [label={_quote(op.name)}{fill}];")
        fenced_edge = b.seq in fence_positions
        style = (' [color=red, label="fence"]' if fenced_edge else "")
        lines.append(f"  op{a.seq} -> op{b.seq}{style};")
    lines.append("}")
    return "\n".join(lines)
