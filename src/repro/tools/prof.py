"""``python -m repro.tools.prof`` — shard-timeline profile reader.

Loads a raw profile saved by :meth:`repro.obs.Profiler.save` (the
``run.trace.json`` form), prints a per-shard summary — time in coarse vs
fine vs collectives vs trace replay vs determinism vs execution, plus the
top-k fence-pressure regions — and writes a Chrome trace-event JSON next to
it (loadable in ``chrome://tracing`` or https://ui.perfetto.dev).

Usage::

    python -m repro.tools.prof run.trace.json            # summary + chrome
    python -m repro.tools.prof run.trace.json --chrome out.json --top 10
    python -m repro.tools.prof --demo run.trace.json     # profile a built-in
                                                         # traced stencil run
                                                         # first, then report

``--demo`` exists so CI (and new users) can produce a realistic profile
with one command: it runs a few time-steps of the halo stencil through the
real runtime with automatic trace identification on, so the resulting
timeline shows fresh analysis, a retroactive recording, and replays.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter, defaultdict
from typing import Any, Dict, List, Optional, Sequence

from ..obs.chrome import export_chrome_trace
from ..obs.events import (ANALYSIS_CATEGORIES, CAT_COARSE, CONTROL_SHARD,
                          EV_FENCE_INSERT)
from ..obs.profiler import Profiler

__all__ = ["main", "shard_summary", "fence_pressure", "run_demo"]


# -- aggregation -------------------------------------------------------------

def shard_summary(profile: Dict[str, Any]) -> Dict[int, Dict[str, float]]:
    """Per-shard microseconds by category (spans only; "X" and B/E pairs)."""
    per: Dict[int, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
    open_spans: Dict[tuple, float] = {}
    for ev in profile["events"]:
        shard, cat, ph = ev["shard"], ev["cat"], ev["ph"]
        if ph == "X":
            per[shard][cat] += ev.get("dur", 0.0)
        elif ph == "B":
            open_spans[(shard, cat, ev["name"])] = ev["ts"]
        elif ph == "E":
            t0 = open_spans.pop((shard, cat, ev["name"]), None)
            if t0 is not None:
                per[shard][cat] += ev["ts"] - t0
    return {s: dict(cats) for s, cats in per.items()}


def fence_pressure(profile: Dict[str, Any], top: int = 5
                   ) -> List[tuple]:
    """Top-k (region, fence-count) pairs from fence-insert instants."""
    counts: Counter = Counter()
    for ev in profile["events"]:
        if ev["name"] == EV_FENCE_INSERT and ev["cat"] == CAT_COARSE:
            counts[ev.get("args", {}).get("region", "<unknown>")] += 1
    return counts.most_common(top)


def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{us / 1e3:.1f}ms"
    return f"{us:.0f}us"


def render_summary(profile: Dict[str, Any], top: int = 5) -> str:
    """The human-readable report the CLI prints."""
    per = shard_summary(profile)
    cats = list(ANALYSIS_CATEGORIES)
    lines = ["shard timeline summary (time per subsystem)",
             "-------------------------------------------"]
    header = f"{'shard':>8}" + "".join(f"{c:>14}" for c in cats) \
        + f"{'total':>14}"
    lines.append(header)
    for shard in sorted(per):
        label = "control" if shard == CONTROL_SHARD else str(shard)
        row = per[shard]
        total = sum(row.values())
        lines.append(f"{label:>8}"
                     + "".join(f"{_fmt_us(row.get(c, 0.0)):>14}"
                               for c in cats)
                     + f"{_fmt_us(total):>14}")
    pressure = fence_pressure(profile, top)
    if pressure:
        lines.append(f"top-{top} fence-pressure regions:")
        for region, count in pressure:
            lines.append(f"  {region:<24} {count}")
    metrics = profile.get("metrics", {})
    if metrics:
        lines.append("headline metrics:")
        for key in ("pipeline.ops", "pipeline.traced_ops", "pipeline.points",
                    "coarse.scans", "coarse.fences_inserted",
                    "coarse.fences_elided", "collectives.rounds",
                    "trace.recordings", "trace.replays", "trace.fallbacks",
                    "determinism.batches"):
            if key in metrics:
                lines.append(f"  {key:<26} {metrics[key]:g}")
    return "\n".join(lines)


# -- demo workload -----------------------------------------------------------

def run_demo(path: str, shards: int = 4, steps: int = 6,
             tiles: int = 4) -> Profiler:
    """Profile a traced halo-stencil run and save the raw profile to
    ``path``.  Uses automatic trace identification, so the profile contains
    fresh analysis, a retroactive trace recording, and replayed steps."""
    import numpy as np  # noqa: F401  (runtime dependency of task bodies)

    from ..runtime import Runtime

    def _diffuse(point, owned, ghost):
        owned["x"].view[...] = 0.5 * owned["x"].view + \
            0.5 * float(ghost["x"].view.mean())

    def _scale(point, owned):
        owned["x"].view[...] *= 1.001

    def control(ctx):
        fs = ctx.create_field_space([("x", "f8")])
        cells = ctx.create_region(ctx.create_index_space(tiles * 8), fs,
                                  "cells")
        owned = ctx.partition_equal(cells, tiles, name="owned")
        ghost = ctx.partition_ghost(cells, owned, 1, name="ghost")
        ctx.fill(cells, "x", 1.0)
        dom = list(range(tiles))
        for _ in range(steps):
            ctx.index_launch(_diffuse, dom,
                             [(owned, "x", "rw"), (ghost, "x", "ro")])
            ctx.index_launch(_scale, dom, [(owned, "x", "rw")])

    prof = Profiler().enable()
    rt = Runtime(num_shards=shards, auto_trace=True, profiler=prof)
    rt.execute(control)
    prof.save(path)
    return prof


# -- entry point -------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.prof",
        description="Summarize a saved repro profile and export a Chrome "
                    "trace (chrome://tracing / Perfetto).")
    parser.add_argument("trace", help="path to a profile saved by "
                                      "Profiler.save() (run.trace.json)")
    parser.add_argument("--chrome", metavar="PATH", default=None,
                        help="Chrome trace output path "
                             "(default: <trace>.chrome.json)")
    parser.add_argument("--top", type=int, default=5,
                        help="how many fence-pressure regions to show")
    parser.add_argument("--demo", action="store_true",
                        help="first generate TRACE by profiling a built-in "
                             "auto-traced stencil run")
    args = parser.parse_args(argv)

    if args.demo:
        run_demo(args.trace)
        print(f"demo profile written to {args.trace}")
    try:
        profile = Profiler.load(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(render_summary(profile, top=args.top))
    chrome_path = args.chrome or args.trace.replace(".json", "") \
        + ".chrome.json"
    export_chrome_trace(profile, chrome_path)
    print(f"chrome trace written to {chrome_path} "
          f"(load in chrome://tracing or ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
