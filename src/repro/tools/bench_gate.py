"""Benchmark regression gate: one CLI for every CI baseline check.

The CI workflow used to carry three hand-rolled copies of the same
pattern — load the committed baseline JSON, load the fresh report, fail
if a headline metric regressed more than 20% or missed an absolute
floor.  This tool is that pattern, once::

    python -m repro.tools.bench_gate \
        --baseline benchmarks/BENCH_headline.json --report fresh.json \
        --metric speedup.total \
        --max scaling.slope=0.35 \
        --require products.digests_match=true

Metric names are dotted paths into the report JSON (dict keys only, so
``fabrics.shm.4.large.mb_per_s`` addresses nested tables).  Checks:

* ``--metric PATH`` (repeatable): the report value must be at least
  ``(1 - max-regression)`` times the baseline value at the same path.
* ``--min PATH=V`` / ``--max PATH=V`` (repeatable): absolute bounds on
  report values, independent of the baseline.
* ``--require PATH=V`` (repeatable): exact equality; ``V`` is parsed as
  JSON when possible (``true``, ``1.5``) and compared as a string
  otherwise.

Exit status 0 when every check passes, 1 otherwise; every check prints
one line either way so CI logs show the full scoreboard.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Tuple

__all__ = ["resolve_path", "run_gate", "main"]


def resolve_path(doc: Any, path: str) -> Any:
    """Walk a dotted path through nested dicts; raises KeyError with the
    full path on a missing segment."""
    node = doc
    for seg in path.split("."):
        if not isinstance(node, dict) or seg not in node:
            raise KeyError(path)
        node = node[seg]
    return node


def _parse_bound(spec: str) -> Tuple[str, float]:
    path, _, raw = spec.partition("=")
    if not _ or not path:
        raise ValueError(f"expected PATH=VALUE, got {spec!r}")
    return path, float(raw)


def _parse_require(spec: str) -> Tuple[str, Any]:
    path, _, raw = spec.partition("=")
    if not _ or not path:
        raise ValueError(f"expected PATH=VALUE, got {spec!r}")
    try:
        return path, json.loads(raw)
    except ValueError:
        return path, raw


def run_gate(report: dict, baseline: dict | None, metrics: List[str],
             max_regression: float, mins: List[Tuple[str, float]],
             maxs: List[Tuple[str, float]],
             requires: List[Tuple[str, Any]]) -> List[str]:
    """Run every check; returns the list of failure messages (empty means
    the gate is green).  Prints one scoreboard line per check."""
    failures: List[str] = []

    def fail(msg: str) -> None:
        print(f"FAIL: {msg}")
        failures.append(msg)

    for path in metrics:
        if baseline is None:
            fail(f"--metric {path} requires --baseline")
            continue
        try:
            ours = float(resolve_path(report, path))
        except KeyError:
            fail(f"{path} missing from report")
            continue
        try:
            theirs = float(resolve_path(baseline, path))
        except KeyError:
            fail(f"{path} missing from baseline")
            continue
        floor = (1.0 - max_regression) * theirs
        if ours < floor:
            fail(f"{path} {ours:.3f} regressed >{max_regression:.0%} vs "
                 f"baseline {theirs:.3f} (floor {floor:.3f})")
        else:
            print(f"ok: {path} {ours:.3f} vs baseline {theirs:.3f} "
                  f"(floor {floor:.3f})")

    for path, bound in mins:
        try:
            ours = float(resolve_path(report, path))
        except KeyError:
            fail(f"{path} missing from report")
            continue
        if ours < bound:
            fail(f"{path} {ours:.3f} < required minimum {bound:.3f}")
        else:
            print(f"ok: {path} {ours:.3f} >= {bound:.3f}")

    for path, bound in maxs:
        try:
            ours = float(resolve_path(report, path))
        except KeyError:
            fail(f"{path} missing from report")
            continue
        if ours > bound:
            fail(f"{path} {ours:.3f} > allowed maximum {bound:.3f}")
        else:
            print(f"ok: {path} {ours:.3f} <= {bound:.3f}")

    for path, expected in requires:
        try:
            ours = resolve_path(report, path)
        except KeyError:
            fail(f"{path} missing from report")
            continue
        if ours != expected:
            fail(f"{path} is {ours!r}, required {expected!r}")
        else:
            print(f"ok: {path} == {expected!r}")

    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.tools.bench_gate",
        description="Gate a fresh benchmark report against a committed "
                    "baseline and absolute thresholds")
    ap.add_argument("--report", required=True, metavar="JSON",
                    help="fresh benchmark report to check")
    ap.add_argument("--baseline", metavar="JSON",
                    help="committed baseline (required for --metric)")
    ap.add_argument("--metric", action="append", default=[], metavar="PATH",
                    help="dotted path gated on regression vs the baseline "
                         "(repeatable)")
    ap.add_argument("--max-regression", type=float, default=0.2,
                    help="allowed fractional regression for --metric "
                         "checks (default 0.2)")
    ap.add_argument("--min", action="append", default=[], metavar="PATH=V",
                    dest="mins", help="absolute floor on a report value")
    ap.add_argument("--max", action="append", default=[], metavar="PATH=V",
                    dest="maxs", help="absolute cap on a report value")
    ap.add_argument("--require", action="append", default=[],
                    metavar="PATH=V",
                    help="exact-equality requirement on a report value")
    args = ap.parse_args(argv)

    with open(args.report) as fh:
        report = json.load(fh)
    baseline = None
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)

    try:
        mins = [_parse_bound(s) for s in args.mins]
        maxs = [_parse_bound(s) for s in args.maxs]
        requires = [_parse_require(s) for s in args.require]
    except ValueError as exc:
        ap.error(str(exc))

    failures = run_gate(report, baseline, args.metric, args.max_regression,
                        mins, maxs, requires)
    if failures:
        print(f"bench gate: {len(failures)} check(s) failed")
        return 1
    print("bench gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
