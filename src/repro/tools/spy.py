"""Spy: post-run validation of a replicated execution (à la Legion Spy).

Legion ships a validation tool (Legion Spy) that checks a run's recorded
event graph against the program's region requirements.  This module is the
analogue for this runtime: given a finished :class:`Runtime`, it re-derives
what the dependence analysis *should* have concluded and reports every
discrepancy:

* **missing dependence** — two interfering point tasks with no path between
  them (and no covering fence when they live on different shards);
* **spurious edge** — a recorded edge between tasks the oracle says are
  independent (precision bug: legal but performance-relevant);
* **backward edge** — an edge against program order (would deadlock);
* **cycle** — the graph is not a DAG;
* **malformed group** — a group launch whose points interfere pairwise.

`validate_run` returns a :class:`SpyReport`; the test-suite runs it over
every functional app and also checks the negative controls (corrupting a
graph must produce findings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from ..core.operation import PointTask
from ..oracle import tasks_interfere
from ..runtime.runtime import Runtime

__all__ = ["SpyFinding", "SpyReport", "validate_run"]


@dataclass(frozen=True)
class SpyFinding:
    kind: str           # 'missing' | 'spurious' | 'backward' | 'cycle' | 'group'
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.kind}] {self.detail}"


@dataclass
class SpyReport:
    findings: List[SpyFinding] = field(default_factory=list)
    tasks_checked: int = 0
    pairs_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_kind(self, kind: str) -> List[SpyFinding]:
        return [f for f in self.findings if f.kind == kind]

    def render(self) -> str:
        if self.clean:
            return (f"spy: clean — {self.tasks_checked} tasks, "
                    f"{self.pairs_checked} pairs checked")
        lines = [f"spy: {len(self.findings)} finding(s):"]
        lines += [f"  {f}" for f in self.findings]
        return "\n".join(lines)


def _reachability(tasks, deps):
    from collections import defaultdict

    succ = defaultdict(set)
    for a, b in deps:
        succ[a].add(b)
    cache = {}

    def reach(t):
        if t in cache:
            return cache[t]
        cache[t] = set()
        out = set()
        for nxt in succ[t]:
            out.add(nxt)
            out |= reach(nxt)
        cache[t] = out
        return out

    return {t: reach(t) for t in tasks}


def validate_run(runtime: Runtime, check_precision: bool = True
                 ) -> SpyReport:
    """Re-derive and check the analysis products of a finished run."""
    report = SpyReport()
    graph = runtime.pipeline.fine_result.graph
    coarse = runtime.pipeline.coarse_result
    tasks: List[PointTask] = sorted(
        graph.tasks, key=lambda t: (t.op.seq, str(t.point)))
    report.tasks_checked = len(tasks)

    # Structural checks.
    if not graph.is_acyclic():
        report.findings.append(SpyFinding("cycle", "task graph has a cycle"))
        return report
    for a, b in graph.deps:
        if a.op.seq > b.op.seq:
            report.findings.append(SpyFinding(
                "backward",
                f"{a.op.name}[{a.point}] -> {b.op.name}[{b.point}] points "
                f"against program order"))
        elif a.op.seq == b.op.seq and a.op is b.op:
            report.findings.append(SpyFinding(
                "group",
                f"edge inside one group launch {a.op.name}: points "
                f"{a.point} and {b.point} interfere"))

    # Group well-formedness: points of one launch must be independent.
    by_op = {}
    for t in tasks:
        by_op.setdefault(t.op, []).append(t)
    for op, pts in by_op.items():
        if len(pts) < 2:
            continue
        for i, ta in enumerate(pts):
            for tb in pts[i + 1:]:
                report.pairs_checked += 1
                if tasks_interfere(ta.requirements, tb.requirements):
                    report.findings.append(SpyFinding(
                        "group",
                        f"group {op.name} points {ta.point}/{tb.point} are "
                        f"not independent"))

    reach = _reachability(tasks, graph.deps)
    edge_set: Set[Tuple[PointTask, PointTask]] = set(graph.deps)

    # Completeness and precision against the oracle.
    for i, earlier in enumerate(tasks):
        for later in tasks[i + 1:]:
            if later.op is earlier.op:
                continue
            if earlier.op.seq >= later.op.seq:
                continue
            report.pairs_checked += 1
            interferes = tasks_interfere(earlier.requirements,
                                         later.requirements)
            ordered = later in reach[earlier]
            if interferes and not ordered:
                # Cross-shard orderings may flow through a fence instead of
                # a recorded edge (trace replays drop boundary edges).
                covered = any(
                    coarse.covers_cross_edge(earlier.op.seq, later.op.seq,
                                             req.region, req.fields)
                    for req in later.requirements)
                if not covered:
                    report.findings.append(SpyFinding(
                        "missing",
                        f"{earlier.op.name}[{earlier.point}] ⇒ "
                        f"{later.op.name}[{later.point}] is unordered"))
            if check_precision and not interferes \
                    and (earlier, later) in edge_set:
                report.findings.append(SpyFinding(
                    "spurious",
                    f"edge {earlier.op.name}[{earlier.point}] -> "
                    f"{later.op.name}[{later.point}] between independent "
                    f"tasks"))
    return report
