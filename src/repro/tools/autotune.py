"""Mapper auto-tuning: search DCR's mapper-facing knobs on the simulator.

The paper leaves replication/sharding decisions to the mapper ("users
decide when best to deploy DCR") and notes they could be automated.  This
tool is that automation for the performance layer: given an application's
operation stream and a machine, sweep the DCR model's mapper-visible
configuration space — sharding policy, shards-per, operation window,
tracing — and report the fastest configuration with the measured times of
every candidate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..models.dcr import DCRModel
from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.machine import MachineSpec
from ..sim.workload import SimProgram

__all__ = ["TuningResult", "tune_mapper"]


@dataclass(frozen=True)
class MapperConfig:
    sharding: str = "blocked"
    shards_per: str = "node"
    window: Optional[int] = None
    tracing: bool = True

    def describe(self) -> str:
        win = "inf" if self.window is None else str(self.window)
        return (f"sharding={self.sharding} shards_per={self.shards_per} "
                f"window={win} tracing={self.tracing}")


@dataclass
class TuningResult:
    best: MapperConfig
    best_time: float
    candidates: List[Tuple[MapperConfig, float]] = field(default_factory=list)

    def speedup_over_worst(self) -> float:
        worst = max(t for _c, t in self.candidates)
        return worst / self.best_time if self.best_time else 1.0

    def render(self) -> str:
        lines = ["mapper auto-tuning result", "========================="]
        for config, t in sorted(self.candidates, key=lambda ct: ct[1]):
            marker = " <- best" if config == self.best else ""
            lines.append(f"{t * 1e3:10.4f} ms/iter  {config.describe()}"
                         f"{marker}")
        return "\n".join(lines)


def tune_mapper(build_program: Callable[[], SimProgram],
                machine: MachineSpec,
                costs: CostModel = DEFAULT_COSTS,
                shardings: Sequence[str] = ("blocked", "cyclic"),
                shards_pers: Sequence[str] = ("node",),
                windows: Sequence[Optional[int]] = (None,),
                tracings: Sequence[bool] = (True, False)) -> TuningResult:
    """Exhaustively evaluate mapper configurations; returns the ranking.

    ``build_program`` is called once per candidate (op streams carry
    mutable per-run state such as ``seq`` assignments).
    """
    candidates: List[Tuple[MapperConfig, float]] = []
    for sharding, shards_per, window, tracing in itertools.product(
            shardings, shards_pers, windows, tracings):
        config = MapperConfig(sharding=sharding, shards_per=shards_per,
                              window=window, tracing=tracing)
        model = DCRModel(machine, costs, shards_per=shards_per,
                         tracing=tracing, sharding=sharding, window=window)
        result = model.run(build_program())
        candidates.append((config, result.iteration_time))
    best, best_time = min(candidates, key=lambda ct: ct[1])
    return TuningResult(best=best, best_time=best_time,
                        candidates=candidates)
