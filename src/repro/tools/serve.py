"""CLI: run the DCR service under synthetic many-client load.

::

    python -m repro.tools.serve --shards 3 --clients 2 --submissions 6
    python -m repro.tools.serve --shards 3 --backend multiprocess \\
        --clients 4 --submissions 8 --chaos --policy restart \\
        --report-dir out/recovery --json out/service.json

Starts a persistent :class:`~repro.service.DCRService`, drives it with
the open-loop load generator (``--clients`` concurrent sessions each
submitting ``--submissions`` programs drawn from ``--shapes`` program
shapes), and prints a service summary.  ``--chaos`` injects a shard crash
into one mid-stream submission, so the run also exercises the configured
``--policy`` (gang rebuild + re-execution).

Exit status: 0 iff every completed submission was conformant, nothing
failed, at least ``--require-hits`` submissions were served from analysis
templates, and (under ``--chaos``) at least one recovery happened — the
CI ``service`` job gates on it directly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from ..faults.plan import FaultPlan, PlannedCrash
from ..resilience import RecoveryPolicy, ResilienceConfig
from ..service import DCRService, run_load
from ..service.gang import GANG_BACKENDS
from ..service.loadgen import make_shape_pool

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.serve",
        description="Serve a stream of client sessions on one persistent "
                    "shard gang and print the service summary.")
    parser.add_argument("--shards", type=int, default=3,
                        help="gang width (default 3)")
    parser.add_argument("--backend", choices=GANG_BACKENDS,
                        default="loopback",
                        help="gang backend (default loopback)")
    parser.add_argument("--clients", type=int, default=2,
                        help="concurrent client sessions (default 2)")
    parser.add_argument("--submissions", type=int, default=6,
                        help="programs per client (default 6)")
    parser.add_argument("--shapes", type=int, default=2,
                        help="distinct program shapes in the pool "
                             "(default 2; smaller = more template hits)")
    parser.add_argument("--tiles", type=int, default=8,
                        help="tiles per program (default 8)")
    parser.add_argument("--steps", type=int, default=2,
                        help="stencil steps per program (default 2)")
    parser.add_argument("--rate", type=float, default=0.0,
                        help="per-client open-loop arrival rate in Hz "
                             "(default 0 = as fast as possible)")
    parser.add_argument("--batch", type=int, default=16,
                        help="determinism check window (default 16)")
    parser.add_argument("--seed", type=int, default=0,
                        help="load generator seed (default 0)")
    parser.add_argument("--policy", choices=[p.value for p in RecoveryPolicy],
                        default="restart",
                        help="gang recovery policy (default restart)")
    parser.add_argument("--chaos", action="store_true",
                        help="inject a shard crash into one mid-stream "
                             "submission (exercises the recovery policy)")
    parser.add_argument("--require-hits", type=int, default=0, metavar="N",
                        help="fail unless >= N submissions were served "
                             "from analysis templates")
    parser.add_argument("--require-rejoin", action="store_true",
                        help="fail unless at least one live respawn "
                             "healed the gang back to full width")
    parser.add_argument("--respawn-budget", type=int, default=2,
                        help="live respawn attempts before the REJOIN "
                             "policy degrades (default 2)")
    parser.add_argument("--job-deadline", type=float, default=None,
                        metavar="S",
                        help="attach a start deadline (seconds) to every "
                             "load submission (deadline-aware admission)")
    parser.add_argument("--health-json", metavar="PATH", default=None,
                        help="write the post-load health endpoint "
                             "snapshot as JSON")
    parser.add_argument("--deadline", type=float, default=10.0,
                        help="transport receive deadline in seconds "
                             "(default 10; also bounds crash detection)")
    parser.add_argument("--profile-dir", metavar="DIR", default=None,
                        help="save per-shard and service profiles")
    parser.add_argument("--report-dir", metavar="DIR", default=None,
                        help="write recovery reports as JSON here")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the service summary as JSON")
    args = parser.parse_args(argv)

    if args.shards < 1 or args.clients < 1 or args.submissions < 1:
        print("error: --shards/--clients/--submissions must be >= 1",
              file=sys.stderr)
        return 1

    resilience = ResilienceConfig(policy=RecoveryPolicy(args.policy),
                                  max_recoveries=4,
                                  report_dir=args.report_dir,
                                  respawn_budget=args.respawn_budget)
    service = DCRService(args.shards, backend=args.backend,
                         batch=args.batch, resilience=resilience,
                         deadline_s=args.deadline,
                         job_timeout_s=max(60.0, args.deadline * 6),
                         profile_dir=args.profile_dir)
    chaos_failures = 0
    with service:
        if args.chaos:
            # One poisoned submission through its own session first: the
            # gang death + rebuild happens mid-stream relative to the load
            # that follows.  Under ABORT/LOCALIZE the submission fails by
            # design; the service must keep serving either way.
            shape = make_shape_pool(1, args.tiles, args.steps,
                                    seed=args.seed)[0]
            chaos = service.open_session("chaos")
            fault = FaultPlan(crashes=[PlannedCrash(
                shard=args.shards - 1, call=5)])
            try:
                chaos.submit(shape, fault=fault).result(
                    timeout=service.job_timeout_s * 4)
            except Exception:
                chaos_failures += 1
            chaos.close()
        load = run_load(service, clients=args.clients,
                        submissions_per_client=args.submissions,
                        shapes=args.shapes, tiles=args.tiles,
                        steps=args.steps, rate_hz=args.rate,
                        seed=args.seed, deadline_s=args.job_deadline)
        stats = service.stats()
        health = service.health()

    retried = stats["recoveries"] > 0
    summary = {
        "backend": args.backend,
        "shards_initial": args.shards,
        "shards_final": stats["shards"],
        "clients": load.clients,
        "submitted": load.submitted,
        "completed": load.completed,
        "failed": load.failed,
        "rejected": load.rejected,
        "expired": load.expired,
        "backpressure_waits": load.backpressure_waits,
        "deadline_rejects": load.deadline_rejects,
        "template_hits": load.template_hits,
        "programs_per_s": round(load.programs_per_s, 2),
        "wall_s": round(load.wall_s, 3),
        "recoveries": stats["recoveries"],
        "respawns": stats["respawns"],
        "health": health["status"],
        "chaos": bool(args.chaos),
        "chaos_submission_failed": chaos_failures,
        "policy": args.policy,
        "templates": stats["templates"],
    }
    for key, value in summary.items():
        print(f"{key + ':':22} {value}")

    ok = load.failed == 0 and load.completed == load.submitted
    if args.require_hits and load.template_hits < args.require_hits:
        print(f"FAIL: {load.template_hits} template hits < required "
              f"{args.require_hits}", file=sys.stderr)
        ok = False
    if args.chaos and not retried:
        print("FAIL: --chaos ran but no gang recovery happened",
              file=sys.stderr)
        ok = False
    if args.chaos and args.policy in ("degrade", "restart", "rejoin") \
            and chaos_failures:
        print("FAIL: poisoned submission was not recovered under "
              f"policy {args.policy}", file=sys.stderr)
        ok = False
    if args.require_rejoin:
        if stats["respawns"] < 1:
            print("FAIL: --require-rejoin but no live respawn happened",
                  file=sys.stderr)
            ok = False
        elif stats["shards"] != args.shards:
            print(f"FAIL: gang ended at width {stats['shards']}, not "
                  f"healed back to {args.shards}", file=sys.stderr)
            ok = False

    if args.health_json:
        os.makedirs(os.path.dirname(args.health_json) or ".",
                    exist_ok=True)
        with open(args.health_json, "w", encoding="utf-8") as fh:
            json.dump(health, fh, indent=2)
        print(f"health snapshot written to {args.health_json}")
    if args.json:
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
        print(f"service summary written to {args.json}")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
