"""Persistent shard gangs: N long-lived replicas serving a job stream.

A :class:`ServiceGang` is the execution substrate of the service: it
launches N :class:`~repro.dist.worker.ServiceShardWorker` replicas — as
threads over a :class:`~repro.dist.transport.LoopbackFabric` or as forked
processes over a :class:`~repro.dist.transport.PipeFabric` — and keeps
them alive across many programs.  Each :meth:`run_job` broadcasts one
job to every replica and collects N :class:`~repro.dist.report
.ShardReport`\\ s under a single shared deadline.

Failure model (the crash path the service's DEGRADE/RESTART policies
recover from): a replica that dies mid-job — an injected
:class:`~repro.faults.injector.ShardCrash`, a real bug, anything — takes
the whole gang down, because its peers are parked in a collective that can
never complete.  Both fabrics convert that into fast failure rather than a
hang (``mark_closed`` / pipe EOF → :class:`~repro.dist.transport
.PeerGone`), every worker exits its serve loop, and :meth:`run_job` raises
:class:`GangFailure` naming the culprit ranks.  The gang is then inert
(``alive`` is False); recovering is the *service's* job — it builds a
fresh gang at whatever width the recovery policy picked.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from typing import Any, Dict, List, Optional

from ..dist.programs import ProgramSpec
from ..dist.report import ShardReport
from ..dist.transport import DEFAULT_DEADLINE_S, LoopbackFabric, PipeFabric
from ..dist.worker import ServiceShardWorker
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan, PlannedCrash

__all__ = ["GangFailure", "ServiceGang", "GANG_BACKENDS"]

GANG_BACKENDS = ("loopback", "multiprocess")


class GangFailure(RuntimeError):
    """The gang died (or timed out) executing one job.

    ``culprit_shards`` names the ranks whose workers reported primary
    failures (crashes and divergences, as opposed to the peers that merely
    observed the resulting dead collectives) — the duck-typed attribute
    :func:`repro.resilience.identify_culprits` looks for.
    """

    def __init__(self, job_id: str, failures: List[str],
                 culprit_shards: Optional[List[int]] = None):
        self.job_id = job_id
        self.failures = list(failures)
        self.culprit_shards = list(culprit_shards or [])
        super().__init__(
            f"gang failed job {job_id or '<unnamed>'}: "
            + "; ".join(self.failures))


def _fault_payload(plan: Optional[FaultPlan]) -> Optional[dict]:
    """Wire form of the (crash-only) fault plans the service injects."""
    if plan is None:
        return None
    return {"seed": plan.seed,
            "crashes": [[c.shard, c.call] for c in plan.crashes],
            "rates": dict(plan.rates)}


def _fault_injector(payload: Optional[dict]) -> Optional[FaultInjector]:
    if payload is None:
        return None
    plan = FaultPlan(
        seed=int(payload.get("seed", 0)),
        crashes=[PlannedCrash(int(s), int(c))
                 for s, c in payload.get("crashes", ())],
        rates={str(k): float(v)
               for k, v in payload.get("rates", {}).items()})
    return FaultInjector(plan)


def _primary_failure(message: str) -> bool:
    """Did this worker *cause* the gang death, or just observe it?

    Peers of a dead replica fail with ``PeerGone``/``CollectiveTimeout``;
    anything else (``ShardCrash``, a determinism violation, a real bug) is
    a primary failure and its rank a culprit.
    """
    return not message.startswith(("PeerGone", "CollectiveTimeout"))


class ServiceGang:
    """N persistent replicas plus the driver-side job broadcast."""

    def __init__(self, num_shards: int, backend: str = "loopback",
                 batch: int = 64, deadline_s: float = DEFAULT_DEADLINE_S,
                 job_timeout_s: float = 60.0,
                 profile_dir: Optional[str] = None):
        if backend not in GANG_BACKENDS:
            raise ValueError(f"unknown gang backend {backend!r}; "
                             f"expected one of {GANG_BACKENDS}")
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.num_shards = num_shards
        self.backend = backend
        self.batch = batch
        self.deadline_s = deadline_s
        self.job_timeout_s = job_timeout_s
        self.profile_dir = profile_dir
        self.jobs_run = 0
        self._alive = False
        self._started = False
        # loopback state
        self._threads: List[threading.Thread] = []
        self._cmd_queues: List["queue.Queue"] = []
        self._res_queues: List["queue.Queue"] = []
        self._fabric: Optional[LoopbackFabric] = None
        # multiprocess state
        self._procs: List[Any] = []
        self._conns: List[Any] = []

    # -- lifecycle -----------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    def start(self) -> "ServiceGang":
        if self._started:
            raise RuntimeError("gang already started")
        self._started = True
        if self.backend == "loopback":
            self._start_loopback()
        else:
            self._start_multiprocess()
        self._alive = True
        return self

    def stop(self) -> None:
        """Graceful shutdown; safe to call on a dead or stopped gang."""
        if not self._started:
            return
        self._alive = False
        if self.backend == "loopback":
            for q in self._cmd_queues:
                q.put(("stop",))
            deadline = time.monotonic() + 5.0
            for t in self._threads:
                t.join(max(0.0, deadline - time.monotonic()))
        else:
            for conn in self._conns:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            deadline = time.monotonic() + 5.0
            for proc in self._procs:
                proc.join(max(0.0, deadline - time.monotonic()))
            for proc in self._procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(5.0)
            for conn in self._conns:
                try:
                    conn.close()
                except OSError:
                    pass

    def __enter__(self) -> "ServiceGang":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- the one public operation --------------------------------------------

    def run_job(self, spec: ProgramSpec, job_id: str = "",
                program_id: str = "", session: str = "",
                capture_digests: bool = False,
                fault: Optional[FaultPlan] = None) -> List[ShardReport]:
        """Broadcast one program to every replica; N conformant reports.

        Raises :class:`GangFailure` — and marks the gang dead — if any
        replica errors or the shared deadline passes.  ``fault`` scopes an
        injected fault plan to this job (chaos testing / CI).
        """
        if not self._alive:
            raise GangFailure(job_id, ["gang is down"], [])
        self.jobs_run += 1
        job = {"spec": spec.to_payload(), "job_id": job_id,
               "program_id": program_id, "session": session,
               "capture": capture_digests,
               "fault": _fault_payload(fault)}
        if self.backend == "loopback":
            results = self._broadcast_loopback(job)
        else:
            results = self._broadcast_multiprocess(job)
        reports: Dict[int, ShardReport] = {}
        failures: List[str] = []
        culprits: List[int] = []
        for rank, (status, payload) in sorted(results.items()):
            if status == "ok":
                reports[rank] = payload if isinstance(payload, ShardReport) \
                    else ShardReport.from_payload(payload)
            else:
                failures.append(f"shard {rank}: {payload}")
                if status == "error" and _primary_failure(str(payload)):
                    culprits.append(rank)
        if failures:
            self._alive = False
            raise GangFailure(job_id, failures, culprits)
        return [reports[r] for r in sorted(reports)]

    # -- loopback backend (threads) ------------------------------------------

    def _start_loopback(self) -> None:
        self._fabric = LoopbackFabric(self.num_shards,
                                      deadline_s=self.deadline_s)
        self._cmd_queues = [queue.Queue() for _ in range(self.num_shards)]
        self._res_queues = [queue.Queue() for _ in range(self.num_shards)]
        self._threads = [
            threading.Thread(target=self._serve_loopback, args=(rank,),
                             name=f"svc-shard-{rank}", daemon=True)
            for rank in range(self.num_shards)]
        for t in self._threads:
            t.start()

    def _serve_loopback(self, rank: int) -> None:
        worker = ServiceShardWorker(
            self._fabric.transport(rank), backend="loopback",
            batch=self.batch, profile_dir=self.profile_dir)
        while True:
            cmd = self._cmd_queues[rank].get()
            if cmd[0] == "stop":
                worker.save_profile()
                return
            job = cmd[1]
            try:
                report = worker.run_job(
                    ProgramSpec.from_payload(job["spec"]),
                    program_id=job["program_id"], session=job["session"],
                    capture_digests=job["capture"],
                    injector=_fault_injector(job["fault"]))
            except BaseException as exc:  # noqa: BLE001 - reported upward
                # Peers block in the dead replica's collective; declare
                # this rank closed so they fail fast with PeerGone.
                self._fabric.mark_closed(rank)
                self._res_queues[rank].put(
                    ("error", f"{type(exc).__name__}: {exc}"))
                worker.save_profile()
                return
            self._res_queues[rank].put(("ok", report))

    def _broadcast_loopback(self, job: dict) -> Dict[int, tuple]:
        for q in self._cmd_queues:
            q.put(("job", job))
        deadline = time.monotonic() + self.job_timeout_s
        results: Dict[int, tuple] = {}
        for rank, q in enumerate(self._res_queues):
            try:
                results[rank] = q.get(
                    timeout=max(0.0, deadline - time.monotonic()))
            except queue.Empty:
                results[rank] = ("timeout",
                                 f"no result within {self.job_timeout_s}s")
        return results

    # -- multiprocess backend (fork) -----------------------------------------

    def _start_multiprocess(self) -> None:
        ctx = multiprocessing.get_context("fork")
        fabric = PipeFabric(self.num_shards, deadline_s=self.deadline_s)
        for rank in range(self.num_shards):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_service_worker_main,
                args=(fabric, rank, self.batch, self.profile_dir,
                      child_conn),
                name=f"repro-svc-shard-{rank}", daemon=True)
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        # Workers hold their claimed mesh endpoints; drop the parent's
        # copies so a dead worker's peers observe EOF, not a deadline.
        fabric.close_all()

    def _broadcast_multiprocess(self, job: dict) -> Dict[int, tuple]:
        results: Dict[int, tuple] = {}
        for rank, conn in enumerate(self._conns):
            try:
                conn.send(("job", job))
            except (BrokenPipeError, OSError):
                results[rank] = ("error", "worker control pipe is closed")
        deadline = time.monotonic() + self.job_timeout_s
        for rank, conn in enumerate(self._conns):
            if rank in results:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                if conn.poll(remaining):
                    results[rank] = conn.recv()
                else:
                    results[rank] = (
                        "timeout",
                        f"no result within {self.job_timeout_s}s "
                        f"(pid {self._procs[rank].pid})")
            except (EOFError, OSError):
                results[rank] = ("error", "worker died without a result")
        return results


def _service_worker_main(fabric: PipeFabric, rank: int, batch: int,
                         profile_dir: Optional[str], conn: Any) -> None:
    """Forked child: claim the mesh, then serve jobs until stop or death."""
    transport = None
    worker = None
    try:
        fabric.close_other_ends(rank)
        transport = fabric.transport(rank)
        worker = ServiceShardWorker(transport, backend="multiprocess",
                                    batch=batch, profile_dir=profile_dir)
        while True:
            try:
                cmd = conn.recv()
            except (EOFError, OSError):
                return                      # driver is gone; fold quietly
            if cmd[0] == "stop":
                return
            job = cmd[1]
            try:
                report = worker.run_job(
                    ProgramSpec.from_payload(job["spec"]),
                    program_id=job["program_id"], session=job["session"],
                    capture_digests=job["capture"],
                    injector=_fault_injector(job["fault"]))
            except BaseException as exc:  # noqa: BLE001 - reported upward
                try:
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
                except (BrokenPipeError, OSError):
                    pass
                return   # die: the transport closes in finally, peers EOF
            conn.send(("ok", report.to_payload()))
    finally:
        if worker is not None:
            worker.save_profile()
        if transport is not None:
            transport.close()
        try:
            conn.close()
        except OSError:
            pass
