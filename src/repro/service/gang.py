"""Persistent shard gangs: N long-lived replicas serving a job stream.

A :class:`ServiceGang` is the execution substrate of the service: it
launches N :class:`~repro.dist.worker.ServiceShardWorker` replicas — as
threads over a :class:`~repro.dist.transport.LoopbackFabric` or as forked
processes over any process fabric (``multiprocess`` pipes, ``shm``
shared-memory rings, ``tcp`` sockets) — and keeps
them alive across many programs.  Each :meth:`run_job` broadcasts one
job to every replica and collects N :class:`~repro.dist.report
.ShardReport`\\ s under a single shared deadline.

Self-healing (the REJOIN policy's substrate):

* every worker runs a **heartbeat ticker** beside its serve loop,
  beating on a deterministic Threefry schedule over the same control
  channel results travel on; a driver-side **channel pump** thread
  drains every channel into per-rank mailboxes and feeds the beats to a
  :class:`~repro.dist.heartbeat.HeartbeatMonitor`, so a silent shard is
  *declared dead* at ``phi_dead`` beat-intervals — far below the
  transport's receive deadline — and quarantined mid-job;
* a worker that observes a **secondary** failure (``PeerGone`` /
  ``CollectiveTimeout`` echoes of somebody else's death) reports it and
  **parks** in its serve loop instead of dying, so :meth:`rejoin` can
  fork a replacement for just the culprit rank, re-endpoint the parked
  survivors onto a fresh fabric (every rank rebinds simultaneously, so
  collective op ordinals restart in lockstep), and return the gang to
  full width without a rebuild;
* failure *attribution* is structured (:func:`classify_worker_failure`),
  not string matching: crashes blame the crashed rank, determinism
  violations blame exactly the divergent shards even though every rank
  raises, and echoes blame nobody.

A rank whose worker reports a **primary** failure (crash, divergence, a
real bug) still dies — its peers fail fast via ``mark_closed`` / pipe
EOF — and :meth:`run_job` raises :class:`GangFailure` naming the culprit
ranks plus the monitor's suspicion snapshot.  The gang is then inert
(``alive`` is False); the *service* decides whether to heal it in place
(:meth:`rejoin`) or rebuild it at some width per the recovery policy.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from ..core.determinism import ControlDeterminismViolation
from ..dist.heartbeat import (HB_SUSPECTED, HeartbeatMonitor,
                              heartbeat_interval)
from ..dist.programs import ProgramSpec
from ..dist.report import ShardReport
from ..dist.transport import (DEFAULT_DEADLINE_S, PROCESS_BACKENDS,
                              LoopbackFabric, fabric_for_backend,
                              transport_from_claim)
from ..dist.worker import ServiceShardWorker
from ..faults.injector import CollectiveTimeout, FaultInjector, ShardCrash
from ..faults.plan import (FaultPlan, PlannedBeatLoss, PlannedCrash,
                           PlannedRespawnFail, PlannedStall)
from ..obs.events import (CAT_RESILIENCE, CONTROL_SHARD, EV_HB_DEAD,
                          EV_HB_SUSPECT)
from ..obs.profiler import Profiler

__all__ = ["GangFailure", "RejoinError", "ServiceGang", "GANG_BACKENDS",
           "classify_worker_failure"]

GANG_BACKENDS = ("loopback",) + PROCESS_BACKENDS


class GangFailure(RuntimeError):
    """The gang died (or timed out) executing one job.

    ``culprit_shards`` names the ranks whose workers reported primary
    failures (crashes and divergences, as opposed to the peers that merely
    observed the resulting dead collectives) — the duck-typed attribute
    :func:`repro.resilience.identify_culprits` looks for.  ``suspicion``
    is the heartbeat monitor's snapshot at failure time, carried into
    recovery reports.
    """

    def __init__(self, job_id: str, failures: List[str],
                 culprit_shards: Optional[List[int]] = None,
                 suspicion: Optional[Dict[str, Any]] = None):
        self.job_id = job_id
        self.failures = list(failures)
        self.culprit_shards = list(culprit_shards or [])
        self.suspicion = dict(suspicion or {})
        super().__init__(
            f"gang failed job {job_id or '<unnamed>'}: "
            + "; ".join(self.failures))


class RejoinError(RuntimeError):
    """A live rejoin did not complete (replacement died mid-rejoin).

    The gang is left inert but safely stoppable; ``culprit_shards`` names
    the ranks that never acknowledged the new generation, so the service
    can replan (another respawn attempt, or the DEGRADE fallback once the
    respawn budget is exhausted).
    """

    def __init__(self, culprit_shards: List[int], message: str):
        self.culprit_shards = list(culprit_shards)
        super().__init__(message)


def _fault_payload(plan: Optional[FaultPlan]) -> Optional[dict]:
    """Wire form of the fault plans the service injects."""
    if plan is None:
        return None
    return {"seed": plan.seed,
            "crashes": [[c.shard, c.call] for c in plan.crashes],
            "beat_losses": [[b.shard, b.beat, b.count]
                            for b in plan.beat_losses],
            "stalls": [[s.shard, s.beat, s.beats] for s in plan.stalls],
            "respawn_fails": [[f.rank, f.attempt]
                              for f in plan.respawn_fails],
            "rates": dict(plan.rates)}


def _fault_injector(payload: Optional[dict]) -> Optional[FaultInjector]:
    if payload is None:
        return None
    plan = FaultPlan(
        seed=int(payload.get("seed", 0)),
        crashes=[PlannedCrash(int(s), int(c))
                 for s, c in payload.get("crashes", ())],
        beat_losses=[PlannedBeatLoss(int(s), int(b), int(n))
                     for s, b, n in payload.get("beat_losses", ())],
        stalls=[PlannedStall(int(s), int(b), int(n))
                for s, b, n in payload.get("stalls", ())],
        respawn_fails=[PlannedRespawnFail(int(r), int(a))
                       for r, a in payload.get("respawn_fails", ())],
        rates={str(k): float(v)
               for k, v in payload.get("rates", {}).items()})
    return FaultInjector(plan)


def _primary_failure(message: str) -> bool:
    """String-prefix fallback for legacy (pre-structured) error payloads.

    Kept only for payloads that cross the channel as bare strings;
    everything the workers emit today is classified structurally by
    :func:`classify_worker_failure` *before* stringification, which is
    what fixes the simultaneous-multi-crash attribution (a determinism
    violation raises on **all** ranks — prefix matching would have blamed
    every one of them).
    """
    return not message.startswith(("PeerGone", "CollectiveTimeout"))


def classify_worker_failure(exc: BaseException, rank: int
                            ) -> "tuple[str, bool, List[int]]":
    """``(message, primary, culprits)`` for one worker's failure.

    * a :class:`~repro.faults.injector.ShardCrash` is primary and blames
      the crashed shard (which is ``rank`` itself — the injector fires in
      the crashing replica);
    * a :class:`~repro.core.determinism.ControlDeterminismViolation`
      raises on *every* rank simultaneously (the conformance allreduce
      makes the verdict global), so a rank is a culprit only if it is in
      ``divergent_shards`` — every rank still *names* the divergent set,
      letting the driver attribute correctly even under simultaneous
      multi-shard divergence;
    * ``PeerGone`` / ``CollectiveTimeout`` are secondary echoes of
      somebody else's death: not primary, no culprits — the worker that
      observes one parks for rejoin instead of dying;
    * anything else is a primary failure of ``rank`` (a real bug).
    """
    message = f"{type(exc).__name__}: {exc}"
    if isinstance(exc, ShardCrash):
        return message, True, [exc.shard]
    if isinstance(exc, ControlDeterminismViolation):
        divergent = sorted(getattr(exc, "divergent_shards", ()) or ())
        return message, rank in divergent, list(divergent)
    if isinstance(exc, CollectiveTimeout):   # includes PeerGone
        return message, False, []
    return message, True, [rank]


class _ChannelGone(Exception):
    """A worker's control channel hit EOF (the process is gone)."""


def _queue_reader(q: "queue.Queue") -> Callable[[], Optional[tuple]]:
    def read() -> Optional[tuple]:
        try:
            return q.get_nowait()
        except queue.Empty:
            return None
    return read


def _conn_reader(conn: Any) -> Callable[[], Optional[tuple]]:
    def read() -> Optional[tuple]:
        try:
            if conn.poll(0):
                return conn.recv()
            return None
        except (EOFError, OSError):
            raise _ChannelGone from None
    return read


def _ticker_loop(send_beat: Callable[[int], None], rank: int,
                 stop: threading.Event, interval_s: float, seed: int,
                 injector: Optional[FaultInjector]) -> None:
    """Worker-side heartbeat: deterministic schedule, injectable loss."""
    k = 0
    while not stop.is_set():
        if stop.wait(heartbeat_interval(seed, rank, k, interval_s)):
            return
        if not (injector is not None and injector.enabled
                and injector.drop_beat(rank, k)):
            try:
                send_beat(k)
            except Exception:  # noqa: BLE001 - channel gone: stop beating
                return
        k += 1


class ServiceGang:
    """N persistent replicas plus the driver-side job broadcast."""

    def __init__(self, num_shards: int, backend: str = "loopback",
                 batch: int = 64, deadline_s: float = DEFAULT_DEADLINE_S,
                 job_timeout_s: float = 60.0,
                 profile_dir: Optional[str] = None,
                 profiler: Optional[Profiler] = None,
                 hb_interval_s: float = 0.25, hb_seed: int = 0,
                 phi_suspect: float = 4.0, phi_dead: float = 12.0,
                 clock: Callable[[], float] = time.monotonic,
                 fault: Optional[FaultPlan] = None):
        if backend not in GANG_BACKENDS:
            raise ValueError(f"unknown gang backend {backend!r}; "
                             f"expected one of {GANG_BACKENDS}")
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.num_shards = num_shards
        self.backend = backend
        self.batch = batch
        self.deadline_s = deadline_s
        self.job_timeout_s = job_timeout_s
        self.profile_dir = profile_dir
        self.profiler = profiler if profiler is not None \
            else Profiler(enabled=False)
        self.hb_interval_s = hb_interval_s
        self.hb_seed = hb_seed
        self.phi_suspect = phi_suspect
        self.phi_dead = phi_dead
        self.jobs_run = 0
        self.respawns = 0
        self._clock = clock
        self._alive = False
        self._started = False
        self._stopped = False
        self._generation = 0
        # gang-level chaos plan (heartbeat loss / stalls / respawn
        # failures live here; per-job plans ride the job payload)
        self._fault = fault
        self._injector = FaultInjector(fault) if fault is not None else None
        # loopback state (rank-keyed so respawn replaces single entries)
        self._threads: Dict[int, threading.Thread] = {}
        self._cmd_queues: Dict[int, "queue.Queue"] = {}
        self._res_queues: Dict[int, "queue.Queue"] = {}
        self._fabric: Optional[LoopbackFabric] = None
        # multiprocess state (any process backend: pipe / shm / tcp)
        self._procs: Dict[int, Any] = {}
        self._conns: Dict[int, Any] = {}
        self._mesh_fabric: Optional[Any] = None
        # driver-side channel pump: raw channels -> per-rank mailboxes
        self._mailbox: Dict[int, "queue.Queue"] = {
            r: queue.Queue() for r in range(num_shards)}
        self._readers: Dict[int, Callable[[], Optional[tuple]]] = {}
        self._reader_lock = threading.Lock()
        self._monitor: Optional[HeartbeatMonitor] = None
        self._pump: Optional[threading.Thread] = None
        self._pump_stop = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def generation(self) -> int:
        return self._generation

    def start(self) -> "ServiceGang":
        if self._started:
            raise RuntimeError("gang already started")
        self._started = True
        self._monitor = HeartbeatMonitor(
            self.num_shards, self.hb_interval_s,
            phi_suspect=self.phi_suspect, phi_dead=self.phi_dead,
            clock=self._clock)
        if self.backend == "loopback":
            self._start_loopback()
        else:
            self._start_multiprocess()
        self._pump = threading.Thread(target=self._pump_loop,
                                      name="svc-gang-pump", daemon=True)
        self._pump.start()
        self._alive = True
        return self

    def stop(self) -> None:
        """Graceful shutdown; strictly idempotent, safe on a dead gang."""
        if self._stopped or not self._started:
            return
        self._stopped = True
        self._alive = False
        # The pump goes down first so worker exits don't get booked as
        # heartbeat deaths during an orderly shutdown.
        self._pump_stop.set()
        if self._pump is not None:
            self._pump.join(2.0)
        if self.backend == "loopback":
            for q in self._cmd_queues.values():
                q.put(("stop",))
            deadline = time.monotonic() + 5.0
            for t in self._threads.values():
                t.join(max(0.0, deadline - time.monotonic()))
        else:
            for conn in self._conns.values():
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            deadline = time.monotonic() + 5.0
            for proc in self._procs.values():
                proc.join(max(0.0, deadline - time.monotonic()))
            for proc in self._procs.values():
                if proc.is_alive():
                    proc.terminate()
                    proc.join(2.0)
                if proc.is_alive():
                    # SIGTERM is queued, not delivered, on a stopped
                    # process — SIGKILL is the no-orphan guarantee.
                    proc.kill()
                    proc.join(2.0)
            for conn in self._conns.values():
                try:
                    conn.close()
                except OSError:
                    pass
            if self._mesh_fabric is not None:
                # Unlinks shm segments / closes any endpoints the parent
                # still holds; idempotent for pipe and tcp fabrics.
                self._mesh_fabric.close_all()
                self._mesh_fabric = None

    def __enter__(self) -> "ServiceGang":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- liveness ------------------------------------------------------------

    def suspicion(self) -> Dict[str, Any]:
        """The heartbeat monitor's JSON-safe snapshot (health endpoint)."""
        if self._monitor is None:
            return {}
        return self._monitor.snapshot(self._clock())

    def health(self) -> Dict[str, Any]:
        return {"alive": self._alive, "backend": self.backend,
                "num_shards": self.num_shards,
                "generation": self._generation,
                "respawns": self.respawns, "jobs_run": self.jobs_run,
                "suspicion": self.suspicion()}

    def _pump_loop(self) -> None:
        """Drain every worker channel continuously.

        Beats feed the monitor; everything else lands in the sender's
        mailbox for :meth:`_await_results` / :meth:`rejoin` to consume.
        Runs even between jobs, so idle-time deaths are detected (and
        reported as profiler events) before the next dispatch.
        """
        prof = self.profiler
        monitor = self._monitor
        while not self._pump_stop.is_set():
            moved = False
            with self._reader_lock:
                readers = list(self._readers.items())
            for rank, read in readers:
                for _ in range(64):         # bounded drain per channel
                    try:
                        msg = read()
                    except _ChannelGone:
                        with self._reader_lock:
                            if self._readers.get(rank) is read:
                                del self._readers[rank]
                        if monitor.force_dead(rank) and prof.enabled:
                            prof.instant(CONTROL_SHARD, CAT_RESILIENCE,
                                         EV_HB_DEAD, rank=rank,
                                         reason="channel-eof")
                        self._mailbox[rank].put(
                            ("gone", "worker channel closed "
                                     "(died without a result)"))
                        break
                    if msg is None:
                        break
                    moved = True
                    if msg[0] == "beat":
                        monitor.beat(rank)
                    else:
                        self._mailbox[rank].put(msg)
            for state, rank, _at in monitor.poll():
                if prof.enabled:
                    ev = EV_HB_SUSPECT if state == HB_SUSPECTED \
                        else EV_HB_DEAD
                    prof.instant(CONTROL_SHARD, CAT_RESILIENCE, ev,
                                 rank=rank, phi=round(monitor.phi(rank), 3))
            if not moved:
                self._pump_stop.wait(0.003)

    def _quarantine_rank(self, rank: int) -> None:
        """Stop waiting on ``rank``: unblock its peers, kill stragglers."""
        if self.backend == "loopback":
            if self._fabric is not None:
                self._fabric.mark_closed(rank)
            # A wedged-but-alive thread exits at its next command read.
            q = self._cmd_queues.get(rank)
            if q is not None:
                q.put(("stop",))
        else:
            proc = self._procs.get(rank)
            if proc is not None and proc.is_alive():
                # SIGKILL, not SIGTERM: a SIGSTOPped (stalled) worker
                # queues SIGTERM without dying.
                proc.kill()

    def _drain_mailbox(self, rank: int) -> None:
        box = self._mailbox[rank]
        while True:
            try:
                box.get_nowait()
            except queue.Empty:
                return

    # -- the one public operation --------------------------------------------

    def run_job(self, spec: ProgramSpec, job_id: str = "",
                program_id: str = "", session: str = "",
                capture_digests: bool = False,
                fault: Optional[FaultPlan] = None) -> List[ShardReport]:
        """Broadcast one program to every replica; N conformant reports.

        Raises :class:`GangFailure` — and marks the gang dead — if any
        replica errors, goes heartbeat-dead, or the shared deadline
        passes.  ``fault`` scopes an injected fault plan to this job
        (chaos testing / CI).
        """
        if not self._alive:
            raise GangFailure(job_id, ["gang is down"], [],
                              suspicion=self.suspicion())
        dead = self._monitor.dead_ranks(self._clock()) \
            if self._monitor is not None else []
        if dead:
            # Idle-time death, caught by the pump before any dispatch:
            # fail fast instead of feeding a job to a broken gang.
            self._alive = False
            for r in dead:
                self._quarantine_rank(r)
            raise GangFailure(
                job_id,
                [f"shard {r}: declared dead by heartbeat suspicion "
                 f"before dispatch" for r in dead],
                list(dead), suspicion=self.suspicion())
        self.jobs_run += 1
        job = {"spec": spec.to_payload(), "job_id": job_id,
               "program_id": program_id, "session": session,
               "capture": capture_digests,
               "fault": _fault_payload(fault)}
        for rank in range(self.num_shards):
            self._drain_mailbox(rank)
        results: Dict[int, tuple] = {}
        if self.backend == "loopback":
            for q in self._cmd_queues.values():
                q.put(("job", job))
        else:
            for rank, conn in self._conns.items():
                try:
                    conn.send(("job", job))
                except (BrokenPipeError, OSError):
                    results[rank] = ("gone",
                                     "worker control pipe is closed")
        self._await_results(results)
        reports: Dict[int, ShardReport] = {}
        failures: List[str] = []
        culprits: List[int] = []
        for rank, (status, payload) in sorted(results.items()):
            if status == "ok":
                reports[rank] = payload if isinstance(payload, ShardReport) \
                    else ShardReport.from_payload(payload)
                continue
            if isinstance(payload, dict):
                failures.append(f"shard {rank}: {payload.get('error')}")
                named = [int(c) for c in payload.get("culprits") or ()]
                if payload.get("primary") and not named:
                    named = [rank]
                culprits.extend(c for c in named if c not in culprits)
            else:
                failures.append(f"shard {rank}: {payload}")
                blamed = status in ("gone", "hb-dead") or (
                    status == "error" and _primary_failure(str(payload)))
                if blamed and rank not in culprits:
                    culprits.append(rank)
        if failures:
            self._alive = False
            raise GangFailure(job_id, failures, sorted(culprits),
                              suspicion=self.suspicion())
        return [reports[r] for r in sorted(reports)]

    def _await_results(self, results: Dict[int, tuple]) -> None:
        """Fill ``results`` for every rank, or classify the silence.

        The early-exit path is the heartbeat payoff: a rank the monitor
        declares dead is quarantined immediately (its peers fail fast
        with ``PeerGone``), and once every still-pending rank is
        declared, the wait ends — detection latency is bounded by
        ``phi_dead`` beat-intervals, not by the transport deadline.
        """
        deadline = self._clock() + self.job_timeout_s
        pending = set(range(self.num_shards)) - set(results)
        declared: set = set()
        while pending:
            got = False
            for rank in sorted(pending):
                try:
                    msg = self._mailbox[rank].get_nowait()
                except queue.Empty:
                    continue
                if msg[0] == "rejoined":
                    continue          # stale ack from an older generation
                results[rank] = (msg[0], msg[1])
                pending.discard(rank)
                got = True
            if not pending:
                return
            now = self._clock()
            for rank in self._monitor.dead_ranks(now):
                if rank in pending and rank not in declared:
                    declared.add(rank)
                    self._quarantine_rank(rank)
            if pending <= declared:
                # Every rank still owing a result is heartbeat-dead: no
                # answer can arrive, stop waiting out the deadline.
                for rank in pending:
                    results[rank] = (
                        "hb-dead",
                        f"declared dead by heartbeat suspicion "
                        f"(phi >= {self._monitor.phi_dead})")
                return
            if now >= deadline:
                for rank in pending:
                    results[rank] = ("timeout",
                                     f"no result within "
                                     f"{self.job_timeout_s}s")
                return
            if not got:
                time.sleep(0.002)

    # -- live rejoin ---------------------------------------------------------

    def rejoin(self, ranks: List[int], attempt: int = 1) -> None:
        """Respawn workers for ``ranks``; re-endpoint the survivors.

        The REJOIN recovery primitive: a fresh fabric replaces the
        poisoned one, parked survivors rebind to it over their control
        channels, replacement workers are spawned for the dead ranks, and
        every rank acknowledges the new generation.  On success the gang
        is alive again at full width with a reset heartbeat baseline; on
        a missing acknowledgment (a replacement died mid-rejoin — see
        :class:`~repro.faults.plan.PlannedRespawnFail`) it raises
        :class:`RejoinError` and the gang stays inert but stoppable.
        """
        if not self._started or self._stopped:
            raise RejoinError(sorted(ranks), "gang is stopped")
        ranks = sorted(set(ranks))
        if not ranks or any(r < 0 or r >= self.num_shards for r in ranks):
            raise ValueError(f"bad rejoin ranks {ranks} "
                             f"for width {self.num_shards}")
        self._generation += 1
        gen = self._generation
        # Planned respawn failures (chaos): the replacement is dead on
        # arrival — never spawned, so its ack can only time out.
        doa = [r for r in ranks
               if self._injector is not None and self._injector.enabled
               and self._injector.fail_respawn(r, attempt)]
        if self.backend == "loopback":
            self._rejoin_loopback(ranks, gen, doa)
        else:
            self._rejoin_multiprocess(ranks, gen, doa)
        missing = self._collect_rejoin_acks(gen, doa)
        if missing:
            raise RejoinError(
                missing, f"no rejoin ack from shards {missing} "
                         f"(generation {gen}, attempt {attempt})")
        self.respawns += len(ranks)
        now = self._clock()
        for r in range(self.num_shards):
            self._monitor.reset(r, now)
        self._alive = True

    def _collect_rejoin_acks(self, gen: int, doa: List[int]) -> List[int]:
        deadline = self._clock() + max(5.0, self.deadline_s)
        pending = set(range(self.num_shards)) - set(doa)
        while pending and self._clock() < deadline:
            got = False
            for rank in sorted(pending):
                try:
                    msg = self._mailbox[rank].get_nowait()
                except queue.Empty:
                    continue
                got = True
                if msg[0] == "rejoined" and msg[2] == gen:
                    pending.discard(rank)
                # anything else is stale pre-rejoin traffic: drop it
            if not got:
                time.sleep(0.002)
        return sorted(pending | set(doa))

    def _rejoin_loopback(self, ranks: List[int], gen: int,
                         doa: List[int]) -> None:
        old_fabric = self._fabric
        if old_fabric is not None:
            for r in ranks:
                old_fabric.mark_closed(r)
        fabric = LoopbackFabric(self.num_shards, deadline_s=self.deadline_s)
        self._fabric = fabric
        for r in ranks:
            # Poison the old command queue: a wedged-but-alive zombie
            # exits at its next read instead of serving a stale
            # generation; its late writes land in the old, unread
            # result queue.
            self._cmd_queues[r].put(("stop",))
            self._drain_mailbox(r)
            cmd_q: "queue.Queue" = queue.Queue()
            res_q: "queue.Queue" = queue.Queue()
            self._cmd_queues[r] = cmd_q
            self._res_queues[r] = res_q
            with self._reader_lock:
                self._readers[r] = _queue_reader(res_q)
            if r in doa:
                continue
            self._spawn_loopback(r, fabric, cmd_q, res_q, gen)
        for r in range(self.num_shards):
            if r not in ranks:
                self._cmd_queues[r].put(("rejoin", gen, fabric))

    def _rejoin_multiprocess(self, ranks: List[int], gen: int,
                             doa: List[int]) -> None:
        ctx = multiprocessing.get_context("fork")
        old_fabric = self._mesh_fabric
        if old_fabric is not None and hasattr(old_fabric, "mark_closed"):
            # shm: flag the dead ranks on the status board so survivors
            # blocked in a collective cascade-abort with PeerGone now.
            for r in ranks:
                old_fabric.mark_closed(r)
        fabric = fabric_for_backend(self.backend, self.num_shards,
                                    deadline_s=self.deadline_s)
        self._mesh_fabric = fabric
        # Reap the dead ranks first: close control pipes, kill leftovers.
        for r in ranks:
            with self._reader_lock:
                self._readers.pop(r, None)
            conn = self._conns.get(r)
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
            proc = self._procs.get(r)
            if proc is not None:
                if proc.is_alive():
                    proc.kill()
                proc.join(5.0)
            self._drain_mailbox(r)
        # Survivors next: their claims are pickled over the control pipe
        # (pipe/socket descriptors are duplicated at pickle time, so the
        # parent's copies can be closed after the forks below; shm claims
        # are just segment names the survivor attaches by).
        for r in range(self.num_shards):
            if r in ranks:
                continue
            try:
                self._conns[r].send(("rejoin", gen, fabric.claim(r)))
            except (BrokenPipeError, OSError):
                pass   # its ack will be missing; rejoin reports it
        for r in ranks:
            if r in doa:
                continue
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_service_worker_main,
                args=(fabric, r, self.batch, self.profile_dir, child_conn,
                      self.hb_interval_s, self.hb_seed,
                      _fault_payload(self._fault), gen, self.backend),
                name=f"repro-svc-shard-{r}g{gen}", daemon=True)
            proc.start()
            child_conn.close()
            self._procs[r] = proc
            self._conns[r] = parent_conn
            with self._reader_lock:
                self._readers[r] = _conn_reader(parent_conn)
        if fabric.parent_must_release:
            fabric.close_all()
        if old_fabric is not None:
            # The poisoned mesh is fully superseded: every survivor
            # rebinds via its claim, so the parent can release (and for
            # shm, unlink) the old generation's resources.
            old_fabric.close_all()

    # -- loopback backend (threads) ------------------------------------------

    def _start_loopback(self) -> None:
        self._fabric = LoopbackFabric(self.num_shards,
                                      deadline_s=self.deadline_s)
        for rank in range(self.num_shards):
            cmd_q: "queue.Queue" = queue.Queue()
            res_q: "queue.Queue" = queue.Queue()
            self._cmd_queues[rank] = cmd_q
            self._res_queues[rank] = res_q
            self._readers[rank] = _queue_reader(res_q)
            self._spawn_loopback(rank, self._fabric, cmd_q, res_q, 0)

    def _spawn_loopback(self, rank: int, fabric: LoopbackFabric,
                        cmd_q: "queue.Queue", res_q: "queue.Queue",
                        gen: int) -> None:
        t = threading.Thread(
            target=self._serve_loopback,
            args=(rank, fabric, cmd_q, res_q, gen),
            name=f"svc-shard-{rank}" + (f"g{gen}" if gen else ""),
            daemon=True)
        self._threads[rank] = t
        t.start()

    def _serve_loopback(self, rank: int, fabric: LoopbackFabric,
                        cmd_q: "queue.Queue", res_q: "queue.Queue",
                        announce_gen: int) -> None:
        # Everything this loop touches arrives as an argument (never via
        # self-indexed lookups): after a respawn the old zombie keeps its
        # own dead queues and fabric, invisible to the new generation.
        stop_beats = threading.Event()
        worker = ServiceShardWorker(
            fabric.transport(rank), backend="loopback",
            batch=self.batch, profile_dir=self.profile_dir)
        ticker = threading.Thread(
            target=_ticker_loop,
            args=(lambda k: res_q.put(("beat", rank, k)), rank, stop_beats,
                  self.hb_interval_s, self.hb_seed, self._injector),
            name=f"svc-hb-{rank}", daemon=True)
        ticker.start()
        if announce_gen:
            res_q.put(("rejoined", rank, announce_gen))
        try:
            while True:
                cmd = cmd_q.get()
                if cmd[0] == "stop":
                    worker.save_profile()
                    return
                if cmd[0] == "rejoin":
                    _, gen, new_fabric = cmd
                    fabric = new_fabric
                    worker.rebind(fabric.transport(rank))
                    res_q.put(("rejoined", rank, gen))
                    continue
                job = cmd[1]
                try:
                    report = worker.run_job(
                        ProgramSpec.from_payload(job["spec"]),
                        program_id=job["program_id"],
                        session=job["session"],
                        capture_digests=job["capture"],
                        injector=_fault_injector(job["fault"]))
                except BaseException as exc:  # noqa: BLE001 - reported up
                    message, primary, culprits = \
                        classify_worker_failure(exc, rank)
                    res_q.put(("error", {"rank": rank, "error": message,
                                         "primary": primary,
                                         "culprits": culprits}))
                    if primary:
                        # Peers block in the dead replica's collective;
                        # declare this rank closed so they fail fast.
                        fabric.mark_closed(rank)
                        worker.save_profile()
                        return
                    # Secondary observer: park for rejoin (or stop) — the
                    # gang heals around the culprit without losing us.
                    # Close our endpoints first so the abort *cascades*:
                    # a peer waiting on us fails fast with PeerGone
                    # instead of draining its whole recv deadline, and a
                    # stale job dispatched before rejoin trips the
                    # use-after-close TransportError instead of wedging.
                    fabric.mark_closed(rank)
                    try:
                        worker.transport.close()
                    except Exception:  # noqa: BLE001 - already half dead
                        pass
                    continue
                res_q.put(("ok", report))
        finally:
            stop_beats.set()

    # -- multiprocess backend (fork) -----------------------------------------

    def _start_multiprocess(self) -> None:
        ctx = multiprocessing.get_context("fork")
        fabric = fabric_for_backend(self.backend, self.num_shards,
                                    deadline_s=self.deadline_s)
        self._mesh_fabric = fabric
        for rank in range(self.num_shards):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_service_worker_main,
                args=(fabric, rank, self.batch, self.profile_dir,
                      child_conn, self.hb_interval_s, self.hb_seed,
                      _fault_payload(self._fault), 0, self.backend),
                name=f"repro-svc-shard-{rank}", daemon=True)
            proc.start()
            child_conn.close()
            self._procs[rank] = proc
            self._conns[rank] = parent_conn
            self._readers[rank] = _conn_reader(parent_conn)
        # Pipe/TCP workers hold their claimed mesh endpoints; drop the
        # parent's copies so a dead worker's peers observe EOF, not a
        # deadline.  The shm fabric instead keeps its segments mapped in
        # the parent (crash detection runs off the status board, and the
        # creator must stay alive to unlink at stop()).
        if fabric.parent_must_release:
            fabric.close_all()


def _service_worker_main(fabric: Any, rank: int, batch: int,
                         profile_dir: Optional[str], conn: Any,
                         hb_interval_s: float = 0.25, hb_seed: int = 0,
                         fault_payload: Optional[dict] = None,
                         announce_gen: int = 0,
                         backend: str = "multiprocess") -> None:
    """Forked child: claim the mesh, then serve jobs until stop or death."""
    transport = None
    worker = None
    stop_beats = threading.Event()
    send_lock = threading.Lock()

    def _send(msg: tuple) -> None:
        # The ticker and the serve loop share one duplex pipe; sends are
        # serialized so beat frames never interleave with result frames.
        with send_lock:
            conn.send(msg)

    try:
        fabric.close_other_ends(rank)
        transport = fabric.transport(rank)
        worker = ServiceShardWorker(transport, backend=backend,
                                    batch=batch, profile_dir=profile_dir)
        ticker = threading.Thread(
            target=_ticker_loop,
            args=(lambda k: _send(("beat", rank, k)), rank, stop_beats,
                  hb_interval_s, hb_seed, _fault_injector(fault_payload)),
            name=f"svc-hb-{rank}", daemon=True)
        ticker.start()
        if announce_gen:
            _send(("rejoined", rank, announce_gen))
        while True:
            try:
                cmd = conn.recv()
            except (EOFError, OSError):
                return                      # driver is gone; fold quietly
            if cmd[0] == "stop":
                return
            if cmd[0] == "rejoin":
                _, gen, claim = cmd
                worker.rebind(transport_from_claim(claim))
                transport = worker.transport
                try:
                    _send(("rejoined", rank, gen))
                except (BrokenPipeError, OSError):
                    return
                continue
            job = cmd[1]
            try:
                report = worker.run_job(
                    ProgramSpec.from_payload(job["spec"]),
                    program_id=job["program_id"], session=job["session"],
                    capture_digests=job["capture"],
                    injector=_fault_injector(job["fault"]))
            except BaseException as exc:  # noqa: BLE001 - reported upward
                message, primary, culprits = \
                    classify_worker_failure(exc, rank)
                try:
                    _send(("error", {"rank": rank, "error": message,
                                     "primary": primary,
                                     "culprits": culprits}))
                except (BrokenPipeError, OSError):
                    pass
                if primary:
                    return   # die: transport closes in finally, peers EOF
                # Secondary observer: park for rejoin or stop.  Close our
                # mesh endpoints first so peers waiting on *us* observe
                # EOF and cascade-abort instead of draining their recv
                # deadline (rejoin hands us a fresh transport anyway).
                try:
                    worker.transport.close()
                except Exception:  # noqa: BLE001 - already half dead
                    pass
                continue
            _send(("ok", report.to_payload()))
    finally:
        stop_beats.set()
        if worker is not None:
            worker.save_profile()
        if transport is not None:
            transport.close()
        try:
            conn.close()
        except OSError:
            pass
