"""repro.service — a persistent shard gang serving streams of programs.

The service layer on top of :mod:`repro.dist`: instead of launching a
gang per program, :class:`DCRService` keeps one
:class:`~repro.service.gang.ServiceGang` alive across many client
:class:`~repro.service.service.Session`\\ s, with admission control, fair
round-robin scheduling, per-shape analysis-template caching
(:mod:`repro.service.templates`), and policy-driven gang recovery.  See
``docs/service.md``.
"""

from .gang import (GANG_BACKENDS, GangFailure, RejoinError, ServiceGang,
                   classify_worker_failure)
from .loadgen import LoadResult, make_shape_pool, run_load
from .service import (AdmissionError, DCRService, JobExpired, JobHandle,
                      Session)
from .templates import (AnalysisTemplate, TemplateStore, structural_signature,
                        template_key)

__all__ = [
    "DCRService", "Session", "JobHandle", "AdmissionError", "JobExpired",
    "ServiceGang", "GangFailure", "RejoinError", "GANG_BACKENDS",
    "classify_worker_failure",
    "AnalysisTemplate", "TemplateStore", "structural_signature",
    "template_key",
    "LoadResult", "make_shape_pool", "run_load",
]
