"""Analysis templates: cached per-program-shape analysis products.

Following *Execution Templates* (Mashayekhi et al., PAPERS.md), a repeat
submission of an already-analyzed program **shape** should not pay for
dependence analysis again: the service caches the conformance artifacts of
the cold run — graph digest, fence sequence, per-shard counters — keyed by
the program's structural shape, and serves later submissions by *patching
parameters* into the cached products.

Keying reuses the auto-tracer's identification machinery (*Automatic
Tracing in Task-Based Runtime Systems*, Yadav et al.): each operation's
structural signature is hash-consed through
:func:`repro.core.tracing.intern_signature` and the id stream folded with
the identical polynomial :func:`repro.core.tracing.rolling_hash` the
repeat detector computes.  A hash hit is confirmed against the stored
shape, so a (vanishingly unlikely) rolling-hash collision degrades to a
miss, never to a wrong template.

What counts as *shape* vs *parameter* mirrors what the workers hash into
the determinism stream (:func:`repro.dist.worker.op_signature`): an op's
``value`` is structural only for ``spot`` (it selects the owner shard);
every other value is pure payload.  The one place payload values enter the
conformance artifacts is API call 0 — ``record("program",
*spec.signature())`` — so a template hit recomputes exactly that digest
and refolds the cached structure-only tail, yielding a determinism digest
byte-identical to what a cold run of the patched spec would produce
(property-tested in ``tests/service/test_service_conformance.py``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..core.determinism import ShardHasher, stream_digest
from ..core.tracing import intern_signature, rolling_hash
from ..dist.programs import ProgramSpec
from ..dist.report import MergedReport, ShardReport, merge_reports

__all__ = ["structural_signature", "template_key", "AnalysisTemplate",
           "TemplateStore"]


def structural_signature(spec: ProgramSpec, num_shards: int) -> tuple:
    """The shape of a program: everything that affects analysis products.

    Two specs with equal structural signatures produce identical graph
    digests, fence sequences, and analyze-call streams at ``num_shards``
    shards; they may differ only in payload values (which reach the
    artifacts solely through the program-signature API call).
    """
    ops = tuple(
        (op.code, op.value % num_shards if op.code == "spot" else None)
        for op in spec.ops)
    return (spec.tiles, spec.cells_per_tile, spec.sharding, num_shards, ops)


def template_key(spec: ProgramSpec, num_shards: int) -> int:
    """Rolling-hash key of a program shape (the auto-tracer's hash).

    The header and each op's structural signature are hash-consed exactly
    like operation signatures in the repeat detector, then folded with the
    detector's polynomial hash.
    """
    tiles, cells, sharding, shards, ops = structural_signature(spec,
                                                               num_shards)
    sids = [intern_signature(("tpl-head", tiles, cells, sharding, shards))]
    sids += [intern_signature(("tpl-op",) + op) for op in ops]
    return rolling_hash(sids)


@dataclass
class AnalysisTemplate:
    """Cached analysis products of one program shape at one gang width."""

    key: int
    shape: tuple                       # structural_signature confirmation
    num_shards: int
    shard_payloads: List[dict]         # cold ShardReports, digests stripped
    call_digest_tail: Tuple[int, ...]  # per-call digests after call 0
    recorded_from: str                 # program_id of the cold run
    hits: int = 0

    def patch(self, spec: ProgramSpec, program_id: str = "",
              session: str = "", batch: int = 0) -> MergedReport:
        """Serve one submission from this template, analysis-free.

        The only artifact that depends on payload values is the
        determinism digest, through API call 0 (the program signature);
        recompute that one digest and refold the cached structure-only
        tail.  Everything else — graph digest, fence sequence, counters —
        is byte-identical to a cold run of ``spec`` by construction.
        """
        hasher = ShardHasher(0)
        head = hasher.record("program", *spec.signature())
        digest = stream_digest([head, *self.call_digest_tail])
        now = time.perf_counter()
        reports = []
        for payload in self.shard_payloads:
            reports.append(replace(
                ShardReport.from_payload(payload),
                determinism_digest=digest,
                program_id=program_id, session=session,
                wall_s=time.perf_counter() - now, pid=os.getpid()))
        self.hits += 1
        return merge_reports(reports, backend="template",
                             program_id=program_id, session=session,
                             template_hit=True)


class TemplateStore:
    """LRU map of template keys to :class:`AnalysisTemplate` entries."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: Dict[int, AnalysisTemplate] = {}
        self.hits = 0
        self.misses = 0
        self.collisions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, spec: ProgramSpec,
               num_shards: int) -> Optional[AnalysisTemplate]:
        """The template for this program shape, or None (counted a miss)."""
        key = template_key(spec, num_shards)
        tpl = self._entries.get(key)
        if tpl is not None \
                and tpl.shape == structural_signature(spec, num_shards):
            self.hits += 1
            self._entries[key] = self._entries.pop(key)   # LRU touch
            return tpl
        if tpl is not None:
            self.collisions += 1
        self.misses += 1
        return None

    def record(self, spec: ProgramSpec, num_shards: int,
               merged: MergedReport) -> Optional[AnalysisTemplate]:
        """Build and cache a template from a cold run's merged report.

        Requires a conformant run whose shard reports captured call
        digests; returns None (and caches nothing) otherwise.
        """
        head = merged.shards[0]
        if not merged.conformant or len(head.call_digests) < 1:
            return None
        key = template_key(spec, num_shards)
        payloads = []
        for r in merged.shards:
            p = r.to_payload()
            # The tail is stored once; per-shard copies would multiply the
            # footprint by N for data conformance proved identical.
            p["call_digests"] = []
            payloads.append(p)
        tpl = AnalysisTemplate(
            key=key, shape=structural_signature(spec, num_shards),
            num_shards=num_shards, shard_payloads=payloads,
            call_digest_tail=tuple(head.call_digests[1:]),
            recorded_from=head.program_id)
        self._entries[key] = tpl
        if len(self._entries) > self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1
        return tpl

    def entries_at_width(self, num_shards: int) -> int:
        """How many cached templates were recorded at ``num_shards``.

        The REJOIN resync probe: a respawned rank at this width can be
        re-verified against previously verified call streams (templates
        are width-keyed, so entries at other widths prove nothing).
        """
        return sum(1 for t in self._entries.values()
                   if t.num_shards == num_shards)

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "collisions": self.collisions,
                "evictions": self.evictions}
