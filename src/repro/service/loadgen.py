"""Synthetic many-client load for the DCR service.

An **open-loop** generator: each simulated client submits on its own
schedule regardless of how fast the service completes — exactly the
arrival model where admission control matters (a closed-loop client can
never overload anything).  Submissions that the service rejects with
:class:`~repro.service.service.AdmissionError` are counted, not retried;
handles are collected and awaited after the arrival process finishes.

Each client draws programs from a small pool of shapes (deterministic in
``seed``) whose *parameters* vary per submission — the shape-pool model
under which analysis templates pay off: the first submission of a shape is
a cold analysis, every later one a parameter patch.

Backpressure: clients stay open-loop but *honor* the service's admission
verdicts — a ``queue_full`` / ``session_cap`` rejection doubles the
client's backoff multiplier (stretching its arrival schedule) and a
``deadline`` rejection is terminal for that submission; successes shrink
the multiplier back toward 1.  The counters distinguish the two, so a
soak can assert that overload protection actually engaged.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.rng import threefry2x64
from ..dist.programs import OpSpec, ProgramSpec
from .service import AdmissionError, DCRService, JobExpired, JobHandle

__all__ = ["LoadResult", "make_shape_pool", "run_load"]

#: Op codes the generator draws bodies from (all group launches, so any
#: shard count is legal; ``blend`` brings the cross-shard dependencies).
_BODY_CODES = ("bump", "scale", "blend", "readx")


@dataclass
class LoadResult:
    """What the synthetic clients observed, summed over all of them."""

    clients: int
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    failed: int = 0
    expired: int = 0             # admitted but missed their start deadline
    backpressure_waits: int = 0  # queue_full/session_cap rejections honored
    deadline_rejects: int = 0    # refused up front as guaranteed-late
    template_hits: int = 0       # completed reports served from a template
    wall_s: float = 0.0
    by_session: Dict[str, int] = field(default_factory=dict)

    @property
    def programs_per_s(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0


def _draw(seed: int, *indices: int) -> int:
    """Deterministic 64-bit draw — no global RNG, replayable by seed."""
    word, _ = threefry2x64((seed, 0x10AD), (indices[0],
                                            indices[1] if len(indices) > 1
                                            else 0))
    return word


def make_shape_pool(shapes: int, tiles: int, steps: int,
                    seed: int = 0) -> List[ProgramSpec]:
    """``shapes`` structurally distinct programs around one size budget.

    Pool entry *i* varies its op mix by seed; re-instantiating a pool
    entry with fresh parameters (what clients do per submission) keeps the
    shape and changes only payload values.
    """
    pool: List[ProgramSpec] = []
    for i in range(shapes):
        ops: List[OpSpec] = [OpSpec("fill")]
        for s in range(steps):
            code = _BODY_CODES[_draw(seed, i, s) % len(_BODY_CODES)]
            ops.append(OpSpec("blend" if s % 2 == 0 else code))
            ops.append(OpSpec("bump"))
        ops.append(OpSpec("readx"))
        pool.append(ProgramSpec(tiles=tiles, ops=tuple(ops)))
    return pool


def _with_fresh_params(spec: ProgramSpec, seed: int,
                       submission: int) -> ProgramSpec:
    """Same shape, new payload values — the template-hit workload."""
    ops = tuple(
        OpSpec(op.code, _draw(seed, submission, j) % 1_000_000)
        if op.code != "spot" else op
        for j, op in enumerate(spec.ops))
    return ProgramSpec(tiles=spec.tiles, sharding=spec.sharding,
                       ops=ops, cells_per_tile=spec.cells_per_tile)


def run_load(service: DCRService, clients: int,
             submissions_per_client: int, shapes: int = 2,
             tiles: int = 8, steps: int = 2, rate_hz: float = 0.0,
             seed: int = 0, timeout_s: Optional[float] = None,
             deadline_s: Optional[float] = None) -> LoadResult:
    """Drive ``clients`` concurrent sessions; await and tally everything.

    ``rate_hz`` is the per-client open-loop arrival rate (0 = submit as
    fast as the interpreter allows); ``deadline_s`` attaches a start
    deadline to every submission, engaging the service's deadline-aware
    admission.  Everything is deterministic in ``seed`` except scheduling
    order.
    """
    pool = make_shape_pool(shapes, tiles, steps, seed)
    result = LoadResult(clients=clients)
    lock = threading.Lock()
    handles: List[JobHandle] = []
    interval = 1.0 / rate_hz if rate_hz > 0 else 0.0

    def client(idx: int) -> None:
        session = service.open_session(f"client-{idx}")
        next_at = time.monotonic()
        submitted = 0
        rejected = 0
        bp_waits = 0
        dl_rejects = 0
        backoff = 1.0
        for n in range(submissions_per_client):
            if interval:
                next_at += interval
                delay = next_at - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            shape = pool[_draw(seed, idx, n) % len(pool)]
            spec = _with_fresh_params(shape, seed + idx + 1, n)
            try:
                h = session.submit(spec, deadline_s=deadline_s)
            except AdmissionError as err:
                rejected += 1
                if err.reason == "deadline":
                    # Guaranteed-late: backing off cannot help this one.
                    dl_rejects += 1
                else:
                    # Backpressure signal: stretch the arrival schedule.
                    bp_waits += 1
                    backoff = min(8.0, backoff * 2.0)
                    if interval:
                        next_at += interval * (backoff - 1.0)
                    else:
                        time.sleep(0.001 * backoff)
                continue
            backoff = max(1.0, backoff / 2.0)
            submitted += 1
            with lock:
                handles.append(h)
        session.close()
        with lock:
            result.submitted += submitted
            result.rejected += rejected
            result.backpressure_waits += bp_waits
            result.deadline_rejects += dl_rejects
            result.by_session[session.name] = submitted

    t0 = time.perf_counter()
    threads = [threading.Thread(target=client, args=(i,),
                                name=f"loadgen-{i}", daemon=True)
               for i in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wait_s = timeout_s if timeout_s is not None \
        else service.job_timeout_s * 4
    for h in handles:
        try:
            report = h.result(timeout=wait_s)
        except JobExpired:
            result.expired += 1
            continue
        except Exception:
            result.failed += 1
            continue
        result.completed += 1
        if report.template_hit:
            result.template_hits += 1
    result.wall_s = time.perf_counter() - t0
    return result
