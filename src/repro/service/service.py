"""The DCR service: one persistent gang, many client sessions.

:class:`DCRService` turns the one-shot conformance runner into a
long-running analysis service.  Clients open :class:`Session`\\ s and
submit a stream of :class:`~repro.dist.programs.ProgramSpec`\\ s; the
service multiplexes every session onto a single persistent
:class:`~repro.service.gang.ServiceGang` with:

* **admission control** — a bounded global queue and a per-session
  in-flight cap, both rejecting with :class:`AdmissionError` rather than
  queueing unboundedly (open-loop clients stay open-loop);
* **fair scheduling** — one dispatcher thread round-robins the sessions,
  so a chatty client cannot starve a quiet one;
* **analysis templates** — the first run of a program *shape* captures an
  :class:`~repro.service.templates.AnalysisTemplate`; every later
  submission of the same shape is served driver-side by parameter
  patching, never touching the gang (see :mod:`repro.service.templates`);
* **recovery** — a dead gang (crashed replica, divergence, timeout) is
  healed per :func:`repro.resilience.plan_gang_recovery`: REJOIN respawns
  exactly the culprit rank(s) and re-endpoints the survivors (the gang
  returns to full width in place, without dropping other sessions'
  work), DEGRADE shrinks the gang one shard, RESTART rebuilds at full
  width — all three re-run the failed submission; ABORT/LOCALIZE fail
  the submission but still rebuild so the service keeps serving;
* **overload protection** — deadline-aware admission (work that cannot
  start before its deadline is rejected up front, and expired at
  dispatch time if the estimate was wrong), plus a :meth:`DCRService.
  health` endpoint summarizing width, heartbeat suspicion, respawn
  budget, and backpressure for load generators to steer by.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from ..dist.heartbeat import respawn_backoff
from ..dist.programs import ProgramSpec
from ..dist.report import MergedReport, merge_reports
from ..faults.plan import FaultPlan
from ..obs.events import (CAT_SERVICE, CONTROL_SHARD, EV_GANG_REBUILD,
                          EV_GANG_REJOIN, EV_GANG_RESPAWN, EV_GANG_START,
                          EV_JOB_ADMIT, EV_JOB_DISPATCH, EV_JOB_DONE,
                          EV_JOB_EXPIRE, EV_JOB_REJECT, EV_SESSION_CLOSE,
                          EV_SESSION_OPEN, EV_TEMPLATE_HIT,
                          EV_TEMPLATE_RECORDED)
from ..obs.profiler import Profiler
from ..resilience import ResilienceConfig, plan_gang_recovery
from .gang import (GANG_BACKENDS, GangFailure, RejoinError, ServiceGang)
from .templates import TemplateStore

__all__ = ["AdmissionError", "JobExpired", "JobHandle", "Session",
           "DCRService"]


class AdmissionError(RuntimeError):
    """The service refused a submission to protect itself from overload.

    ``reason`` distinguishes backpressure (``queue_full`` /
    ``session_cap`` — retry later) from ``deadline`` (the job could not
    have started in time — retrying immediately is pointless);
    ``queue_depth`` lets clients scale their backoff to the actual load.
    """

    def __init__(self, message: str, reason: str = "",
                 queue_depth: int = 0):
        self.reason = reason
        self.queue_depth = queue_depth
        super().__init__(message)


class JobExpired(RuntimeError):
    """An admitted job missed its deadline before it could be dispatched."""


class JobHandle:
    """One submission's future: resolves to a MergedReport or an error."""

    def __init__(self, job_id: str, program_id: str, session: str):
        self.job_id = job_id
        self.program_id = program_id
        self.session = session
        self._event = threading.Event()
        self._report: Optional[MergedReport] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> MergedReport:
        """Block for the merged report; re-raises the job's failure."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"job {self.job_id} not done "
                               f"within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._report

    def _resolve(self, report: Optional[MergedReport],
                 error: Optional[BaseException]) -> None:
        self._report = report
        self._error = error
        self._event.set()


class _Job:
    __slots__ = ("spec", "handle", "fault", "submitted_at", "deadline_at")

    def __init__(self, spec: ProgramSpec, handle: JobHandle,
                 fault: Optional[FaultPlan],
                 deadline_at: Optional[float] = None):
        self.spec = spec
        self.handle = handle
        self.fault = fault
        self.submitted_at = time.perf_counter()
        self.deadline_at = deadline_at     # service-clock instant, or None


class _SessionState:
    __slots__ = ("name", "queue", "inflight", "submitted", "closed")

    def __init__(self, name: str):
        self.name = name
        self.queue: Deque[_Job] = deque()
        self.inflight = 0          # queued + running, not yet resolved
        self.submitted = 0
        self.closed = False


class Session:
    """A client's handle: submit programs, await merged reports."""

    def __init__(self, service: "DCRService", name: str):
        self._service = service
        self.name = name

    def submit(self, spec: ProgramSpec,
               fault: Optional[FaultPlan] = None,
               deadline_s: Optional[float] = None) -> JobHandle:
        return self._service.submit(self.name, spec, fault=fault,
                                    deadline_s=deadline_s)

    def run(self, spec: ProgramSpec,
            timeout: Optional[float] = None) -> MergedReport:
        """Submit and block — the synchronous convenience wrapper."""
        return self.submit(spec).result(
            timeout if timeout is not None
            else self._service.job_timeout_s * 4)

    def close(self) -> None:
        self._service.close_session(self.name)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class DCRService:
    """Admission, fair scheduling, template serving, gang recovery."""

    def __init__(self, num_shards: int, backend: str = "loopback",
                 batch: int = 64,
                 resilience: Optional[ResilienceConfig] = None,
                 max_pending: int = 64, session_inflight: int = 8,
                 template_capacity: int = 128,
                 deadline_s: float = 30.0, job_timeout_s: float = 60.0,
                 profile_dir: Optional[str] = None,
                 profiler: Optional[Profiler] = None,
                 hb_interval_s: float = 0.25,
                 clock: Callable[[], float] = time.monotonic):
        if backend not in GANG_BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"expected one of {GANG_BACKENDS}")
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.backend = backend
        self.batch = batch
        self.resilience = resilience or ResilienceConfig()
        self.max_pending = max_pending
        self.session_inflight = session_inflight
        self.deadline_s = deadline_s
        self.job_timeout_s = job_timeout_s
        self.profile_dir = profile_dir
        self.profiler = profiler if profiler is not None else Profiler(
            enabled=profile_dir is not None)
        self.hb_interval_s = hb_interval_s
        self.clock = clock
        self.templates = TemplateStore(capacity=template_capacity)
        self._width = num_shards
        self._target_width = num_shards    # the width REJOIN heals back to
        self._gang: Optional[ServiceGang] = None
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._sessions: Dict[str, _SessionState] = {}
        self._rr: Deque[str] = deque()     # round-robin rotation order
        self._pending_total = 0
        self._session_seq = 0
        self._job_seq = 0
        self._recoveries = 0
        self._respawns_used = 0
        self._failed_permanently = False
        self._running = False
        self._scheduler: Optional[threading.Thread] = None
        # EWMA of cold (gang-touching) job duration: the admission
        # estimator's model of how fast the queue drains.
        self._job_ewma_s = 0.0
        # counters (read via stats())
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_rejected = 0
        self.jobs_expired = 0
        self.template_serves = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Current gang width (shrinks under the DEGRADE policy)."""
        return self._width

    def start(self) -> "DCRService":
        if self._running:
            raise RuntimeError("service already started")
        self._gang = self._build_gang(self._width)
        self._running = True
        self._scheduler = threading.Thread(target=self._dispatch_loop,
                                           name="svc-scheduler",
                                           daemon=True)
        self._scheduler.start()
        return self

    def close(self) -> None:
        with self._cond:
            if not self._running:
                return
            self._running = False
            self._cond.notify_all()
        self._scheduler.join(self.job_timeout_s + 10.0)
        # Fail whatever never got dispatched, so no client blocks forever.
        with self._lock:
            leftovers: List[_Job] = []
            for state in self._sessions.values():
                leftovers.extend(state.queue)
                state.queue.clear()
        for job in leftovers:
            job.handle._resolve(None, RuntimeError("service closed"))
        if self._gang is not None:
            self._gang.stop()
        if self.profile_dir and self.profiler.enabled:
            import os
            os.makedirs(self.profile_dir, exist_ok=True)
            self.profiler.save(
                os.path.join(self.profile_dir, "service.profile.json"))

    def __enter__(self) -> "DCRService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _build_gang(self, width: int) -> ServiceGang:
        gang = ServiceGang(width, backend=self.backend, batch=self.batch,
                           deadline_s=self.deadline_s,
                           job_timeout_s=self.job_timeout_s,
                           profile_dir=self.profile_dir,
                           profiler=self.profiler,
                           hb_interval_s=self.hb_interval_s,
                           clock=self.clock).start()
        prof = self.profiler
        if prof.enabled:
            prof.instant(CONTROL_SHARD, CAT_SERVICE, EV_GANG_START,
                         shards=width, backend=self.backend)
        return gang

    # -- sessions ------------------------------------------------------------

    def open_session(self, name: Optional[str] = None) -> Session:
        with self._lock:
            if not self._running:
                raise RuntimeError("service is not running")
            if name is None:
                self._session_seq += 1
                name = f"session-{self._session_seq}"
            if name in self._sessions:
                raise ValueError(f"session {name!r} already open")
            self._sessions[name] = _SessionState(name)
            self._rr.append(name)
        prof = self.profiler
        if prof.enabled:
            prof.instant(CONTROL_SHARD, CAT_SERVICE, EV_SESSION_OPEN,
                         session=name)
        return Session(self, name)

    def close_session(self, name: str) -> None:
        """Stop admitting for ``name``; queued jobs still complete."""
        with self._lock:
            state = self._sessions.get(name)
            if state is None or state.closed:
                return
            state.closed = True
        prof = self.profiler
        if prof.enabled:
            prof.instant(CONTROL_SHARD, CAT_SERVICE, EV_SESSION_CLOSE,
                         session=name, submitted=state.submitted)

    # -- admission -----------------------------------------------------------

    def submit(self, session: str, spec: ProgramSpec,
               fault: Optional[FaultPlan] = None,
               deadline_s: Optional[float] = None) -> JobHandle:
        """Admit one program for ``session`` or raise AdmissionError.

        ``deadline_s`` is a start deadline, relative to now: if the
        estimated queue drain (pending jobs times the cold-job EWMA)
        already exceeds it the submission is rejected immediately with
        ``reason="deadline"``, and an admitted job that nevertheless
        misses its deadline resolves with :class:`JobExpired` at
        dispatch time instead of occupying the gang.
        """
        prof = self.profiler
        with self._cond:
            if not self._running or self._failed_permanently:
                raise RuntimeError(
                    "service is not accepting work"
                    + (" (recovery budget exhausted)"
                       if self._failed_permanently else ""))
            state = self._sessions.get(session)
            if state is None or state.closed:
                raise ValueError(f"no open session {session!r}")
            if self._pending_total >= self.max_pending:
                self.jobs_rejected += 1
                if prof.enabled:
                    prof.instant(CONTROL_SHARD, CAT_SERVICE, EV_JOB_REJECT,
                                 session=session, reason="queue_full")
                raise AdmissionError(
                    f"queue full ({self.max_pending} pending)",
                    reason="queue_full",
                    queue_depth=self._pending_total)
            if state.inflight >= self.session_inflight:
                self.jobs_rejected += 1
                if prof.enabled:
                    prof.instant(CONTROL_SHARD, CAT_SERVICE, EV_JOB_REJECT,
                                 session=session, reason="session_cap")
                raise AdmissionError(
                    f"session {session!r} at its in-flight cap "
                    f"({self.session_inflight})",
                    reason="session_cap",
                    queue_depth=self._pending_total)
            deadline_at = None
            if deadline_s is not None:
                # Deadline-aware admission: refuse work that (by the
                # current drain estimate) cannot start in time, so a
                # saturated service sheds load instead of queueing
                # guaranteed-late jobs.
                est_start_s = self._pending_total * self._job_ewma_s
                if est_start_s > deadline_s:
                    self.jobs_rejected += 1
                    if prof.enabled:
                        prof.instant(CONTROL_SHARD, CAT_SERVICE,
                                     EV_JOB_REJECT, session=session,
                                     reason="deadline")
                    raise AdmissionError(
                        f"cannot start within {deadline_s}s "
                        f"(estimated start delay {est_start_s:.3f}s over "
                        f"{self._pending_total} pending)",
                        reason="deadline",
                        queue_depth=self._pending_total)
                deadline_at = self.clock() + deadline_s
            self._job_seq += 1
            state.submitted += 1
            handle = JobHandle(job_id=f"job-{self._job_seq}",
                               program_id=f"{session}/p{state.submitted}",
                               session=session)
            state.queue.append(_Job(spec, handle, fault, deadline_at))
            state.inflight += 1
            self._pending_total += 1
            if prof.enabled:
                prof.instant(CONTROL_SHARD, CAT_SERVICE, EV_JOB_ADMIT,
                             session=session, program=handle.program_id)
            self._cond.notify_all()
        return handle

    # -- the dispatcher ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                job = None
                # Stop dispatching the moment close() begins, even with a
                # backlog — close() fails the leftovers deterministically.
                while self._running \
                        and (job := self._next_job_locked()) is None:
                    self._cond.wait(0.5)
                if job is None:
                    return
            self._execute(job)

    def _next_job_locked(self) -> Optional[_Job]:
        """Round-robin over sessions: the fairness policy in one place."""
        for _ in range(len(self._rr)):
            name = self._rr[0]
            self._rr.rotate(-1)
            state = self._sessions[name]
            if state.queue:
                self._pending_total -= 1
                return state.queue.popleft()
        return None

    def _execute(self, job: _Job) -> None:
        handle = job.handle
        prof = self.profiler
        t0 = prof.now_us() if prof.enabled else 0.0
        report: Optional[MergedReport] = None
        error: Optional[BaseException] = None
        if job.deadline_at is not None and self.clock() > job.deadline_at:
            # Admission's drain estimate was optimistic: shed the job now
            # rather than spend gang time on an answer nobody wants.
            self.jobs_expired += 1
            if prof.enabled:
                prof.instant(CONTROL_SHARD, CAT_SERVICE, EV_JOB_EXPIRE,
                             program=handle.program_id,
                             session=handle.session)
            with self._cond:
                self._sessions[handle.session].inflight -= 1
                self._cond.notify_all()
            handle._resolve(None, JobExpired(
                f"job {handle.job_id} missed its start deadline"))
            return
        # A submission carrying a fault plan must reach the gang — serving
        # it from a template would silently skip the injection the caller
        # asked for (chaos tests and the CI chaos tier depend on this).
        tpl = None if job.fault is not None \
            else self.templates.lookup(job.spec, self._width)
        if tpl is not None:
            report = tpl.patch(job.spec, program_id=handle.program_id,
                               session=handle.session)
            self.template_serves += 1
            if prof.enabled:
                prof.instant(CONTROL_SHARD, CAT_SERVICE, EV_TEMPLATE_HIT,
                             program=handle.program_id, key=str(tpl.key))
        else:
            cold0 = time.perf_counter()
            try:
                report = self._run_cold(job)
            except BaseException as exc:  # noqa: BLE001 - resolved below
                error = exc
            else:
                observed = time.perf_counter() - cold0
                self._job_ewma_s = observed if self._job_ewma_s == 0.0 \
                    else 0.7 * self._job_ewma_s + 0.3 * observed
        with self._cond:
            state = self._sessions[handle.session]
            state.inflight -= 1
            if error is None:
                self.jobs_completed += 1
            else:
                self.jobs_failed += 1
            self._cond.notify_all()
        if prof.enabled:
            prof.complete(CONTROL_SHARD, CAT_SERVICE, EV_JOB_DISPATCH, t0,
                          prof.now_us() - t0, program=handle.program_id,
                          session=handle.session,
                          template_hit=bool(tpl), ok=error is None)
            prof.instant(CONTROL_SHARD, CAT_SERVICE, EV_JOB_DONE,
                         program=handle.program_id, ok=error is None)
        handle._resolve(report, error)

    def _run_cold(self, job: _Job) -> MergedReport:
        """Analyze on the gang; recover from gang death per policy."""
        handle = job.handle
        fault = job.fault
        while True:
            try:
                shard_reports = self._gang.run_job(
                    job.spec, job_id=handle.job_id,
                    program_id=handle.program_id, session=handle.session,
                    capture_digests=True, fault=fault)
            except GangFailure as failure:
                retry = self._recover(failure)
                if not retry:
                    raise
                # Injected faults are not re-armed on the retry: the
                # point of RESTART/DEGRADE is that the re-execution of
                # the same control program succeeds.
                fault = None
                continue
            merged = merge_reports(
                shard_reports, backend=self.backend,
                program_id=handle.program_id, session=handle.session)
            if merged.conformant:
                if self.templates.record(job.spec, self._width,
                                         merged) is not None \
                        and self.profiler.enabled:
                    self.profiler.instant(
                        CONTROL_SHARD, CAT_SERVICE, EV_TEMPLATE_RECORDED,
                        program=handle.program_id)
            return merged

    def _resync_source(self, width: int) -> str:
        """What a respawned rank resyncs from at ``width``.

        Theorem 1 already guarantees a fresh replica recomputes identical
        graphs ("fresh-replay"); when the template store holds entries at
        this width the verified per-call digests double as the replay
        check material ("width-keyed-templates"), so the rejoined gang's
        first conformance check validates the respawn against previously
        verified streams rather than only against its new peers.
        """
        return "width-keyed-templates" \
            if self.templates.entries_at_width(width) else "fresh-replay"

    def _recover(self, failure: GangFailure) -> bool:
        """Heal the gang per policy; True if the job should retry.

        REJOIN heals in place — deterministic backoff, respawn exactly
        the culprit ranks, re-endpoint the survivors — and replans on
        :class:`RejoinError` until the respawn budget forces the DEGRADE
        fallback; every other action stops the gang and rebuilds it at
        the planned width.
        """
        prof = self.profiler
        current: BaseException = failure
        while True:
            self._recoveries += 1
            plan = plan_gang_recovery(
                self.resilience, current, self._width, self._recoveries,
                respawns_used=self._respawns_used,
                suspicion=getattr(current, "suspicion", None)
                or self._gang.suspicion(),
                resync_source=self._resync_source(self._width))
            if plan.action == "exhausted":
                with self._lock:
                    self._failed_permanently = True
                return False
            if plan.action == "respawn":
                ranks = list(plan.details["respawned"])
                attempt = int(plan.details["respawn_attempt"])
                # Counter-based backoff: a pure function of the attempt
                # number, never wall-clock jitter, so two identically
                # seeded soaks heal on identical schedules.
                time.sleep(respawn_backoff(0, attempt))
                if prof.enabled:
                    prof.instant(CONTROL_SHARD, CAT_SERVICE,
                                 EV_GANG_RESPAWN, ranks=ranks,
                                 attempt=attempt,
                                 generation=self._gang.generation + 1)
                self._respawns_used += 1
                try:
                    self._gang.rejoin(ranks, attempt=attempt)
                except RejoinError as exc:
                    # The replacement died mid-rejoin: replan (another
                    # respawn while budget lasts, then DEGRADE).
                    current = exc
                    continue
                if prof.enabled:
                    prof.instant(CONTROL_SHARD, CAT_SERVICE,
                                 EV_GANG_REJOIN, ranks=ranks,
                                 shards=self._width,
                                 generation=self._gang.generation,
                                 resync=plan.resync_source)
                return True
            new_width = int(plan.details["new_width"])
            self._gang.stop()
            self._width = new_width
            self._gang = self._build_gang(new_width)
            if prof.enabled:
                prof.instant(CONTROL_SHARD, CAT_SERVICE, EV_GANG_REBUILD,
                             action=plan.action, shards=new_width,
                             attempt=self._recoveries,
                             culprits=list(getattr(
                                 current, "culprit_shards", ())))
            return bool(plan.details["retry"])

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "backend": self.backend,
                "shards": self._width,
                "width_target": self._target_width,
                "sessions": len(self._sessions),
                "pending": self._pending_total,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "rejected": self.jobs_rejected,
                "expired": self.jobs_expired,
                "template_serves": self.template_serves,
                "recoveries": self._recoveries,
                "respawns": self._respawns_used,
                "templates": self.templates.stats(),
            }

    def health(self) -> Dict[str, Any]:
        """The health endpoint: one dict a load balancer could poll.

        ``status`` summarizes the whole service: ``ok`` (full width, not
        backpressured), ``degraded`` (serving below target width, or a
        replica under heartbeat suspicion), ``overloaded`` (admission is
        rejecting — clients should back off), ``down`` (recovery budget
        exhausted or not running).
        """
        with self._lock:
            running = self._running and not self._failed_permanently
            pending = self._pending_total
            width = self._width
            gang = self._gang
        suspicion = gang.suspicion() if gang is not None else {}
        suspect_ranks = sorted(
            int(r) for r, s in suspicion.get("ranks", {}).items()
            if s["state"] != "healthy")
        backpressure = pending >= self.max_pending
        if not running:
            status = "down"
        elif backpressure:
            status = "overloaded"
        elif width < self._target_width or suspect_ranks:
            status = "degraded"
        else:
            status = "ok"
        budget = getattr(self.resilience, "respawn_budget", 0)
        return {
            "status": status,
            "backend": self.backend,
            "width": width,
            "width_target": self._target_width,
            "pending": pending,
            "max_pending": self.max_pending,
            "backpressure": backpressure,
            "suspect_ranks": suspect_ranks,
            "suspicion": suspicion,
            "respawns": {"used": self._respawns_used, "budget": budget},
            "jobs": {"completed": self.jobs_completed,
                     "failed": self.jobs_failed,
                     "rejected": self.jobs_rejected,
                     "expired": self.jobs_expired},
        }
