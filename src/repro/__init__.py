"""repro — Dynamic Control Replication, reproduced.

A Python implementation of *Scaling Implicit Parallelism via Dynamic
Control Replication* (Bauer et al., PPoPP 2021): a Legion-like implicitly
parallel tasking runtime whose control program is replicated across shards,
with a distributed two-stage dependence analysis, control-determinism
checking, and a discrete-event machine simulator that regenerates the
paper's evaluation figures.

Quick start::

    from repro import Runtime

    def main(ctx):
        fs = ctx.create_field_space([("x", "f8")])
        cells = ctx.create_region(ctx.create_index_space(64), fs)
        tiles = ctx.partition_equal(cells, 4)
        ctx.fill(cells, "x", 1.0)
        ctx.index_launch(lambda p, r: r["x"].view.__iadd__(1.0),
                         range(4), [(tiles, "x", "rw")])

    Runtime(num_shards=4).execute(main)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from .oracle import (READ_ONLY, READ_WRITE, WRITE_DISCARD, Privilege,
                     RegionRequirement, reduce_priv)
from .regions import (Field, FieldSpace, IndexSpace, LogicalRegion,
                      Partition, Rect)
from .runtime import (BlockedMapper, Context, DefaultMapper, Future,
                      FutureMap, Mapper, Runtime)
from .core import (CYCLIC, BLOCKED, HASHED, ControlDeterminismViolation,
                   CounterRNG, DCRPipeline, DivergenceDiagnosis, Operation,
                   TaskGraph)
from .faults import (CollectiveTimeout, FaultInjector, FaultPlan,
                     MessageFault, PlannedCrash, PlannedFlip, ShardCrash)
from .obs import Profiler, get_profiler, profiled
from .resilience import (RecoveryPolicy, RecoveryReport, ResilienceConfig)

__version__ = "1.0.0"

__all__ = [
    "READ_ONLY", "READ_WRITE", "WRITE_DISCARD", "Privilege",
    "RegionRequirement", "reduce_priv",
    "Field", "FieldSpace", "IndexSpace", "LogicalRegion", "Partition", "Rect",
    "BlockedMapper", "Context", "DefaultMapper", "Future", "FutureMap",
    "Mapper", "Runtime",
    "CYCLIC", "BLOCKED", "HASHED", "ControlDeterminismViolation",
    "CounterRNG", "DCRPipeline", "DivergenceDiagnosis", "Operation",
    "TaskGraph",
    "CollectiveTimeout", "FaultInjector", "FaultPlan", "MessageFault",
    "PlannedCrash", "PlannedFlip", "ShardCrash",
    "Profiler", "get_profiler", "profiled",
    "RecoveryPolicy", "RecoveryReport", "ResilienceConfig",
    "__version__",
]
