"""``repro.obs`` — the shard-level observability subsystem.

Three pieces (docs/observability.md has the guide):

* :mod:`repro.obs.profiler` — per-shard timeline recorder (typed spans and
  instants) plus lifecycle (global no-op singleton, scoped instances,
  pluggable clocks for simulated time);
* :mod:`repro.obs.metrics` — hierarchical counters/gauges registry;
* :mod:`repro.obs.chrome` — Chrome trace-event JSON exporter, one pid per
  shard, loadable in ``chrome://tracing`` or Perfetto.

The event vocabulary lives in :mod:`repro.obs.events`; the CLI that turns a
saved profile into a per-shard summary and a Chrome trace is
``python -m repro.tools.prof``.
"""

from . import events
from .chrome import chrome_trace_events, export_chrome_trace, shard_pid
from .metrics import MetricsRegistry
from .profiler import (Profiler, TimelineEvent, get_profiler, profiled,
                       set_profiler)

__all__ = [
    "events",
    "chrome_trace_events", "export_chrome_trace", "shard_pid",
    "MetricsRegistry",
    "Profiler", "TimelineEvent", "get_profiler", "profiled", "set_profiler",
]
