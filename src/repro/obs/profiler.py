"""The shard-level profiler: typed timeline events + metrics.

Legion-Prof-shaped observability for the reproduction (ROADMAP:
"observability: tracing, metrics, profiling hooks").  A :class:`Profiler`
records two kinds of data:

* **timeline events** — spans (begin/end or pre-timed "complete" events)
  and instants, each tagged with a shard, a category and a name from
  :mod:`repro.obs.events`;
* **metrics** — hierarchical counters/gauges in a
  :class:`~repro.obs.metrics.MetricsRegistry`.

Zero-perturbation contract
--------------------------
Instrumented hot paths hold a reference to a profiler and guard every
emission with a single attribute check::

    prof = self.profiler
    if prof.enabled:
        ...

When disabled (the default) the profiler records nothing, allocates
nothing, and — crucially — is never consulted by any *decision* the
analysis makes, so profiling on vs off yields byte-identical task graphs,
determinism hashes and fence/elision counts.  ``tests/obs/
test_zero_perturbation.py`` holds this as a Hypothesis property and
``tests/perf/test_profiler_overhead.py`` bounds the disabled-path cost.

Clocks
------
Timestamps are microseconds from :meth:`enable` by default (wall clock via
``time.perf_counter``).  A simulated run injects its own clock
(:meth:`set_clock`; see :meth:`repro.sim.engine.SimEngine.attach_profiler`)
so profiles of simulated executions line up with the cost model's notion
of time.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = ["Profiler", "TimelineEvent", "get_profiler", "set_profiler",
           "profiled"]

#: Event record: (ph, shard, cat, name, ts_us, dur_us, args).
#: ``ph`` follows the Chrome trace-event phase letters: "X" complete,
#: "B"/"E" span begin/end, "i" instant.  ``dur_us`` is None except for "X".
TimelineEvent = Tuple[str, int, str, str, float, Optional[float],
                      Optional[Dict[str, Any]]]

_FORMAT_VERSION = 1


class Profiler:
    """Recorder of per-shard timeline events and metrics."""

    __slots__ = ("enabled", "events", "metrics", "_clock", "_origin")

    def __init__(self, enabled: bool = False,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.enabled = enabled
        self.events: List[TimelineEvent] = []
        self.metrics = MetricsRegistry()
        self._clock: Callable[[], float] = clock or time.perf_counter
        self._origin = self._clock()

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> "Profiler":
        """Turn recording on; rebases the time origin to 'now'. Chainable."""
        if not self.events:
            self._origin = self._clock()
        self.enabled = True
        return self

    def disable(self) -> "Profiler":
        self.enabled = False
        return self

    def clear(self) -> None:
        self.events.clear()
        self.metrics.clear()
        self._origin = self._clock()

    def set_clock(self, clock: Callable[[], float],
                  origin: float = 0.0) -> None:
        """Use ``clock`` (seconds) for timestamps — e.g. simulated time.

        ``origin`` is subtracted so simulated profiles start at t=0 by
        default regardless of where the engine's clock stands.
        """
        self._clock = clock
        self._origin = origin

    # -- time ---------------------------------------------------------------

    def now_us(self) -> float:
        """Current timestamp in microseconds since the profile origin."""
        return (self._clock() - self._origin) * 1e6

    # -- timeline emission (call only under an ``enabled`` guard) -----------

    def begin(self, shard: int, cat: str, name: str,
              ts: Optional[float] = None, **args: Any) -> None:
        self.events.append(("B", shard, cat, name,
                            self.now_us() if ts is None else ts,
                            None, args or None))

    def end(self, shard: int, cat: str, name: str,
            ts: Optional[float] = None) -> None:
        self.events.append(("E", shard, cat, name,
                            self.now_us() if ts is None else ts,
                            None, None))

    def complete(self, shard: int, cat: str, name: str, ts: float,
                 dur: float, **args: Any) -> None:
        """A pre-timed span: ``ts``/``dur`` in microseconds."""
        self.events.append(("X", shard, cat, name, ts, max(dur, 0.0),
                            args or None))

    def instant(self, shard: int, cat: str, name: str,
                ts: Optional[float] = None, **args: Any) -> None:
        self.events.append(("i", shard, cat, name,
                            self.now_us() if ts is None else ts,
                            None, args or None))

    # -- metrics convenience -------------------------------------------------

    def count(self, name: str, delta: float = 1) -> None:
        self.metrics.count(name, delta)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    # -- introspection -------------------------------------------------------

    def shards(self) -> List[int]:
        """Shards (incl. the control pseudo-shard) that emitted events."""
        return sorted({e[1] for e in self.events})

    def events_for(self, shard: int) -> List[TimelineEvent]:
        return [e for e in self.events if e[1] == shard]

    # -- (de)serialization ---------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The profile as one JSON-safe dict (the ``run.trace.json`` form)."""
        return {
            "format": "repro-profile",
            "version": _FORMAT_VERSION,
            "events": [
                {"ph": ph, "shard": shard, "cat": cat, "name": name,
                 "ts": ts, **({"dur": dur} if dur is not None else {}),
                 **({"args": args} if args else {})}
                for ph, shard, cat, name, ts, dur, args in self.events
            ],
            "metrics": self.metrics.as_dict(),
        }

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.snapshot(), f, indent=1)

    @staticmethod
    def load(path: str) -> Dict[str, Any]:
        """Load and validate a saved profile dict (not a live Profiler)."""
        with open(path) as f:
            data = json.load(f)
        if data.get("format") != "repro-profile":
            raise ValueError(f"{path} is not a repro profile "
                             f"(format={data.get('format')!r})")
        return data


# ---------------------------------------------------------------------------
# The global default profiler: a disabled no-op until someone enables it.
# Instrumented components capture it at construction time unless handed an
# explicit instance, so enabling/disabling mutates this object in place
# rather than swapping it out.
# ---------------------------------------------------------------------------

_PROFILER = Profiler(enabled=False)


def get_profiler() -> Profiler:
    """The process-wide default profiler (disabled unless enabled)."""
    return _PROFILER


def set_profiler(profiler: Profiler) -> Profiler:
    """Replace the global default; returns the previous one.

    Components constructed *before* the swap keep their captured reference —
    prefer passing ``profiler=`` explicitly (Runtime, DCRPipeline, ...) for
    scoped profiling, and use this only for whole-process sessions (the
    benchmark harness's ``REPRO_PROFILE_DIR`` hook).
    """
    global _PROFILER
    prev, _PROFILER = _PROFILER, profiler
    return prev


class profiled:
    """``with profiled() as prof:`` — enable the global profiler for a block.

    Restores the previous enabled state (and clears nothing) on exit, so
    nesting and post-mortem inspection both work.
    """

    def __init__(self, profiler: Optional[Profiler] = None) -> None:
        self.profiler = profiler or _PROFILER
        self._was_enabled = False

    def __enter__(self) -> Profiler:
        self._was_enabled = self.profiler.enabled
        return self.profiler.enable()

    def __exit__(self, *exc: Any) -> None:
        self.profiler.enabled = self._was_enabled
