"""Chrome trace-event export: load profiles in ``chrome://tracing``/Perfetto.

Emits the JSON Object Format of the Trace Event spec: one *process* (pid)
per shard — pid 0 is the control plane (:data:`~repro.obs.events.
CONTROL_SHARD`), shard ``s`` maps to pid ``s + 1`` — and one *thread* (tid)
per event category within each shard, so a shard's coarse, fine,
collective, trace and execution activity stack as parallel tracks.

Span begin/end pairs pass through as ``B``/``E`` events, pre-timed spans as
``X`` (complete) events, instants as ``i`` with thread scope; metadata
events name every process and thread.  Events are sorted by timestamp
(metadata first), which both viewers and our schema test
(``tests/obs/test_chrome_export.py``) rely on.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from .events import (CAT_COARSE, CAT_COLLECTIVE, CAT_CONTROL,
                     CAT_DETERMINISM, CAT_EXEC, CAT_FINE, CAT_PIPELINE,
                     CAT_SIM, CAT_TRACE, CONTROL_SHARD)
from .profiler import Profiler

__all__ = ["chrome_trace_events", "export_chrome_trace", "shard_pid"]

#: Stable track order within a shard process; unknown categories follow.
_CATEGORY_ORDER = [CAT_CONTROL, CAT_PIPELINE, CAT_COARSE, CAT_FINE,
                   CAT_COLLECTIVE, CAT_TRACE, CAT_DETERMINISM, CAT_EXEC,
                   CAT_SIM]


def shard_pid(shard: int) -> int:
    """Chrome pid of a shard (control plane -> 0, shard s -> s + 1)."""
    return 0 if shard == CONTROL_SHARD else shard + 1


def _normalize(profile: Union[Profiler, Dict[str, Any]]) -> Dict[str, Any]:
    if isinstance(profile, Profiler):
        return profile.snapshot()
    return profile


def chrome_trace_events(profile: Union[Profiler, Dict[str, Any]]
                        ) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for one profile, metadata included."""
    snap = _normalize(profile)
    tids: Dict[str, int] = {c: i for i, c in enumerate(_CATEGORY_ORDER)}
    out: List[Dict[str, Any]] = []
    seen: set = set()

    body: List[Dict[str, Any]] = []
    for ev in snap["events"]:
        shard, cat = ev["shard"], ev["cat"]
        pid = shard_pid(shard)
        tid = tids.setdefault(cat, len(tids))
        seen.add((shard, pid, cat, tid))
        entry: Dict[str, Any] = {
            "ph": ev["ph"], "pid": pid, "tid": tid,
            "cat": cat, "name": ev["name"], "ts": ev["ts"],
        }
        if ev["ph"] == "X":
            entry["dur"] = ev.get("dur", 0.0)
        if ev["ph"] == "i":
            entry["s"] = "t"        # thread-scoped instant
        if ev.get("args"):
            entry["args"] = ev["args"]
        body.append(entry)
    body.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))

    # Metadata: one process_name per pid, one thread_name per (pid, tid).
    named_pids: set = set()
    for shard, pid, cat, tid in sorted(seen):
        if pid not in named_pids:
            named_pids.add(pid)
            label = ("control plane" if shard == CONTROL_SHARD
                     else f"shard {shard}")
            out.append({"ph": "M", "pid": pid, "tid": 0,
                        "name": "process_name", "args": {"name": label}})
            out.append({"ph": "M", "pid": pid, "tid": 0,
                        "name": "process_sort_index",
                        "args": {"sort_index": pid}})
        out.append({"ph": "M", "pid": pid, "tid": tid,
                    "name": "thread_name", "args": {"name": cat}})
        out.append({"ph": "M", "pid": pid, "tid": tid,
                    "name": "thread_sort_index",
                    "args": {"sort_index": tid}})
    out.extend(body)
    return out


def export_chrome_trace(profile: Union[Profiler, Dict[str, Any]],
                        path: str) -> Dict[str, Any]:
    """Write the Chrome trace JSON for ``profile``; returns the document."""
    snap = _normalize(profile)
    doc = {
        "traceEvents": chrome_trace_events(snap),
        "displayTimeUnit": "ms",
        "otherData": {"metrics": snap.get("metrics", {})},
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
    return doc
