"""Hierarchical counters/gauges registry for the profiler.

Metric names are dot-separated paths (``"coarse.scans"``,
``"fine.scans.shard2"``); :meth:`MetricsRegistry.rollup` sums a subtree so
reports can show either the aggregate or the per-shard breakdown without
the instrumentation registering both.  Counters accumulate, gauges hold the
last value — the usual split.

The registry is deliberately dumb and allocation-light: two dicts and no
locks (the reproduction is single-threaded; the real system would use
per-shard registries merged at export time, which :meth:`merge` models).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Flat storage of hierarchical counter/gauge names."""

    __slots__ = ("counters", "gauges")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}

    # -- recording ----------------------------------------------------------

    def count(self, name: str, delta: float = 1) -> None:
        """Add ``delta`` to the counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()

    # -- reading ------------------------------------------------------------

    def rollup(self, prefix: str) -> float:
        """Sum of all counters at or under ``prefix`` in the hierarchy."""
        dotted = prefix + "."
        return sum(v for k, v in self.counters.items()
                   if k == prefix or k.startswith(dotted))

    def children(self, prefix: str) -> Iterator[Tuple[str, float]]:
        """(name, value) pairs of counters strictly under ``prefix``."""
        dotted = prefix + "."
        for k in sorted(self.counters):
            if k.startswith(dotted):
                yield k, self.counters[k]

    def as_dict(self) -> Dict[str, float]:
        """One flat dict: counters verbatim, gauges under ``gauge:``.

        This is the form :class:`repro.tools.report.AnalysisReport` and the
        benchmark harness consume; keys sort stably.
        """
        out = dict(sorted(self.counters.items()))
        for k in sorted(self.gauges):
            out[f"gauge:{k}"] = self.gauges[k]
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters add, gauges last-write-win)."""
        for k, v in other.counters.items():
            self.count(k, v)
        self.gauges.update(other.gauges)

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges)
