"""Event taxonomy of the shard-level profiler.

Every timeline event carries a *category* (one per instrumented subsystem;
becomes a Chrome-trace thread within the shard's process) and a *name*
(what happened).  The constants below are the complete vocabulary the
instrumentation emits; the exporter, the ``repro.tools.prof`` CLI, and the
schema tests all key off them, so new instrumentation should extend this
module rather than inventing ad-hoc strings.

Shards are numbered from 0; the pseudo-shard :data:`CONTROL_SHARD` holds
events that belong to the replicated control plane as a whole (coarse-stage
bookkeeping, trace-cache transitions, determinism batches) rather than to
any one shard's timeline.
"""

from __future__ import annotations

__all__ = [
    "CONTROL_SHARD",
    "CAT_PIPELINE", "CAT_COARSE", "CAT_FINE", "CAT_COLLECTIVE", "CAT_TRACE",
    "CAT_DETERMINISM", "CAT_EXEC", "CAT_CONTROL", "CAT_SIM",
    "CAT_FAULT", "CAT_RESILIENCE", "CAT_SERVICE",
    "EV_OP_ANALYZE", "EV_COARSE_GROUP", "EV_FINE_POINTS",
    "EV_FENCE_INSERT", "EV_FENCE_ELIDE",
    "EV_TRACE_RECORD", "EV_TRACE_REPLAY", "EV_TRACE_FALLBACK",
    "EV_DET_CHECK", "EV_DET_LOCALIZE",
    "EV_EXEC_POINT", "EV_CONTROL_REPLAY", "EV_SIM_EVENT",
    "EV_FAULT_INJECT", "EV_FAULT_RETRY", "EV_SHARD_CRASH",
    "EV_QUARANTINE", "EV_RECOVERY", "EV_SNAPSHOT",
    "EV_SESSION_OPEN", "EV_SESSION_CLOSE", "EV_JOB_ADMIT", "EV_JOB_REJECT",
    "EV_JOB_DISPATCH", "EV_JOB_DONE", "EV_JOB_EXPIRE", "EV_TEMPLATE_HIT",
    "EV_TEMPLATE_RECORDED", "EV_GANG_START", "EV_GANG_REBUILD",
    "EV_HB_SUSPECT", "EV_HB_DEAD", "EV_GANG_RESPAWN", "EV_GANG_REJOIN",
    "ANALYSIS_CATEGORIES",
]

#: Events charged to the control plane rather than one shard.
CONTROL_SHARD = -1

# -- categories (Chrome-trace threads within a shard process) ---------------

CAT_PIPELINE = "pipeline"          # whole-op analysis spans
CAT_COARSE = "coarse"              # coarse-group stage (charged to all shards)
CAT_FINE = "fine"                  # fine point stage (per-shard share)
CAT_COLLECTIVE = "collective"      # collective rounds (per shard, per round)
CAT_TRACE = "trace"                # trace record / replay / fallback
CAT_DETERMINISM = "determinism"    # hash batches and their all-reduce
CAT_EXEC = "exec"                  # point-task execution
CAT_CONTROL = "control"            # per-shard control-program replay
CAT_SIM = "sim"                    # discrete-event simulator ticks
CAT_FAULT = "fault"                # injected faults, retries, crashes
CAT_RESILIENCE = "resilience"      # quarantine / recovery / snapshots
CAT_SERVICE = "service"            # session/job lifecycle on the service

#: Categories the prof CLI rolls into the per-shard "time in ..." table.
ANALYSIS_CATEGORIES = (CAT_COARSE, CAT_FINE, CAT_COLLECTIVE, CAT_TRACE,
                       CAT_DETERMINISM, CAT_EXEC, CAT_FAULT, CAT_RESILIENCE,
                       CAT_SERVICE)

# -- event names ------------------------------------------------------------

EV_OP_ANALYZE = "op.analyze"           # span: one operation through analysis
EV_COARSE_GROUP = "coarse.group"       # span: coarse-group scan of one op
EV_FINE_POINTS = "fine.points"         # span: a shard's point analysis share
EV_FENCE_INSERT = "fence.insert"       # instant: cross-shard fence inserted
EV_FENCE_ELIDE = "fence.elide"         # instant: fence(s) provably elided
EV_TRACE_RECORD = "trace.record"       # instant: a fragment was recorded
EV_TRACE_REPLAY = "trace.replay"       # instant: a replay began serving
EV_TRACE_FALLBACK = "trace.fallback"   # instant: replay abandoned (divergence)
EV_DET_CHECK = "determinism.check"     # span: one batched hash all-reduce
EV_DET_LOCALIZE = "determinism.localize"  # span: window allgather + bisect
EV_EXEC_POINT = "exec.point"           # span: one point task body
EV_CONTROL_REPLAY = "control.replay"   # span: one shard's control program
EV_SIM_EVENT = "sim.event"             # instant: one simulator event fired
EV_FAULT_INJECT = "fault.inject"       # instant: an injected fault fired
EV_FAULT_RETRY = "fault.retry"         # instant: one message retransmission
EV_SHARD_CRASH = "fault.crash"         # instant: a shard's replay died
EV_QUARANTINE = "resilience.quarantine"  # instant: shard removed from set
EV_RECOVERY = "resilience.recover"     # span: one recovery attempt
EV_SNAPSHOT = "resilience.snapshot"    # instant: region snapshot captured
EV_SESSION_OPEN = "service.session.open"    # instant: client session opened
EV_SESSION_CLOSE = "service.session.close"  # instant: client session closed
EV_JOB_ADMIT = "service.job.admit"     # instant: submission admitted
EV_JOB_REJECT = "service.job.reject"   # instant: submission refused (load)
EV_JOB_DISPATCH = "service.job.dispatch"  # span: one program on the gang
EV_JOB_DONE = "service.job.done"       # instant: submission completed
EV_TEMPLATE_HIT = "service.template.hit"       # instant: analysis skipped
EV_TEMPLATE_RECORDED = "service.template.record"  # instant: template cached
EV_GANG_START = "service.gang.start"   # instant: persistent gang launched
EV_GANG_REBUILD = "service.gang.rebuild"  # instant: gang rebuilt (recovery)
EV_JOB_EXPIRE = "service.job.expire"   # instant: deadline missed pre-dispatch
EV_HB_SUSPECT = "resilience.hb.suspect"  # instant: phi crossed phi_suspect
EV_HB_DEAD = "resilience.hb.dead"      # instant: phi crossed phi_dead
EV_GANG_RESPAWN = "service.gang.respawn"  # instant: replacement forked
EV_GANG_REJOIN = "service.gang.rejoin"    # instant: gang back at full width
