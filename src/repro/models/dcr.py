"""Dynamic control replication execution model (Fig. 1 bottom; §4).

Analysis is performed by one shard per node (or per GPU).  Each shard's
analysis clock advances through the operation stream in program order:

* a cross-shard fence (derived by running the **real coarse analysis** over
  the application's real operations when available) synchronizes all shards
  with an O(log N) all-gather;
* an untraced op costs the coarse group-level charge on every shard, plus
  the fine per-point charge for the points the shard owns;
* a traced op (Fig. 21) costs only the replay charge — either because the
  app annotated it (``tracing=True``) or because the automatic trace
  identifier recognized the repeated fragment (``tracing="auto"``, zero
  app annotations);
* control-determinism checks add a small per-call hash cost (§3/§5.5).

Execution of each point task then waits for its owner shard's analysis —
the pipelining the paper describes falls out naturally, since analysis
clocks run ahead of execution whenever task granularity exceeds analysis
cost.
"""

from __future__ import annotations

import math
from typing import List, Optional, Set

import numpy as np

from ..core.coarse import CoarseAnalysis
from ..core.tracing import AutoTraceConfig, _op_signature, auto_replay_flags
from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.machine import MachineSpec, ProcKind
from ..sim.workload import SimOp, SimProgram
from .base import ExecutionModel

__all__ = ["DCRModel"]


class DCRModel(ExecutionModel):
    name = "dcr"

    def __init__(self, machine: MachineSpec, costs: CostModel = DEFAULT_COSTS,
                 shards_per: str = "node", safe_checks: bool = True,
                 tracing=True, sharding: str = "blocked",
                 window: Optional[int] = None,
                 auto_trace_config: Optional[AutoTraceConfig] = None,
                 backend: str = "inprocess"):
        super().__init__(machine, costs)
        if shards_per not in ("node", "gpu"):
            raise ValueError("shards_per must be 'node' or 'gpu'")
        if tracing not in (True, False, "auto"):
            raise ValueError("tracing must be True, False, or 'auto'")
        if sharding not in ("blocked", "cyclic"):
            raise ValueError("sharding must be 'blocked' or 'cyclic'")
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 operation")
        if backend not in ("inprocess", "multiprocess"):
            raise ValueError(
                "backend must be 'inprocess' or 'multiprocess'")
        # "multiprocess" models shards as separate OS processes exchanging
        # frames over pipes (repro.dist): collective hops and determinism
        # hashing pick up the CostModel's IPC surcharges.
        self.backend = backend
        self.shards_per = shards_per
        self.safe_checks = safe_checks
        # tracing=True trusts the app's per-op `traced` annotations
        # (explicit begin/end_trace discipline); tracing="auto" ignores the
        # annotations and derives replay status from the same repeat
        # detector the functional pipeline uses — zero app changes.
        self.tracing = tracing
        self.auto_trace_config = auto_trace_config
        self.sharding = sharding
        # Legion bounds how many operations the analysis may run ahead of
        # execution (the mapper-configurable window); None = unbounded.
        self.window = window
        self._busy = 0.0

    # -- fence derivation -------------------------------------------------------

    def _fence_positions(self, program: SimProgram, shards: int) -> Set[int]:
        """Op indices preceded by a cross-shard fence.

        Runs the genuine coarse analysis when every op carries a real
        Operation; falls back to per-op ``fence`` annotations otherwise.
        """
        if shards <= 1:
            return set()
        if all(op.operation is not None for op in program.ops):
            # Always derive the fence structure from the genuine coarse
            # analysis; tracing changes what the replay *costs*, never which
            # synchronization the program needs.
            coarse = CoarseAnalysis(num_shards=shards)
            positions: Set[int] = set()
            for i, op in enumerate(program.ops):
                assert op.operation is not None
                op.operation.seq = i
                _deps, fences = coarse.analyze(op.operation)
                if fences:
                    positions.add(i)
            return positions
        return {i for i, op in enumerate(program.ops) if op.fence}

    # -- automatic trace identification -----------------------------------------

    def _auto_traced_flags(self, program: SimProgram) -> List[bool]:
        """Replay status per op, derived by the repeat detector.

        Ops carrying a real Operation are keyed by the same hash-consed
        signature the functional trace cache uses; annotation-only ops fall
        back to a (name, points) key, which is conservative (iteration-
        numbered names never repeat, so such ops are never traced).
        """
        sigs = [
            _op_signature(op.operation) if op.operation is not None
            else ("sim", op.name, op.points, op.proc_kind.value)
            for op in program.ops
        ]
        return auto_replay_flags(sigs, self.auto_trace_config)

    # -- analysis schedule --------------------------------------------------------
    #
    # The analysis runs incrementally (begin_run/op_ready) so the bounded
    # operation window can throttle it on execution progress; the batch
    # analysis_schedule entry point drives the same machinery without
    # feedback for API compatibility.

    def begin_run(self, program: SimProgram) -> None:
        m = self.machine
        self._shards = m.nodes if self.shards_per == "node" \
            else max(1, m.nodes * m.gpus_per_node)
        self._fence_at = self._fence_positions(program, self._shards)
        ipc = self.backend == "multiprocess"
        hop = self.costs.fence_hop + (self.costs.ipc_hop if ipc else 0.0)
        self._fence_latency = (
            hop * max(1, math.ceil(math.log2(self._shards)))
            if self._shards > 1 else 0.0)
        self._clock = np.zeros(self._shards)
        self._det = ((self.costs.determinism_per_call
                      + (self.costs.ipc_per_call if ipc else 0.0))
                     if self.safe_checks else 0.0)
        self._auto_traced = (self._auto_traced_flags(program)
                             if self.tracing == "auto" else None)
        self._blocked_since = None
        self._busy = 0.0

    def op_ready(self, op: SimOp, done) -> np.ndarray:
        if self.window is not None and op.index >= self.window:
            # The window is full until the op `window` places back retires.
            release = float(done[op.index - self.window].max())
            np.maximum(self._clock, release, out=self._clock)
        if self._blocked_since is not None:
            # The control program read a future produced by an earlier op
            # (e.g. Pennant's dt reduction): every shard's analysis stalled
            # until that op executed — the blocking downstream effect the
            # paper attributes to the global dt collective.
            release = float(done[self._blocked_since].max())
            np.maximum(self._clock, release, out=self._clock)
            self._blocked_since = None
        if op.blocks_analysis:
            self._blocked_since = op.index
        r = self._advance(op)
        self._busy = float(self._clock.max())
        return r

    def analysis_schedule(self, program: SimProgram) -> List[np.ndarray]:
        self.begin_run(program)
        ready: List[np.ndarray] = []
        for op in program.ops:
            ready.append(self._advance(op))
        self._busy = float(self._clock.max())
        return ready

    def _advance(self, op: SimOp) -> np.ndarray:
        m = self.machine
        shards, clock, c = self._shards, self._clock, self.costs
        fence_at, fence_latency, det = (self._fence_at, self._fence_latency,
                                        self._det)
        if True:
            if op.index in fence_at:
                release = clock.max() + fence_latency
                np.maximum(clock, release, out=clock)
            pts = np.arange(op.points)
            if self.sharding == "blocked":
                owner = np.minimum(pts * shards // max(op.points, 1),
                                   shards - 1)
            else:
                owner = pts % shards
            traced = (self._auto_traced[op.index]
                      if self._auto_traced is not None else op.traced)
            if self.tracing and traced:
                clock += c.trace_replay_per_op + det
            else:
                clock += c.coarse_per_op + det
                counts = np.bincount(owner, minlength=shards)
                clock += counts * (c.fine_per_point + c.sharding_eval)
                if shards > 1:
                    # Points whose analysis shard differs from the executing
                    # node ship task meta-data across the network — extra
                    # analysis work per misplaced point (the cost a good
                    # sharding function avoids, paper §4).
                    ppn = max(1, m.procs_per_node(op.proc_kind))
                    total = m.nodes * ppn
                    exec_node = np.minimum(
                        pts * total // max(op.points, 1), total - 1) // ppn
                    shard_node = (owner * m.nodes // shards
                                  if self.shards_per == "gpu" else owner)
                    misplaced = shard_node != exec_node
                    remote = np.bincount(owner[misplaced], minlength=shards)
                    clock += remote * m.inter_lat
        return clock[owner].copy()
