"""Static control replication execution model (Fig. 1 top; Regent SCR).

The compiler partitions the control loop into one explicitly parallel copy
per node at *compile time*, so there is no runtime dependence analysis at
all — only per-op SPMD bookkeeping and local launches.  The price is
applicability: programs with dynamic partition counts or control flow the
static analysis cannot handle (Soleil-X, HTR — §5.2) do not compile, which
this model surfaces as :class:`SCRInapplicable`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.machine import MachineSpec
from ..sim.workload import SimProgram
from .base import ExecutionModel

__all__ = ["SCRInapplicable", "SCRModel"]


class SCRInapplicable(RuntimeError):
    """The static compiler cannot handle this program (paper §5.2)."""


class SCRModel(ExecutionModel):
    name = "scr"

    def __init__(self, machine: MachineSpec, costs: CostModel = DEFAULT_COSTS):
        super().__init__(machine, costs)
        self._busy = 0.0

    def analysis_schedule(self, program: SimProgram) -> List[np.ndarray]:
        if not program.scr_applicable:
            raise SCRInapplicable(
                f"{program.name}: static control replication cannot compile "
                f"this program (dynamic partitions / data-dependent control "
                f"flow)")
        c = self.costs
        shards = self.machine.nodes
        clock = np.zeros(shards)
        ready: List[np.ndarray] = []
        for op in program.ops:
            pts = np.arange(op.points)
            owner = np.minimum(pts * shards // max(op.points, 1), shards - 1)
            clock += c.scr_per_op
            counts = np.bincount(owner, minlength=shards)
            clock += counts * c.scr_per_point
            ready.append(clock[owner].copy())
        self._busy = float(clock.max())
        return ready
