"""Event-driven executor: a second, independent scheduling engine.

`ExecutionModel.run` uses deterministic list scheduling (program-order FIFO
per processor).  Real machines behave more like Realm: a processor picks
whichever ready task arrives first, regardless of issue order.  This module
implements that policy on the discrete-event engine and serves as a
cross-validation of the performance layer: for serialized chains the two
engines must agree exactly, and in general both are bounded below by the
critical path and above by each other within a small factor — so the
figure-level conclusions do not hinge on the scheduling policy
(`tests/models/test_des.py`).
"""

from __future__ import annotations

import heapq
import itertools
from collections import defaultdict
from typing import Dict, List, Tuple

from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.machine import MachineSpec, ProcKind
from ..sim.network import NetworkModel
from ..sim.workload import SimProgram, edge_sources, placement
from .base import ExecutionModel, SimResult

__all__ = ["EventDrivenExecutor"]


class EventDrivenExecutor:
    """Run a SimProgram with readiness-order (greedy) processor scheduling.

    Analysis-ready times come from any :class:`ExecutionModel`'s schedule
    (unbounded window only); execution is simulated with an event queue:
    a point task becomes *available* when its analysis and all producer
    transfers complete, and each processor always runs the available task
    with the earliest availability time.
    """

    def __init__(self, machine: MachineSpec, model: ExecutionModel):
        self.machine = machine
        self.model = model

    # -- edge cost (scalar twin of the vectorized _edge_max) ----------------------

    def _edge_cost(self, nbytes: float, src_node: int, dst_node: int,
                   kind: ProcKind, ingress: int) -> float:
        m = self.machine
        if nbytes <= 0:
            return 0.0
        if src_node == dst_node:
            return m.intra_lat + nbytes / m.intra_bw
        t = m.inter_lat + max(1, ingress) * nbytes / m.inter_bw
        if kind is ProcKind.GPU and not m.gpudirect:
            t += 2 * (m.intra_lat + nbytes / m.host_staging_bw) \
                + m.staging_overhead
        return t

    def run(self, program: SimProgram) -> SimResult:
        machine = self.machine
        ready = self.model.analysis_schedule(program)
        ppn = {ProcKind.GPU: max(1, machine.gpus_per_node),
               ProcKind.CPU: max(1, machine.cpus_per_node)}

        # Build the point-level consumer graph up front.
        node_of: List[List[int]] = []
        proc_of: List[List[int]] = []
        for op in program.ops:
            nodes, procs = [], []
            for p in range(op.points):
                n, q = placement(p, op.points, machine.nodes,
                                 ppn[op.proc_kind])
                nodes.append(n)
                procs.append(n * ppn[op.proc_kind] + q)
            node_of.append(nodes)
            proc_of.append(procs)

        indeg: Dict[Tuple[int, int], int] = defaultdict(int)
        consumers: Dict[Tuple[int, int],
                        List[Tuple[int, int, float]]] = defaultdict(list)
        avail: Dict[Tuple[int, int], float] = {}
        net = NetworkModel(machine)
        collective_release: Dict[Tuple[int, int], float] = {}

        for op in program.ops:
            for p in range(op.points):
                avail[(op.index, p)] = float(ready[op.index][p]) \
                    if hasattr(ready[op.index], "__len__") \
                    else float(ready[op.index])
            for dep in op.deps:
                src_op = program.ops[dep.src]
                if dep.pattern == "all":
                    # Treated as: every point waits on every source point,
                    # with a single collective charge added at release.
                    for p in range(op.points):
                        for q in range(src_op.points):
                            indeg[(op.index, p)] += 1
                            consumers[(dep.src, q)].append(
                                (op.index, p, -1.0))
                    collective_release[(op.index, dep.src)] = \
                        net.collective_time(
                            dep.nbytes, max(src_op.points, op.points),
                            op.proc_kind,
                            staging_contention=getattr(
                                self.model,
                                "collective_staging_contention", 1),
                            bw_efficiency=self.model
                            .collective_efficiency_for(dep.nbytes))
                    continue
                # Offset-derived sources are charged transfers; the own
                # tile (halo pattern) is a free local dependence — the same
                # semantics as the vectorized executor.
                def offset_sources(p: int):
                    if dep.pattern == "pointwise":
                        return list(edge_sources(dep, p, src_op.points,
                                                 op.points, op.grid))
                    out = []
                    offsets = dep.offsets or (-1, 1)
                    if op.grid is None:
                        for off in offsets:
                            q = p + int(off)
                            if 0 <= q < src_op.points:
                                out.append(q)
                    else:
                        import numpy as np
                        coords = np.unravel_index(p, op.grid)
                        for off in offsets:
                            qc = [c + o for c, o in zip(coords, off)]
                            if all(0 <= c < e
                                   for c, e in zip(qc, op.grid)):
                                lin = int(np.ravel_multi_index(qc, op.grid))
                                if lin < src_op.points:
                                    out.append(lin)
                    return out

                per_node = [0] * machine.nodes
                edges = []
                for p in range(op.points):
                    srcs = [(q, True) for q in offset_sources(p)]
                    if dep.pattern == "halo":
                        own = min(p, src_op.points - 1)
                        srcs.append((own, False))   # free local edge
                    edges.append(srcs)
                    if dep.nbytes > 0:
                        for q, charged in srcs:
                            if charged and node_of[dep.src][q] \
                                    != node_of[op.index][p]:
                                per_node[node_of[op.index][p]] += 1
                for p, srcs in enumerate(edges):
                    for q, charged in srcs:
                        cost = self._edge_cost(
                            dep.nbytes, node_of[dep.src][q],
                            node_of[op.index][p], op.proc_kind,
                            per_node[node_of[op.index][p]]) if charged \
                            else 0.0
                        indeg[(op.index, p)] += 1
                        consumers[(dep.src, q)].append((op.index, p, cost))

        # Event-driven execution: per-processor ready heaps.
        total_procs = max(machine.nodes * v for v in ppn.values())
        proc_heap: Dict[int, list] = defaultdict(list)
        proc_free: Dict[int, float] = defaultdict(float)
        tiebreak = itertools.count()
        done: Dict[Tuple[int, int], float] = {}
        events: list = []        # (time, seq, kind, payload)

        def enqueue_if_ready(key: Tuple[int, int]) -> None:
            if indeg[key] == 0 and key not in done:
                op_idx, p = key
                proc = proc_of[op_idx][p]
                heapq.heappush(proc_heap[proc],
                               (avail[key], next(tiebreak), key))
                heapq.heappush(events,
                               (max(avail[key], proc_free[proc]),
                                next(tiebreak), proc))

        for op in program.ops:
            for p in range(op.points):
                enqueue_if_ready((op.index, p))

        completed = 0
        total_tasks = sum(op.points for op in program.ops)
        while completed < total_tasks:
            if not events:
                raise RuntimeError("event-driven executor stalled "
                                   "(dependence cycle?)")
            now, _seq, proc = heapq.heappop(events)
            heap = proc_heap[proc]
            # Find an available task on this processor.
            while heap and heap[0][2] in done:
                heapq.heappop(heap)
            if not heap or proc_free[proc] > now:
                continue
            task_avail, _tb, key = heap[0]
            if task_avail > now:
                heapq.heappush(events, (task_avail, next(tiebreak), proc))
                continue
            heapq.heappop(heap)
            op_idx, p = key
            op = program.ops[op_idx]
            start = max(now, proc_free[proc], avail[key])
            end = start + op.duration
            proc_free[proc] = end
            done[key] = end
            completed += 1
            # Notify consumers.
            for c_op, c_p, cost in consumers[key]:
                ckey = (c_op, c_p)
                if cost < 0:
                    release = collective_release.get((c_op, op_idx), 0.0)
                    arrive = end + release
                else:
                    arrive = end + cost
                avail[ckey] = max(avail[ckey], arrive)
                indeg[ckey] -= 1
                enqueue_if_ready(ckey)
            # This processor may immediately run another task.
            if heap:
                heapq.heappush(events,
                               (max(heap[0][0], end), next(tiebreak), proc))

        op_done = [max(done[(op.index, p)] for p in range(op.points))
                   for op in program.ops]
        makespan = max(op_done) if op_done else 0.0
        ranges = program.iteration_ranges
        if ranges:
            first_start, _ = ranges[0]
            t0 = (max(op_done[:first_start]) if first_start else 0.0)
            t1 = max(op_done[first_start:ranges[-1][1]])
            iteration = (t1 - t0) / len(ranges)
        else:
            iteration = makespan
        throughput = (program.work_per_iteration / iteration
                      if iteration > 0 else 0.0)
        return SimResult(
            model=f"des:{self.model.name}", machine=machine.name,
            nodes=machine.nodes, makespan=makespan,
            iteration_time=iteration, throughput=throughput,
            op_done=op_done)
