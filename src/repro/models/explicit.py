"""Explicitly parallel (MPI-style) execution model.

The programmer has already choreographed all communication and
synchronization, so there is no dependence analysis: every point task is
launched by its own rank with only a small matching overhead.  Used as the
comparison system for Pennant (Fig. 14), in three configurations selected
through the :class:`repro.sim.machine.MachineSpec`:

* CPU-only (``proc_kind=CPU`` ops),
* MPI+CUDA (GPU ops, ``gpudirect=False`` — inter-node GPU data staged
  through host memory),
* MPI+CUDA+GPUDirect (``gpudirect=True``).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.machine import MachineSpec
from ..sim.workload import SimProgram
from .base import ExecutionModel

__all__ = ["ExplicitModel"]


class ExplicitModel(ExecutionModel):
    name = "mpi"

    def __init__(self, machine: MachineSpec, costs: CostModel = DEFAULT_COSTS,
                 label: str = "mpi", intra_via_host: bool = False):
        super().__init__(machine, costs)
        self.name = label
        # One rank per GPU without GPUDirect P2P: intra-node exchanges are
        # staged through host memory instead of NVLink (Fig. 14's MPI+CUDA),
        # and collectives contend for the node's host copy path.
        self.intra_via_host = intra_via_host
        self.collective_staging_contention = (
            max(1, machine.gpus_per_node) if intra_via_host else 1)
        self._busy = 0.0

    def analysis_schedule(self, program: SimProgram) -> List[np.ndarray]:
        c = self.costs
        shards = max(1, self.machine.nodes)
        clock = np.zeros(shards)
        ready: List[np.ndarray] = []
        for op in program.ops:
            pts = np.arange(op.points)
            owner = np.minimum(pts * shards // max(op.points, 1), shards - 1)
            counts = np.bincount(owner, minlength=shards)
            clock += counts * c.mpi_per_point
            ready.append(clock[owner].copy())
        self._busy = float(clock.max())
        return ready
