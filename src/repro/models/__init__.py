"""Execution models: the three approaches of Fig. 1 plus explicit MPI."""

from .base import ExecutionModel, SimResult
from .centralized import (CentralizedModel, DaskModel, LegionNoCRModel,
                          SparkModel, TensorFlowModel)
from .dcr import DCRModel
from .des import EventDrivenExecutor
from .explicit import ExplicitModel
from .scr import SCRInapplicable, SCRModel

__all__ = [
    "ExecutionModel", "SimResult",
    "CentralizedModel", "DaskModel", "LegionNoCRModel", "SparkModel",
    "TensorFlowModel",
    "DCRModel", "EventDrivenExecutor", "ExplicitModel", "SCRInapplicable",
    "SCRModel",
]
