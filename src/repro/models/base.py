"""Shared execution scheduler for all execution models (Fig. 1).

Every model — centralized lazy evaluation, static control replication,
dynamic control replication, explicit MPI-style — executes the *same*
application operation stream on the *same* simulated machine; they differ
only in when each point task's *analysis/launch* completes (the model's
``analysis_schedule``) and in which runtime collectives they insert.

Execution itself is deterministic list scheduling over numpy arrays:

* point p of an op is placed on a processor by the blocked mapping;
* p may start when (a) its analysis is done, (b) all producer points have
  finished and their data has arrived (pattern-expanded edges, or an
  O(log N) collective for ``all`` dependences), and (c) its processor is
  free;
* processors are FIFO-serial.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.machine import MachineSpec, ProcKind
from ..sim.network import NetworkModel, TrafficStats
from ..sim.workload import DepSpec, SimOp, SimProgram, placement

__all__ = ["SimResult", "ExecutionModel"]


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    model: str
    machine: str
    nodes: int
    makespan: float
    iteration_time: float
    throughput: float                   # work units per second
    analysis_busy: float = 0.0          # max per-resource analysis busy time
    traffic: Optional[TrafficStats] = None
    op_done: List[float] = field(default_factory=list)
    proc_busy: float = 0.0              # total processor busy time (s)
    proc_count: int = 0                 # processors of the dominant kind

    @property
    def throughput_per_node(self) -> float:
        return self.throughput / max(1, self.nodes)

    @property
    def utilization(self) -> float:
        """Fraction of processor-seconds spent executing tasks."""
        if self.makespan <= 0 or self.proc_count == 0:
            return 0.0
        return min(1.0, self.proc_busy / (self.makespan * self.proc_count))

    @property
    def analysis_fraction(self) -> float:
        """Analysis busy time relative to the whole run (hidden if < 1)."""
        return self.analysis_busy / self.makespan if self.makespan else 0.0


class ExecutionModel(ABC):
    """Template: subclass supplies the analysis/launch schedule."""

    name = "abstract"

    def __init__(self, machine: MachineSpec, costs: CostModel = DEFAULT_COSTS):
        self.machine = machine
        self.costs = costs

    # -- model-specific -----------------------------------------------------------

    @abstractmethod
    def analysis_schedule(self, program: SimProgram) -> List[np.ndarray]:
        """Per op: array of per-point times at which analysis completes."""

    def collective_efficiency_for(self, nbytes: float) -> float:
        """Fraction of ideal ring bandwidth this runtime's collectives
        achieve for the given payload (1.0 = ideal; overridden by models
        whose measured collectives degrade at large payloads)."""
        return 1.0

    # -- shared executor ------------------------------------------------------------

    # -- analysis/execution coupling hooks -----------------------------------------

    def begin_run(self, program: SimProgram) -> None:
        """Initialize per-run analysis state (default: precompute)."""
        self._ready_schedule = self.analysis_schedule(program)

    def op_ready(self, op: SimOp, done: List[np.ndarray]) -> np.ndarray:
        """Per-point analysis-complete times for ``op``.

        ``done`` holds execution completion times of all earlier ops, which
        lets models with a bounded operation window throttle analysis on
        execution progress.  The default indexes the precomputed schedule.
        """
        return self._ready_schedule[op.index]

    def run(self, program: SimProgram) -> SimResult:
        machine = self.machine
        net = NetworkModel(machine)
        self.begin_run(program)
        done: List[np.ndarray] = []
        ppn = {
            ProcKind.GPU: max(1, machine.gpus_per_node),
            ProcKind.CPU: max(1, machine.cpus_per_node),
        }
        avail: Dict[ProcKind, np.ndarray] = {
            k: np.zeros(machine.nodes * ppn[k]) for k in ppn
        }
        node_cache: Dict[Tuple[int, ProcKind], np.ndarray] = {}

        def nodes_of(points: int, kind: ProcKind) -> np.ndarray:
            key = (points, kind)
            arr = node_cache.get(key)
            if arr is None:
                total = machine.nodes * ppn[kind]
                gproc = np.minimum(
                    np.arange(points) * total // max(points, 1), total - 1)
                arr = np.stack([gproc // ppn[kind], gproc])
                node_cache[key] = arr
            return arr

        for op in program.ops:
            n = op.points
            start = np.array(self.op_ready(op, done), dtype=float, copy=True)
            if start.shape != (n,):
                start = np.full(n, float(start))
            dst_nodes, dst_gproc = nodes_of(n, op.proc_kind)
            for dep in op.deps:
                src = done[dep.src]
                src_op = program.ops[dep.src]
                if dep.pattern == "all":
                    t = src.max() + net.collective_time(
                        dep.nbytes, max(src_op.points, n), op.proc_kind,
                        staging_contention=getattr(
                            self, "collective_staging_contention", 1),
                        bw_efficiency=self.collective_efficiency_for(
                            dep.nbytes))
                    np.maximum(start, t, out=start)
                    continue
                src_nodes, _ = nodes_of(src_op.points, src_op.proc_kind)
                self._apply_edges(start, src, dep, op, src_op,
                                  dst_nodes, src_nodes, net)
            # Processor serialization.
            free = avail[op.proc_kind]
            if n <= machine.nodes * ppn[op.proc_kind]:
                begin = np.maximum(start, free[dst_gproc])
                end = begin + op.duration
                free[dst_gproc] = end
            else:
                end = np.empty(n)
                for p in range(n):
                    g = dst_gproc[p]
                    b = max(start[p], free[g])
                    e = b + op.duration
                    free[g] = e
                    end[p] = e
            done.append(end)

        makespan = max((float(d.max()) for d in done), default=0.0)
        iteration_time = self._steady_iteration_time(program, done)
        throughput = (program.work_per_iteration / iteration_time
                      if iteration_time > 0 else 0.0)
        proc_busy = sum(op.points * op.duration for op in program.ops)
        kinds = {op.proc_kind for op in program.ops}
        proc_count = max((machine.nodes * ppn[k] for k in kinds), default=0)
        return SimResult(
            model=self.name, machine=machine.name, nodes=machine.nodes,
            makespan=makespan, iteration_time=iteration_time,
            throughput=throughput, traffic=net.stats,
            analysis_busy=self._analysis_busy(),
            op_done=[float(d.max()) for d in done],
            proc_busy=proc_busy, proc_count=proc_count)

    # -- helpers ----------------------------------------------------------------------

    def _apply_edges(self, start: np.ndarray, src_done: np.ndarray,
                     dep: DepSpec, op: SimOp, src_op: SimOp,
                     dst_nodes: np.ndarray, src_nodes: np.ndarray,
                     net: NetworkModel) -> None:
        """Vectorized pointwise/halo edge application."""
        n = op.points
        m = src_op.points
        if dep.pattern == "pointwise":
            src_idx = (np.arange(n) if m == n
                       else np.minimum(np.arange(n) * m // max(n, 1), m - 1))
            self._edge_max(start, src_done, src_idx, dep.nbytes,
                           dst_nodes, src_nodes, op.proc_kind, net)
            return
        if dep.pattern == "halo":
            offsets = dep.offsets or (-1, 1)
            # Own tile (no transfer).
            own = np.minimum(np.arange(n), m - 1)
            np.maximum(start, src_done[own], out=start)
            # Resolve all offsets first so NIC ingress contention can be
            # computed over the whole exchange: a node receiving k halo
            # messages concurrently serializes them on its interconnect.
            edges = []   # (src_idx, valid) per offset
            if op.grid is None:
                base = np.arange(n)
                for off in offsets:
                    q = base + int(off)
                    valid = (q >= 0) & (q < m)
                    edges.append((np.clip(q, 0, m - 1), valid))
            else:
                coords = np.unravel_index(np.arange(n), op.grid)
                for off in offsets:
                    q_coords = [c + o for c, o in zip(coords, off)]
                    valid = np.ones(n, dtype=bool)
                    for qc, e in zip(q_coords, op.grid):
                        valid &= (qc >= 0) & (qc < e)
                    q = np.ravel_multi_index(
                        [np.clip(qc, 0, e - 1)
                         for qc, e in zip(q_coords, op.grid)], op.grid)
                    edges.append((np.minimum(q, m - 1), valid))
            ingress = None
            if dep.nbytes > 0:
                per_node = np.zeros(self.machine.nodes, dtype=np.int64)
                for q, valid in edges:
                    inter = valid & (src_nodes[q] != dst_nodes)
                    np.add.at(per_node, dst_nodes[inter], 1)
                ingress = np.maximum(per_node, 1)[dst_nodes]
            for q, valid in edges:
                self._edge_max(start, src_done, q, dep.nbytes,
                               dst_nodes, src_nodes, op.proc_kind, net,
                               valid=valid, ingress=ingress)
            return
        raise ValueError(f"unknown pattern {dep.pattern!r}")

    def _edge_max(self, start: np.ndarray, src_done: np.ndarray,
                  src_idx: np.ndarray, nbytes: float,
                  dst_nodes: np.ndarray, src_nodes: np.ndarray,
                  kind: ProcKind, net: NetworkModel,
                  valid: Optional[np.ndarray] = None,
                  ingress: Optional[np.ndarray] = None) -> None:
        m = self.machine
        idx = np.clip(src_idx, 0, len(src_done) - 1)
        arrive = src_done[idx].copy()
        if nbytes > 0:
            same_node = src_nodes[np.clip(idx, 0, len(src_nodes) - 1)] == dst_nodes
            intra = m.intra_lat + nbytes / m.intra_bw
            if ingress is None:
                inter = np.full(len(dst_nodes),
                                m.inter_lat + nbytes / m.inter_bw)
            else:
                # NIC ingress serialization: a node receiving k concurrent
                # halo messages drains them at bw/k each.
                inter = m.inter_lat + ingress * (nbytes / m.inter_bw)
            if kind is ProcKind.GPU and not m.gpudirect:
                inter += 2 * (m.intra_lat + nbytes / m.host_staging_bw) \
                    + m.staging_overhead
            if kind is ProcKind.GPU and getattr(self, "intra_via_host", False):
                # One-rank-per-GPU MPI without GPUDirect P2P: even same-node
                # exchanges bounce through host memory (Fig. 14 discussion),
                # and all ranks on the node contend for the host copy path.
                contend = max(1, m.gpus_per_node)
                stage_bw = m.host_staging_bw / contend
                intra = (m.intra_lat + 2 * nbytes / stage_bw
                         + m.staging_overhead)
                inter = (m.inter_lat + nbytes / m.inter_bw
                         + 2 * (m.intra_lat + nbytes / stage_bw)
                         + m.staging_overhead)
            cost = np.where(same_node, intra, inter)
            arrive += cost
            if valid is None:
                n_intra = int(same_node.sum())
                n_inter = len(same_node) - n_intra
            else:
                n_intra = int((same_node & valid).sum())
                n_inter = int(valid.sum()) - n_intra
            net.stats.intra_msgs += n_intra
            net.stats.inter_msgs += n_inter
            net.stats.intra_bytes += n_intra * nbytes
            net.stats.inter_bytes += n_inter * nbytes
        if valid is not None:
            arrive = np.where(valid, arrive, 0.0)
        np.maximum(start, arrive, out=start)

    def _steady_iteration_time(self, program: SimProgram,
                               done: List[np.ndarray]) -> float:
        ranges = program.iteration_ranges
        if not ranges:
            return max((float(d.max()) for d in done), default=0.0)
        first_start, _ = ranges[0]
        _, last_end = ranges[-1]
        t0 = (max(float(done[i].max()) for i in range(first_start))
              if first_start > 0 else 0.0)
        t1 = max(float(done[i].max()) for i in range(first_start, last_end))
        return (t1 - t0) / len(ranges)

    def _analysis_busy(self) -> float:
        return getattr(self, "_busy", 0.0)
