"""Centralized lazy-evaluation execution model (Fig. 1 middle).

One control node performs all dependence analysis and distributes tasks to
workers — the architecture of Dask, Spark and (for graph construction)
TensorFlow.  Its defining property is that the controller's clock advances
with *total* task count, so the per-node throughput collapses once
``points x per_point_cost`` exceeds per-node task execution time — the
bottleneck the paper measures in Figs. 12-15 and 19-20.

Four presets, one per §1 mitigation strategy:

* ``dask`` — re-analyzes and re-schedules every task every iteration;
* ``spark`` — memoizes repeated executions of code (cached schedules);
* ``tensorflow`` — builds/optimizes the graph once, then only triggers
  cached iterations (the "amortize by representing loops" mitigation),
  so its cost is per-iteration-trigger, not per-task;
* ``legion-nocr`` — the Legion runtime with a single (non-replicated)
  control task: full Legion analysis charges, all paid on one node.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..sim.costs import CostModel, DEFAULT_COSTS
from ..sim.machine import MachineSpec
from ..sim.workload import SimProgram
from .base import ExecutionModel

__all__ = ["CentralizedModel", "DaskModel", "SparkModel", "TensorFlowModel",
           "LegionNoCRModel"]


class CentralizedModel(ExecutionModel):
    name = "centralized"

    def __init__(self, machine: MachineSpec, costs: CostModel = DEFAULT_COSTS,
                 graph_once: bool = False):
        super().__init__(machine, costs)
        self.graph_once = graph_once
        self._busy = 0.0

    def analysis_schedule(self, program: SimProgram) -> List[np.ndarray]:
        c = self.costs
        clock = 0.0
        ready: List[np.ndarray] = []
        ship = self.machine.inter_lat   # controller -> worker task shipment
        for op in program.ops:
            if self.graph_once and op.traced:
                # Cached compiled graph: the controller merely triggers the
                # op; workers already hold their partitions.
                clock += c.controller_per_op * c.controller_memo_factor
            else:
                clock += c.controller_per_op
                clock += op.points * (c.controller_per_point
                                      + c.controller_dispatch)
            ready.append(np.full(op.points, clock + ship))
        self._busy = clock
        return ready


class DaskModel(CentralizedModel):
    """Dask's distributed scheduler: full per-task cost, every iteration.

    Dask's measured scheduler overhead is roughly a millisecond per task
    (graph build + scheduling + serialization), far above Legion's per-task
    analysis — the documented reason dask.array stops scaling in
    Figs. 19-20."""

    name = "dask"
    PER_TASK = 1.0e-3
    PER_TASK_DISPATCH = 0.2e-3

    def __init__(self, machine: MachineSpec, costs: CostModel = DEFAULT_COSTS):
        import dataclasses
        costs = dataclasses.replace(
            costs, controller_per_point=self.PER_TASK,
            controller_dispatch=self.PER_TASK_DISPATCH)
        super().__init__(machine, costs, graph_once=False)


class TensorFlowModel(CentralizedModel):
    """TensorFlow r1.x + Horovod: graph compiled once, iterations replay it.

    Horovod runs one rank per GPU, so without GPUDirect all ranks of a node
    contend for the host staging path during gradient all-reduces — the
    communication behavior behind Fig. 18's gap on the 768M-weight CANDLE
    network (§5.3)."""

    name = "tensorflow"

    # Measured Horovod all-reduce bandwidth collapses for very large fused
    # payloads at scale (fusion-buffer serialization, fat-tree incast); the
    # threshold/efficiency pair is calibrated against the paper's reported
    # 14.9x CANDLE gap while leaving ResNet-50's 102 MB gradients — where
    # the paper measured TF == DCR — at ideal ring speed.
    LARGE_PAYLOAD = 2.56e8
    LARGE_PAYLOAD_EFFICIENCY = 0.08

    def __init__(self, machine: MachineSpec, costs: CostModel = DEFAULT_COSTS):
        super().__init__(machine, costs, graph_once=True)
        self.collective_staging_contention = max(1, machine.gpus_per_node)

    def collective_efficiency_for(self, nbytes: float) -> float:
        if nbytes >= self.LARGE_PAYLOAD:
            return self.LARGE_PAYLOAD_EFFICIENCY
        return 1.0


class SparkModel(CentralizedModel):
    """Spark's mitigation (§1): memoize repeated executions of code.

    The first execution of a stage pays the full centralized analysis and
    scheduling cost; repeated (traced) stages replay a cached schedule at
    the memoization factor — cheaper than Dask's full re-analysis but still
    a per-task centralized cost, unlike TensorFlow's per-trigger replay."""

    name = "spark"

    def analysis_schedule(self, program: SimProgram) -> List[np.ndarray]:
        c = self.costs
        clock = 0.0
        ready: List[np.ndarray] = []
        ship = self.machine.inter_lat
        for op in program.ops:
            if op.traced:
                clock += c.controller_per_op
                clock += op.points * c.controller_dispatch \
                    * c.controller_memo_factor
            else:
                clock += c.controller_per_op
                clock += op.points * (c.controller_per_point
                                      + c.controller_dispatch)
            ready.append(np.full(op.points, clock + ship))
        self._busy = clock
        return ready


class LegionNoCRModel(CentralizedModel):
    """Legion without control replication: one node runs the full two-stage
    analysis for every point task in the system."""

    name = "legion-nocr"

    def analysis_schedule(self, program: SimProgram) -> List[np.ndarray]:
        c = self.costs
        clock = 0.0
        ready: List[np.ndarray] = []
        ship = self.machine.inter_lat
        for op in program.ops:
            clock += c.coarse_per_op
            clock += op.points * (c.fine_per_point + c.sharding_eval)
            ready.append(np.full(op.points, clock + ship))
        self._busy = clock
        return ready
