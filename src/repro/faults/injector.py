"""The fault injector: deterministic decisions from a :class:`FaultPlan`.

Instrumented components (hasher, collectives, trace cache) hold an optional
injector reference and consult it behind an ``inj is not None and
inj.enabled`` guard — the same zero-perturbation discipline the profiler
uses, so a run without an injector (the default) takes no new branches in
any decision path.

Determinism: every probabilistic decision is ``threefry2x64(seed, H(site,
indices))`` — a pure function of the plan and the site coordinates, never
of evaluation order or wall clock.  Divergence-class faults (``hash_flip``,
``shard_crash``, ``trace_corrupt``) additionally fire **at most once per
key** per injector, so a recovery re-execution of the same control program
does not re-trip the fault it is recovering from.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Set, Tuple

from ..core.rng import threefry2x64
from .plan import FaultPlan, MessageFault

__all__ = ["ShardCrash", "CollectiveTimeout", "FaultInjector"]


class ShardCrash(RuntimeError):
    """A shard's control replay died mid-batch (injected or escalated)."""

    def __init__(self, shard: int, seq: int, reason: str = "injected fault"):
        self.shard = shard
        self.seq = seq
        self.reason = reason
        super().__init__(
            f"shard {shard} crashed at API call #{seq} ({reason})")


class CollectiveTimeout(RuntimeError):
    """A collective message exceeded its retry budget."""

    def __init__(self, kind: str, op: int, msg: int, attempts: int):
        self.kind = kind
        self.op = op
        self.msg = msg
        self.attempts = attempts
        super().__init__(
            f"collective {kind} #{op}: message {msg} lost after "
            f"{attempts} transmissions (retry budget exhausted)")


#: Domain-separation stream for fault draws (arbitrary non-zero constant).
_FAULT_STREAM = 0xFA17


def _site_counter(site: str, indices: Tuple[int, ...]) -> Tuple[int, int]:
    """Collapse (site, indices) into a 128-bit Threefry counter."""
    h = hashlib.blake2b(digest_size=16)
    h.update(site.encode())
    for i in indices:
        h.update(b"|" + str(i).encode())
    d = h.digest()
    return (int.from_bytes(d[:8], "little"), int.from_bytes(d[8:], "little"))


class FaultInjector:
    """Turns a :class:`FaultPlan` into per-site go/no-go decisions."""

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan or FaultPlan()
        self._fired: Set[Tuple] = set()     # one-shot keys already consumed
        # Injection log: (site, indices) of every fault that fired, in
        # firing order — consumed by diagnosis reports and tests.
        self.injected: list = []
        # Plain attribute, not a property: ``inj.enabled`` is evaluated on
        # every guarded site, so it must cost one attribute load — the
        # same discipline as ``Profiler.enabled``.  Plans are declared up
        # front and never mutated after the injector is built.
        self.enabled: bool = self.plan.any_faults

    @classmethod
    def from_env(cls) -> Optional["FaultInjector"]:
        plan = FaultPlan.from_env()
        return cls(plan) if plan is not None else None

    # -- decision machinery ---------------------------------------------------

    def _uniform(self, site: str, *indices: int) -> float:
        word, _ = threefry2x64((self.plan.seed, _FAULT_STREAM),
                               _site_counter(site, indices))
        return (word >> 11) * (1.0 / (1 << 53))

    def _rate_hit(self, site: str, *indices: int) -> bool:
        rate = self.plan.rates.get(site, 0.0)
        return rate > 0.0 and self._uniform(site, *indices) < rate

    def _fire_once(self, key: Tuple) -> bool:
        """Consume a one-shot key; False if it already fired."""
        if key in self._fired:
            return False
        self._fired.add(key)
        self.injected.append(key)
        return True

    # -- site: hash_flip ------------------------------------------------------

    def flip_call(self, shard: int, call: int) -> bool:
        """Should ``shard``'s API call number ``call`` be perturbed?"""
        for f in self.plan.flips:
            if f.shard == shard and f.call == call:
                return self._fire_once(("hash_flip", shard, call))
        if self._rate_hit("hash_flip", shard, call):
            return self._fire_once(("hash_flip", shard, call))
        return False

    # -- site: shard_crash ----------------------------------------------------

    def crash_call(self, shard: int, call: int) -> bool:
        """Should ``shard`` crash instead of recording call ``call``?"""
        for c in self.plan.crashes:
            if c.shard == shard and c.call == call:
                return self._fire_once(("shard_crash", shard, call))
        if self._rate_hit("shard_crash", shard, call):
            return self._fire_once(("shard_crash", shard, call))
        return False

    # -- site: collective messages -------------------------------------------

    def _planned_message(self, kind: str, op: int,
                         msg: int) -> Optional[MessageFault]:
        for mf in self.plan.message_faults:
            if mf.op == op and mf.msg == msg and mf.kind in ("", kind):
                return mf
        return None

    def message_event(self, kind: str, op: int, msg: int,
                      attempt: int) -> Optional[str]:
        """Fault affecting transmission ``attempt`` of one message, if any.

        Returns one of :data:`~repro.faults.plan.MESSAGE_EVENTS` or None.
        Planned faults take precedence; probabilistic drops re-roll per
        attempt (so ``p^k`` odds of ``k`` consecutive losses), while delay
        and duplication only apply to the first transmission.
        """
        planned = self._planned_message(kind, op, msg)
        if planned is not None:
            if planned.event == "drop":
                if attempt < planned.attempts:
                    self.injected.append(("msg_drop", kind, op, msg, attempt))
                    return "drop"
                return None
            if attempt == 0:
                self.injected.append(
                    (f"msg_{planned.event}", kind, op, msg, 0))
                return planned.event
            return None
        if self._rate_hit("msg_drop", op, msg, attempt):
            self.injected.append(("msg_drop", kind, op, msg, attempt))
            return "drop"
        if attempt == 0:
            for event in ("delay", "dup"):
                if self._rate_hit(f"msg_{event}", op, msg):
                    self.injected.append((f"msg_{event}", kind, op, msg, 0))
                    return event
        return None

    # -- sites: hb_loss / shard_stall (heartbeat suppression) -----------------

    def drop_beat(self, shard: int, beat: int) -> bool:
        """Should heartbeat number ``beat`` of ``shard`` be suppressed?

        Covers both self-healing liveness sites: a :class:`~repro.faults
        .plan.PlannedBeatLoss` window (``hb_loss``) and a
        :class:`~repro.faults.plan.PlannedStall` window (``shard_stall``)
        both silence the beat; only the window length differs.  Unlike the
        divergence sites these are *per-beat* decisions, not one-shot per
        injector — a stall silences every beat in its window.
        """
        for b in self.plan.beat_losses:
            if b.shard == shard and b.beat <= beat < b.beat + b.count:
                self.injected.append(("hb_loss", shard, beat))
                return True
        for s in self.plan.stalls:
            if s.shard == shard and s.beat <= beat < s.beat + s.beats:
                self.injected.append(("shard_stall", shard, beat))
                return True
        if self._rate_hit("hb_loss", shard, beat):
            self.injected.append(("hb_loss", shard, beat))
            return True
        return False

    # -- site: respawn_fail ---------------------------------------------------

    def fail_respawn(self, rank: int, attempt: int) -> bool:
        """Should the replacement for ``rank`` die on arrival (1-based)?"""
        for f in self.plan.respawn_fails:
            if f.rank == rank and f.attempt == attempt:
                return self._fire_once(("respawn_fail", rank, attempt))
        if self._rate_hit("respawn_fail", rank, attempt):
            return self._fire_once(("respawn_fail", rank, attempt))
        return False

    # -- site: trace_corrupt --------------------------------------------------

    def corrupt_recording(self, ordinal: int, entries: int) -> Optional[int]:
        """Entry index to corrupt in recording number ``ordinal``, or None."""
        if entries <= 0:
            return None
        hit = ordinal in self.plan.trace_corruptions \
            or self._rate_hit("trace_corrupt", ordinal)
        if hit and self._fire_once(("trace_corrupt", ordinal)):
            # Deterministic victim entry within the recording.
            word, _ = threefry2x64((self.plan.seed, _FAULT_STREAM),
                                   _site_counter("trace_victim", (ordinal,)))
            return word % entries
        return None
