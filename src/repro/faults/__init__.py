"""``repro.faults`` — deterministic fault injection for resilience testing.

The paper's control-determinism check (§3.2) *detects* divergence among
control replicas; this package supplies the perturbations that exercise it
and every recovery path built on top (:mod:`repro.resilience`).  A
:class:`FaultPlan` names *where* a run is perturbed — explicit one-shot
faults for precise tests, seeded per-site probabilities for chaos runs —
and a :class:`FaultInjector` turns the plan into deterministic decisions:
every decision is a pure function of ``(seed, site, indices)`` via the
counter-based Threefry generator (:mod:`repro.core.rng`), so two runs with
the same plan inject byte-identical fault streams regardless of timing.

Fault sites (docs/resilience.md has the full catalog):

* ``hash_flip``     — perturb one argument of one shard's hashed API call
  (:meth:`repro.core.determinism.ShardHasher.record`), simulating a control
  divergence without changing the analyzed program;
* ``msg_drop`` / ``msg_delay`` / ``msg_dup`` — message-level faults inside
  :class:`repro.core.collectives.Collectives`, masked by bounded retry with
  deterministic exponential backoff;
* ``shard_crash``   — raise :class:`ShardCrash` from one shard's control
  replay, mid-batch;
* ``trace_corrupt`` — corrupt a recorded :class:`repro.core.tracing.
  TraceCache` entry so the next replay diverges into the safe fallback.

Divergence-class faults (flips, crashes, corruptions) fire **once** per
site even under probabilistic plans, so recovery re-execution converges
instead of re-tripping the same fault forever.
"""

from .injector import CollectiveTimeout, FaultInjector, ShardCrash
from .plan import (FAULT_SITES, MESSAGE_EVENTS, FaultPlan, MessageFault,
                   PlannedCrash, PlannedFlip)

__all__ = [
    "FAULT_SITES", "MESSAGE_EVENTS",
    "FaultPlan", "MessageFault", "PlannedCrash", "PlannedFlip",
    "FaultInjector", "ShardCrash", "CollectiveTimeout",
]
