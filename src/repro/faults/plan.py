"""Fault plans: *what* to perturb, declared up front and replayable.

A plan combines two styles of fault selection:

* **planned faults** — explicit ``(site, indices)`` entries that fire
  exactly once when their site is reached (precise unit/integration tests:
  "flip shard 2's call #13", "drop message 1 of allreduce #4 three times");
* **seeded probabilities** — per-site rates evaluated by a counter-based
  PRF keyed on ``(seed, site, indices)`` (chaos tiers: "0.1% of collective
  messages are delayed").  Deterministic given the seed: the decision for a
  site depends only on its coordinates, never on evaluation order.

``FaultPlan.from_env`` builds the chaos-tier plan from ``REPRO_FAULT_*``
environment variables; with none set it returns ``None`` and the runtime
carries no injector at all (the zero-behavior-change default).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["FAULT_SITES", "MESSAGE_EVENTS", "PlannedFlip", "PlannedCrash",
           "MessageFault", "PlannedBeatLoss", "PlannedStall",
           "PlannedRespawnFail", "FaultPlan"]

#: The complete fault-site vocabulary (docs/resilience.md catalogs each).
FAULT_SITES = ("hash_flip", "msg_drop", "msg_delay", "msg_dup",
               "shard_crash", "trace_corrupt",
               "hb_loss", "shard_stall", "respawn_fail")

#: Message-level fault kinds inside collectives, in evaluation order.
MESSAGE_EVENTS = ("drop", "delay", "dup")


@dataclass(frozen=True)
class PlannedFlip:
    """Perturb one argument of ``shard``'s API call number ``call``."""

    shard: int
    call: int


@dataclass(frozen=True)
class PlannedCrash:
    """Crash ``shard`` when it is about to record API call number ``call``."""

    shard: int
    call: int


@dataclass(frozen=True)
class MessageFault:
    """A planned message fault inside one collective operation.

    ``kind`` is the collective ("allreduce", "allgather", ...; empty string
    matches any), ``op`` the operation ordinal (``CollectiveStats.
    operations`` at the time), ``msg`` the message index within its
    schedule.  For drops, ``attempts`` consecutive transmissions are lost —
    ``attempts > max_retries`` forces a timeout.
    """

    kind: str
    op: int
    msg: int
    event: str = "drop"          # one of MESSAGE_EVENTS
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.event not in MESSAGE_EVENTS:
            raise ValueError(f"unknown message fault event {self.event!r}")


@dataclass(frozen=True)
class PlannedBeatLoss:
    """Suppress ``count`` heartbeats of ``shard`` starting at beat ``beat``.

    A lost beat leaves the worker perfectly functional — only its
    liveness signal disappears, so the supervisor's suspicion accrues on
    a rank that would still answer jobs (the false-positive pressure a
    phi detector must tolerate below ``phi_dead``).
    """

    shard: int
    beat: int
    count: int = 1


@dataclass(frozen=True)
class PlannedStall:
    """``shard`` goes silent for ``beats`` beat-intervals from ``beat``.

    The slow-shard model: like :class:`PlannedBeatLoss` but long enough
    that suspicion should cross ``phi_suspect`` (and, if ``beats`` is
    large, ``phi_dead``) — the site chaos tests use to prove *slow* and
    *dead* are distinguished.
    """

    shard: int
    beat: int
    beats: int = 1


@dataclass(frozen=True)
class PlannedRespawnFail:
    """Replacement worker for ``rank`` is dead on arrival at ``attempt``.

    Fired inside :meth:`repro.service.gang.ServiceGang.rejoin` (1-based
    ``attempt``): the respawned worker is never started, so the rejoin
    ack times out — exercising the bounded respawn budget and the
    DEGRADE fallback.
    """

    rank: int
    attempt: int = 1


@dataclass
class FaultPlan:
    """A complete, replayable description of a run's perturbations."""

    seed: int = 0
    # -- planned one-shot faults --------------------------------------------
    flips: List[PlannedFlip] = field(default_factory=list)
    crashes: List[PlannedCrash] = field(default_factory=list)
    message_faults: List[MessageFault] = field(default_factory=list)
    #: Ordinals of trace recordings to corrupt (0 = first recording).
    trace_corruptions: List[int] = field(default_factory=list)
    # -- self-healing sites (heartbeats / respawn, see docs/resilience.md) --
    beat_losses: List[PlannedBeatLoss] = field(default_factory=list)
    stalls: List[PlannedStall] = field(default_factory=list)
    respawn_fails: List[PlannedRespawnFail] = field(default_factory=list)
    # -- seeded probabilistic faults ----------------------------------------
    #: Per-site rates, keyed by FAULT_SITES names.  Message rates apply per
    #: (collective, op, msg, attempt); flip/crash rates per (shard, call);
    #: trace_corrupt per recording.  Divergence-class probabilistic faults
    #: still fire at most once per run (see FaultInjector).
    rates: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for site in self.rates:
            if site not in FAULT_SITES:
                raise ValueError(f"unknown fault site {site!r} "
                                 f"(expected one of {FAULT_SITES})")
        for p in self.rates.values():
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"fault rate {p} outside [0, 1]")

    @property
    def any_faults(self) -> bool:
        return bool(self.flips or self.crashes or self.message_faults
                    or self.trace_corruptions or self.beat_losses
                    or self.stalls or self.respawn_fails
                    or any(p > 0 for p in self.rates.values()))

    @classmethod
    def from_env(cls, env: Optional[Dict[str, str]] = None
                 ) -> Optional["FaultPlan"]:
        """The chaos-tier plan from ``REPRO_FAULT_*``, or None when unset.

        * ``REPRO_FAULT_SEED``  — required to enable anything (integer);
        * ``REPRO_FAULT_RATE``  — shared per-site probability
          (default 0.001);
        * ``REPRO_FAULT_SITES`` — comma-separated site names (default
          ``msg_delay,msg_dup``: the fully maskable sites).
        """
        e = os.environ if env is None else env
        raw_seed = e.get("REPRO_FAULT_SEED", "").strip()
        if not raw_seed:
            return None
        seed = int(raw_seed, 0)
        rate = float(e.get("REPRO_FAULT_RATE", "0.001"))
        sites = [s.strip() for s in
                 e.get("REPRO_FAULT_SITES", "msg_delay,msg_dup").split(",")
                 if s.strip()]
        return cls(seed=seed, rates={site: rate for site in sites})
