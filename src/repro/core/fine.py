"""Fine-stage dependence analysis (paper §4.1, Fig. 9 bottom).

Once an operation's coarse dependences are satisfied it enters the fine
stage, where each shard evaluates the sharding function and performs the
*precise* point-level dependence analysis — but only for the points it owns.
The union of all shards' fine analyses (plus the ordering provided by
cross-shard fences) reproduces exactly the task graph a sequential analysis
of the fully expanded program would compute.

This module computes that precise point graph with per-shard cost
attribution, classifies edges as shard-local vs. cross-shard, and provides
the soundness check used by the test-suite: every cross-shard point
dependence must be covered by a fence the coarse stage inserted (otherwise
an elision was wrong).

Scaling note (DePa, Westrick et al., PPoPP '22): the point epochs are
bucketed by **interned requirement class** — each distinct (privilege,
region, field set) triple, the exact inputs of the pairwise requirement
test, gets a small integer class id — and the conflict decision for a
(bucket class, query class) pair is a single flat ``dict[(int, int)]``
probe.  The previous implementation called ``requirements_conflict`` per
bucket, re-hashing frozen dataclasses and enums through two LRU caches on
every scan; that call chain dominated the whole analysis at 1024+ ops.
Entries also carry two-component *(coarse OM node, fine counter)*
timestamps from the fence spine (see `repro.core.om`), property-tested to
agree with insertion order.  ``scans_per_shard`` still counts one unit per
epoch entry visited, identical to the naive per-entry loop (pinned by the
differential tests against tests/helpers.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from ..obs.profiler import Profiler, get_profiler
from ..oracle import RegionRequirement, requirements_conflict
from ..regions import (LogicalRegion, cached_region_contains,
                       register_cache_clearer)
from .coarse import CoarseResult, clear_coarse_decision_caches
from .om import OMNode
from .operation import Operation, PointTask
from .taskgraph import TaskGraph

__all__ = ["FineResult", "FineAnalysis", "interned_requirements_conflict",
           "clear_analysis_caches", "fine_decision_stats"]


@dataclass
class FineResult:
    """Precise point-task graph plus per-shard accounting."""

    graph: TaskGraph = field(default_factory=TaskGraph)
    local_edges: Set[Tuple[PointTask, PointTask]] = field(default_factory=set)
    cross_edges: Set[Tuple[PointTask, PointTask]] = field(default_factory=set)
    points_per_shard: Dict[int, int] = field(default_factory=dict)
    scans_per_shard: Dict[int, int] = field(default_factory=dict)

    def point_tasks(self) -> List[PointTask]:
        return [t for t in self.graph.tasks]  # type: ignore[misc]


# -- interned requirement classes -------------------------------------------------
#
# ``requirements_conflict(a, b)`` depends only on (privilege, region,
# field ids) of each side.  Each distinct triple is interned to a small
# int class id; decisions live in a flat dict keyed on (cid, cid) pairs
# and are computed once per class pair via the *same* oracle call the
# naive loop makes, so truth values are identical by construction.
# Region uids and field ids are never reused, so decisions never go
# stale; the tables are bounded only to cap memory in long-lived
# processes, via a generation bump that lazily invalidates cached cids.

_CLASS_BITS = 20                  # decision keys pack (bcid << 20) | qcid
_MAX_CLASSES = 1 << _CLASS_BITS   # table resets keep cids inside the pack
_MAX_DECISIONS = 1 << 22

_GEN = 0
_CLASS_IDS: Dict[Tuple, int] = {}
_CLASS_REPS: List[RegionRequirement] = []
_DECISIONS: Dict[int, bool] = {}   # packed int keys: cheapest possible probe
_CONTAINS: Dict[Tuple[int, int], bool] = {}


def _clear_fine_decision_caches() -> None:
    global _GEN
    _CLASS_IDS.clear()
    del _CLASS_REPS[:]
    _DECISIONS.clear()
    _CONTAINS.clear()
    _GEN += 1


def clear_analysis_caches() -> None:
    """Reset every interned class/decision table of both analysis stages
    (tests and benchmarks; never required for correctness — region uids
    and field ids are never reused, so entries cannot go stale)."""
    _clear_fine_decision_caches()
    clear_coarse_decision_caches()


def fine_decision_stats() -> Dict[str, int]:
    return {"classes": len(_CLASS_REPS), "decisions": len(_DECISIONS),
            "generation": _GEN}


# Class ids key on region uids and field ids; a region-cache clear (which
# precedes any uid reuse via fresh_id_epoch) must reset them too.
register_cache_clearer(_clear_fine_decision_caches)


def _intern_class(req: RegionRequirement) -> int:
    key = (req.privilege, req.region.uid, req.field_ids())
    cid = _CLASS_IDS.get(key)
    if cid is None:
        if len(_CLASS_REPS) >= _MAX_CLASSES:
            _clear_fine_decision_caches()
        cid = len(_CLASS_REPS)
        _CLASS_IDS[key] = cid
        _CLASS_REPS.append(req)
    return cid


def _class_of(req: RegionRequirement) -> int:
    """Class id of a requirement, cached on the (frozen) object and
    revalidated against the table generation."""
    tag = getattr(req, "_om_cid", None)
    if tag is not None and tag[0] == _GEN:
        return tag[1]
    cid = _intern_class(req)
    object.__setattr__(req, "_om_cid", (_GEN, cid))
    return cid


def _decide(bcid: int, qcid: int) -> bool:
    """Compute-and-memoize one class-pair decision via the oracle —
    exactly the naive per-entry ``requirements_conflict`` test."""
    hit = bool(requirements_conflict(_CLASS_REPS[bcid], _CLASS_REPS[qcid]))
    if len(_DECISIONS) >= _MAX_DECISIONS:
        _DECISIONS.clear()
    _DECISIONS[(bcid << _CLASS_BITS) | qcid] = hit
    return hit


def interned_requirements_conflict(a: RegionRequirement,
                                   b: RegionRequirement) -> bool:
    """``requirements_conflict`` through the flat decision table: one
    int-pair dict probe once both classes are warm (the fence-coverage
    validation asks this for every requirement pair of every cross edge)."""
    ca = _class_of(a)
    cb = _class_of(b)
    tag = getattr(a, "_om_cid", None)
    if tag is None or tag[0] != _GEN:
        # Interning b reset the tables; re-intern a in the new generation.
        ca = _class_of(a)
    hit = _DECISIONS.get((ca << _CLASS_BITS) | cb)
    if hit is None:
        hit = _decide(ca, cb)
    return hit


def _contains_fast(outer: LogicalRegion, inner: LogicalRegion) -> bool:
    """Flat-dict memo of ``region_contains`` for the retirement path."""
    key = (outer.uid, inner.uid)
    hit = _CONTAINS.get(key)
    if hit is None:
        hit = cached_region_contains(outer, inner)
        if len(_CONTAINS) >= _MAX_DECISIONS:
            _CONTAINS.clear()
        _CONTAINS[key] = hit
    return hit


def _sorted_fids(req: RegionRequirement) -> Tuple[int, ...]:
    """Sorted field ids, computed once per requirement object."""
    fids = getattr(req, "_om_fids", None)
    if fids is None:
        fids = tuple(sorted(req.field_ids()))
        object.__setattr__(req, "_om_fids", fids)
    return fids


class _PointBucket:
    """All point-epoch entries sharing one requirement class."""

    __slots__ = ("cid", "rep", "is_reduce", "entries", "tasks", "stamps")

    def __init__(self, cid: int, rep: RegionRequirement) -> None:
        self.cid = cid
        self.rep = rep
        self.is_reduce = rep.privilege.is_reduce
        self.entries: List[Tuple[PointTask, RegionRequirement]] = []
        self.tasks: List[PointTask] = []     # parallel: emitted on match
        self.stamps: List[Tuple[Optional[OMNode], int]] = []  # parallel


def _null_clock() -> Optional[OMNode]:
    return None


class _PointEpoch:
    """One point-level epoch, bucketed by interned requirement class.

    The class triple (privilege, region, field ids) holds exactly the
    inputs of ``requirements_conflict``, so the pairwise test against a
    new requirement has one answer per bucket; the scan makes that
    decision with one flat-table probe and emits the bucket's tasks.
    """

    __slots__ = ("_buckets", "_members", "_op_counts", "_next", "_size",
                 "_reduce_size", "_gen", "_clock")

    def __init__(self, clock: Callable[[], Optional[OMNode]] = _null_clock
                 ) -> None:
        self._buckets: Dict[int, _PointBucket] = {}
        self._members: Set[Tuple[PointTask, RegionRequirement]] = set()
        self._op_counts: Dict[int, int] = {}   # id(op) -> live entry count
        self._next = 0
        self._size = 0
        self._reduce_size = 0   # entries in reduce buckets (reduce_only scans)
        self._gen = _GEN
        self._clock = clock

    def _refresh(self) -> None:
        """Re-intern every bucket's class after a generation bump."""
        buckets = list(self._buckets.values())
        self._buckets = {}
        for b in buckets:
            b.cid = _intern_class(b.rep)
            self._buckets[b.cid] = b
        self._gen = _GEN

    def add(self, task: PointTask, req: RegionRequirement,
            unique: bool = False) -> None:
        entry = (task, req)
        if unique and entry in self._members:
            return
        self._members.add(entry)
        cid = _class_of(req)
        if self._gen != _GEN:
            self._refresh()
        b = self._buckets.get(cid)
        if b is None:
            b = _PointBucket(cid, req)
            self._buckets[cid] = b
        b.entries.append(entry)
        b.tasks.append(task)
        b.stamps.append((self._clock(), self._next))
        self._next += 1
        self._size += 1
        if b.is_reduce:
            self._reduce_size += 1
        opid = id(task.op)
        self._op_counts[opid] = self._op_counts.get(opid, 0) + 1

    def match(self, task: PointTask, req: RegionRequirement,
              reduce_only: bool = False
              ) -> Tuple[int, List[PointTask]]:
        """(entries scanned, conflicting prior tasks) — the same counts and
        task set the naive per-entry loop reports for this epoch."""
        if reduce_only and not self._reduce_size:
            return 0, []          # no reduce entries: nothing scanned either way
        if id(task.op) in self._op_counts:
            return self._match_with_self(task, req, reduce_only)
        qcid = _class_of(req)
        if self._gen != _GEN:
            self._refresh()
        matched: List[PointTask] = []
        decisions = _DECISIONS
        if reduce_only:
            scanned = 0
            for b in self._buckets.values():
                if not b.is_reduce:
                    continue
                scanned += len(b.entries)
                hit = decisions.get((b.cid << _CLASS_BITS) | qcid)
                if hit is None:
                    hit = _decide(b.cid, qcid)
                if hit:
                    matched.extend(b.tasks)
        else:
            # Every entry is visited, so the scan count is the epoch size.
            scanned = self._size
            for b in self._buckets.values():
                hit = decisions.get((b.cid << _CLASS_BITS) | qcid)
                if hit is None:
                    hit = _decide(b.cid, qcid)
                if hit:
                    matched.extend(b.tasks)
        return scanned, matched

    def _match_with_self(self, task, req, reduce_only):
        """Slow path preserving the naive same-op skip semantics (points of
        the op under analysis are normally never in the epochs yet; this
        guards the invariant rather than assuming it)."""
        qcid = _class_of(req)
        if self._gen != _GEN:
            self._refresh()
        scanned = 0
        matched: List[PointTask] = []
        for b in self._buckets.values():
            if reduce_only and not b.is_reduce:
                continue
            live = [e[0] for e in b.entries if e[0].op is not task.op]
            scanned += len(live)
            hit = _DECISIONS.get((b.cid << _CLASS_BITS) | qcid)
            if hit is None:
                hit = _decide(b.cid, qcid)
            if hit:
                matched.extend(live)
        return scanned, matched

    def _retire_bucket(self, cid: int,
                       keep_ids: Optional[Set[int]] = None) -> None:
        """Drop a bucket's entries, keeping those whose task id is in
        ``keep_ids`` (None keeps nothing)."""
        b = self._buckets[cid]
        if keep_ids:
            keep = [i for i, e in enumerate(b.entries)
                    if id(e[0]) in keep_ids]
        else:
            keep = []
        keep_set = set(keep)
        dropped = 0
        for i, entry in enumerate(b.entries):
            if i in keep_set:
                continue
            dropped += 1
            self._members.discard(entry)
            opid = id(entry[0].op)
            n = self._op_counts.get(opid, 0) - 1
            if n <= 0:
                self._op_counts.pop(opid, None)
            else:
                self._op_counts[opid] = n
        self._size -= dropped
        if b.is_reduce:
            self._reduce_size -= dropped
        if keep:
            b.entries = [b.entries[i] for i in keep]
            b.tasks = [b.tasks[i] for i in keep]
            b.stamps = [b.stamps[i] for i in keep]
        else:
            del self._buckets[cid]

    def _doomed(self, bound: LogicalRegion) -> List[int]:
        """Bucket cids whose region is covered by ``bound`` (memo probes
        inlined: this runs once per write requirement per field)."""
        contains = _CONTAINS
        buid = bound.uid
        doomed = []
        for cid, b in self._buckets.items():
            region = b.rep.region
            hit = contains.get((buid, region.uid))
            if hit is None:
                hit = _contains_fast(bound, region)
            if hit:
                doomed.append(cid)
        return doomed

    def retire_contained(self, bound: LogicalRegion) -> None:
        """Drop every entry whose region is covered by ``bound``."""
        for cid in self._doomed(bound):
            self._retire_bucket(cid)

    def retire_contained_except(self, bound: LogicalRegion,
                                keep_ids: Set[int]) -> None:
        """Group retirement: drop covered entries unless the task is one of
        the retiring launch's own points (``keep_ids`` holds their ids)."""
        for cid in self._doomed(bound):
            self._retire_bucket(cid, keep_ids)

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Tuple[PointTask, RegionRequirement]]:
        for b in self._buckets.values():
            yield from b.entries

    def check_stamps(self) -> None:
        """Stamp order must equal insertion order: within and across
        buckets, live coarse labels are non-decreasing along fine
        counters (test hook for the two-component timestamp claim)."""
        stamped = [s for b in self._buckets.values() for s in b.stamps]
        stamped.sort(key=lambda s: s[1])
        labels = [(-1 if n is None else n.label) for n, _i in stamped]
        assert labels == sorted(labels), \
            "coarse stamp components regress along insertion order"


class _FieldState:
    """Point-level epoch indexes per (region tree, field)."""

    __slots__ = ("write_epoch", "read_epoch")

    def __init__(self, clock: Callable[[], Optional[OMNode]] = _null_clock
                 ) -> None:
        self.write_epoch = _PointEpoch(clock)
        self.read_epoch = _PointEpoch(clock)


def _contains(outer: LogicalRegion, inner: LogicalRegion) -> bool:
    return cached_region_contains(outer, inner)


class FineAnalysis:
    """Incremental precise analysis over expanded point tasks.

    ``analyze(op)`` expands the operation into point tasks, computes their
    dependences against all prior points (epoch-pruned), and attributes the
    per-point analysis work to the owning shard.  Edge classification
    (local/cross) feeds both the simulator's cost model and the fence
    soundness check.

    ``clock`` supplies the coarse component of new epoch-entry timestamps
    (the pipeline wires the coarse stage's fence-spine era node; standalone
    use stamps a null coarse component).
    """

    def __init__(self, num_shards: int,
                 profiler: Optional[Profiler] = None,
                 clock: Optional[Callable[[], Optional[OMNode]]] = None):
        self.num_shards = num_shards
        self.profiler = profiler if profiler is not None else get_profiler()
        self.result = FineResult()
        self._clock = clock if clock is not None else _null_clock
        self._state: Dict[Tuple[int, int], _FieldState] = {}
        # Precise in-edges added while analyzing the most recent op, so the
        # pipeline can hand them to the trace recorder without rescanning.
        self.last_op_edges: List[Tuple[PointTask, PointTask]] = []

    def analyze(self, op: Operation) -> List[PointTask]:
        self.last_op_edges = []
        tasks: List[PointTask] = []
        for point in op.points():
            shard = op.shard_of(point, self.num_shards)
            task = PointTask(op, point, shard)
            tasks.append(task)
            self.result.points_per_shard[shard] = \
                self.result.points_per_shard.get(shard, 0) + 1
        # Points within one group launch are pairwise independent by
        # construction (the group-launch well-formedness condition), so they
        # are analyzed against prior state only, mirroring how each shard's
        # fine stage treats a whole group as one arrival.
        for task in tasks:
            self._analyze_point(task)
        for task in tasks:
            self._update_point(task)
        self._retire_dominated(op, tasks)
        prof = self.profiler
        if prof.enabled:
            m = prof.metrics
            m.count("fine.points", len(tasks))
            m.count("fine.edges", len(self.last_op_edges))
            m.count("fine.cross_edges",
                    sum(1 for a, b in self.last_op_edges
                        if a.shard != b.shard))
        return tasks

    def register_replayed(self, op: Operation,
                          tasks: List[PointTask]) -> None:
        """Fold trace-replayed point tasks into the epoch state (no scan).

        Keeps post-trace analysis correct: later operations must find the
        replayed writers/readers in the epochs, or they would silently
        order themselves against pre-trace state.
        """
        for task in tasks:
            self._update_point(task)
        self._retire_dominated(op, tasks)

    def _retire_dominated(self, op: Operation, tasks: List[PointTask]) -> None:
        """Group-level epoch retirement: keep the fine state bounded.

        A group write over a *complete, disjoint* partition collectively
        covers its parent region, so every older user inside that parent is
        transitively ordered through some piece of this launch (the piece
        containing any shared point) — older entries can be dropped without
        losing any future ordering.  Without this, ghost readers accumulate
        forever and the fine analysis turns quadratic in program length.
        """
        from ..regions import Partition

        if not op.is_group:
            return
        own = {id(t) for t in tasks}
        for cr in op.coarse_reqs:
            if not cr.privilege.writes:
                continue
            upper = cr.upper
            if not (isinstance(upper, Partition) and upper.disjoint
                    and upper.complete):
                continue
            parent = upper.parent_region
            for f in cr.fields:
                state = self._state.get((parent.tree_id, f.fid))
                if state is None:
                    continue
                state.read_epoch.retire_contained_except(parent, own)
                state.write_epoch.retire_contained_except(parent, own)

    def _analyze_point(self, task: PointTask) -> None:
        result = self.result
        result.graph.tasks.add(task)
        deps: Set[PointTask] = set()
        states = self._state
        for req in task.requirements:
            tree_id = req.region.tree_id
            for fid in _sorted_fids(req):
                state = states.get((tree_id, fid))
                if state is None:
                    continue
                self._scan(task, req, state, deps)
        if not deps:
            return
        graph_deps = result.graph.deps
        local_add = result.local_edges.add
        cross_add = result.cross_edges.add
        edge_append = self.last_op_edges.append
        tshard = task.shard
        for prev in deps:
            edge = (prev, task)
            graph_deps.add(edge)
            edge_append(edge)
            if prev.shard == tshard:
                local_add(edge)
            else:
                cross_add(edge)

    def _scan(self, task: PointTask, req: RegionRequirement,
              state: _FieldState, deps: Set[PointTask]) -> None:
        priv = req.privilege
        if priv.writes or priv.is_reduce:
            probes = ((state.read_epoch, False), (state.write_epoch, False))
        else:
            probes = ((state.write_epoch, False), (state.read_epoch, True))
        shard = task.shard
        scans = self.result.scans_per_shard
        for epoch, reduce_only in probes:
            if not epoch._size:
                continue
            scanned, matched = epoch.match(task, req, reduce_only=reduce_only)
            if scanned:
                scans[shard] = scans.get(shard, 0) + scanned
            if matched:
                deps.update(matched)

    def _update_point(self, task: PointTask) -> None:
        clock = self._clock
        for req in task.requirements:
            tree_id = req.region.tree_id
            for fid in _sorted_fids(req):
                key = (tree_id, fid)
                state = self._state.get(key)
                if state is None:
                    state = _FieldState(clock)
                    self._state[key] = state
                if req.privilege.writes:
                    if state.read_epoch._size:
                        state.read_epoch.retire_contained(req.region)
                    if state.write_epoch._size:
                        state.write_epoch.retire_contained(req.region)
                    state.write_epoch.add(task, req)
                else:
                    state.read_epoch.add(task, req, unique=True)

    # -- soundness of fence elision ------------------------------------------------

    def uncovered_cross_edges(
        self, coarse: CoarseResult
    ) -> List[Tuple[PointTask, PointTask]]:
        """Cross-shard precise dependences not ordered by any fence.

        Must be empty for a sound analysis: this is the property the coarse
        stage's conservative fence insertion guarantees and its symbolic
        elision must preserve.  Conflict tests go through the interned
        decision table and coverage through the fence channels, so each
        (edge, requirement pair) probe is O(1).
        """
        bad = []
        for prev, task in self.result.cross_edges:
            covered = False
            for preq in prev.requirements:
                for nreq in task.requirements:
                    if interned_requirements_conflict(preq, nreq):
                        if coarse.covers_cross_edge(
                                prev.op.seq, task.op.seq, nreq.region,
                                nreq.fields | preq.fields):
                            covered = True
            if not covered:
                bad.append((prev, task))
        return bad
