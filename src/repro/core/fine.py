"""Fine-stage dependence analysis (paper §4.1, Fig. 9 bottom).

Once an operation's coarse dependences are satisfied it enters the fine
stage, where each shard evaluates the sharding function and performs the
*precise* point-level dependence analysis — but only for the points it owns.
The union of all shards' fine analyses (plus the ordering provided by
cross-shard fences) reproduces exactly the task graph a sequential analysis
of the fully expanded program would compute.

This module computes that precise point graph with per-shard cost
attribution, classifies edges as shard-local vs. cross-shard, and provides
the soundness check used by the test-suite: every cross-shard point
dependence must be covered by a fence the coarse stage inserted (otherwise
an elision was wrong).

Scaling note: like the coarse stage, the point epochs are bucketed — here by
(privilege, region uid, field-id set), the exact inputs of the pairwise
requirement test — so one memoized ``requirements_conflict`` decision
settles a whole bucket.  ``scans_per_shard`` still counts one unit per
epoch entry visited, identical to the naive per-entry loop (pinned by the
differential tests against tests/helpers.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..obs.profiler import Profiler, get_profiler
from ..oracle import RegionRequirement, requirements_conflict
from ..regions import LogicalRegion, cached_region_contains
from .coarse import CoarseResult
from .operation import Operation, PointTask
from .taskgraph import TaskGraph

__all__ = ["FineResult", "FineAnalysis"]


@dataclass
class FineResult:
    """Precise point-task graph plus per-shard accounting."""

    graph: TaskGraph = field(default_factory=TaskGraph)
    local_edges: Set[Tuple[PointTask, PointTask]] = field(default_factory=set)
    cross_edges: Set[Tuple[PointTask, PointTask]] = field(default_factory=set)
    points_per_shard: Dict[int, int] = field(default_factory=dict)
    scans_per_shard: Dict[int, int] = field(default_factory=dict)

    def point_tasks(self) -> List[PointTask]:
        return [t for t in self.graph.tasks]  # type: ignore[misc]


class _PointEpoch:
    """One point-level epoch, bucketed by (privilege, region uid, fids).

    Those three are exactly the inputs of ``requirements_conflict``, so the
    pairwise test against a new requirement has one answer per bucket; the
    scan makes that (memoized) decision once and emits the bucket's entries.
    """

    __slots__ = ("_buckets", "_members", "_op_counts", "_size")

    def __init__(self) -> None:
        # (privilege, region uid, fids) -> (representative req, entries)
        self._buckets: Dict[Tuple, Tuple[RegionRequirement,
                                         List[Tuple[PointTask,
                                                    RegionRequirement]]]] = {}
        self._members: Set[Tuple[PointTask, RegionRequirement]] = set()
        self._op_counts: Dict[int, int] = {}   # id(op) -> live entry count
        self._size = 0

    def add(self, task: PointTask, req: RegionRequirement,
            unique: bool = False) -> None:
        entry = (task, req)
        if unique and entry in self._members:
            return
        self._members.add(entry)
        bkey = (req.privilege, req.region.uid, req.field_ids())
        slot = self._buckets.get(bkey)
        if slot is None:
            slot = (req, [])
            self._buckets[bkey] = slot
        slot[1].append(entry)
        self._size += 1
        opid = id(task.op)
        self._op_counts[opid] = self._op_counts.get(opid, 0) + 1

    def match(self, task: PointTask, req: RegionRequirement,
              reduce_only: bool = False
              ) -> Tuple[int, List[PointTask]]:
        """(entries scanned, conflicting prior tasks) — the same counts and
        task set the naive per-entry loop reports for this epoch."""
        if id(task.op) in self._op_counts:
            return self._match_with_self(task, req, reduce_only)
        scanned = 0
        matched: List[PointTask] = []
        for (bpriv, _uid, _fids), (brep, entries) in self._buckets.items():
            if reduce_only and not bpriv.is_reduce:
                continue
            scanned += len(entries)
            if requirements_conflict(brep, req):
                matched.extend(e[0] for e in entries)
        return scanned, matched

    def _match_with_self(self, task, req, reduce_only):
        """Slow path preserving the naive same-op skip semantics (points of
        the op under analysis are normally never in the epochs yet; this
        guards the invariant rather than assuming it)."""
        scanned = 0
        matched: List[PointTask] = []
        for (bpriv, _uid, _fids), (brep, entries) in self._buckets.items():
            if reduce_only and not bpriv.is_reduce:
                continue
            live = [e for e in entries if e[0].op is not task.op]
            scanned += len(live)
            if requirements_conflict(brep, req):
                matched.extend(e[0] for e in live)
        return scanned, matched

    def _drop_entries(self, bkey, survivors) -> None:
        brep, entries = self._buckets[bkey]
        for entry in entries:
            if entry not in survivors:
                self._members.discard(entry)
                opid = id(entry[0].op)
                n = self._op_counts.get(opid, 0) - 1
                if n <= 0:
                    self._op_counts.pop(opid, None)
                else:
                    self._op_counts[opid] = n
        self._size -= len(entries) - len(survivors)
        if survivors:
            self._buckets[bkey] = (brep, survivors)
        else:
            del self._buckets[bkey]

    def retire_contained(self, bound: LogicalRegion) -> None:
        """Drop every entry whose region is covered by ``bound``."""
        doomed = [bkey for bkey, (brep, _e) in self._buckets.items()
                  if cached_region_contains(bound, brep.region)]
        for bkey in doomed:
            self._drop_entries(bkey, [])

    def retire_contained_except(self, bound: LogicalRegion,
                                keep_ids: Set[int]) -> None:
        """Group retirement: drop covered entries unless the task is one of
        the retiring launch's own points (``keep_ids`` holds their ids)."""
        doomed = [bkey for bkey, (brep, _e) in self._buckets.items()
                  if cached_region_contains(bound, brep.region)]
        for bkey in doomed:
            survivors = [e for e in self._buckets[bkey][1]
                         if id(e[0]) in keep_ids]
            self._drop_entries(bkey, survivors)

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Tuple[PointTask, RegionRequirement]]:
        for _brep, entries in self._buckets.values():
            yield from entries


class _FieldState:
    """Point-level epoch indexes per (region tree, field)."""

    __slots__ = ("write_epoch", "read_epoch")

    def __init__(self) -> None:
        self.write_epoch = _PointEpoch()
        self.read_epoch = _PointEpoch()


def _contains(outer: LogicalRegion, inner: LogicalRegion) -> bool:
    return cached_region_contains(outer, inner)


class FineAnalysis:
    """Incremental precise analysis over expanded point tasks.

    ``analyze(op)`` expands the operation into point tasks, computes their
    dependences against all prior points (epoch-pruned), and attributes the
    per-point analysis work to the owning shard.  Edge classification
    (local/cross) feeds both the simulator's cost model and the fence
    soundness check.
    """

    def __init__(self, num_shards: int,
                 profiler: Optional[Profiler] = None):
        self.num_shards = num_shards
        self.profiler = profiler if profiler is not None else get_profiler()
        self.result = FineResult()
        self._state: Dict[Tuple[int, int], _FieldState] = {}
        # Precise in-edges added while analyzing the most recent op, so the
        # pipeline can hand them to the trace recorder without rescanning.
        self.last_op_edges: List[Tuple[PointTask, PointTask]] = []

    def analyze(self, op: Operation) -> List[PointTask]:
        self.last_op_edges = []
        tasks: List[PointTask] = []
        for point in op.points():
            shard = op.shard_of(point, self.num_shards)
            task = PointTask(op, point, shard)
            tasks.append(task)
            self.result.points_per_shard[shard] = \
                self.result.points_per_shard.get(shard, 0) + 1
        # Points within one group launch are pairwise independent by
        # construction (the group-launch well-formedness condition), so they
        # are analyzed against prior state only, mirroring how each shard's
        # fine stage treats a whole group as one arrival.
        for task in tasks:
            self._analyze_point(task)
        for task in tasks:
            self._update_point(task)
        self._retire_dominated(op, tasks)
        prof = self.profiler
        if prof.enabled:
            m = prof.metrics
            m.count("fine.points", len(tasks))
            m.count("fine.edges", len(self.last_op_edges))
            m.count("fine.cross_edges",
                    sum(1 for a, b in self.last_op_edges
                        if a.shard != b.shard))
        return tasks

    def register_replayed(self, op: Operation,
                          tasks: List[PointTask]) -> None:
        """Fold trace-replayed point tasks into the epoch state (no scan).

        Keeps post-trace analysis correct: later operations must find the
        replayed writers/readers in the epochs, or they would silently
        order themselves against pre-trace state.
        """
        for task in tasks:
            self._update_point(task)
        self._retire_dominated(op, tasks)

    def _retire_dominated(self, op: Operation, tasks: List[PointTask]) -> None:
        """Group-level epoch retirement: keep the fine state bounded.

        A group write over a *complete, disjoint* partition collectively
        covers its parent region, so every older user inside that parent is
        transitively ordered through some piece of this launch (the piece
        containing any shared point) — older entries can be dropped without
        losing any future ordering.  Without this, ghost readers accumulate
        forever and the fine analysis turns quadratic in program length.
        """
        from ..regions import Partition

        if not op.is_group:
            return
        own = {id(t) for t in tasks}
        for cr in op.coarse_reqs:
            if not cr.privilege.writes:
                continue
            upper = cr.upper
            if not (isinstance(upper, Partition) and upper.disjoint
                    and upper.complete):
                continue
            parent = upper.parent_region
            for f in cr.fields:
                state = self._state.get((parent.tree_id, f.fid))
                if state is None:
                    continue
                state.read_epoch.retire_contained_except(parent, own)
                state.write_epoch.retire_contained_except(parent, own)

    def _analyze_point(self, task: PointTask) -> None:
        self.result.graph.add_task(task)
        deps: Set[PointTask] = set()
        for req in task.requirements:
            for fid in sorted(f.fid for f in req.fields):
                key = (req.region.tree_id, fid)
                state = self._state.get(key)
                if state is None:
                    continue
                self._scan(task, req, state, deps)
        for prev in deps:
            edge = (prev, task)
            self.result.graph.add_dep(prev, task)
            self.last_op_edges.append(edge)
            if prev.shard == task.shard:
                self.result.local_edges.add(edge)
            else:
                self.result.cross_edges.add(edge)

    def _scan(self, task: PointTask, req: RegionRequirement,
              state: _FieldState, deps: Set[PointTask]) -> None:
        shard = task.shard

        def check(epoch: _PointEpoch, reduce_only: bool = False) -> None:
            scanned, matched = epoch.match(task, req, reduce_only=reduce_only)
            if scanned:
                self.result.scans_per_shard[shard] = \
                    self.result.scans_per_shard.get(shard, 0) + scanned
            deps.update(matched)

        if req.privilege.writes:
            check(state.read_epoch)
            check(state.write_epoch)
        elif req.privilege.is_reduce:
            check(state.read_epoch)
            check(state.write_epoch)
        else:
            check(state.write_epoch)
            check(state.read_epoch, reduce_only=True)

    def _update_point(self, task: PointTask) -> None:
        for req in task.requirements:
            for fid in sorted(f.fid for f in req.fields):
                key = (req.region.tree_id, fid)
                state = self._state.setdefault(key, _FieldState())
                if req.privilege.writes:
                    state.read_epoch.retire_contained(req.region)
                    state.write_epoch.retire_contained(req.region)
                    state.write_epoch.add(task, req)
                else:
                    state.read_epoch.add(task, req, unique=True)

    # -- soundness of fence elision ------------------------------------------------

    def uncovered_cross_edges(
        self, coarse: CoarseResult
    ) -> List[Tuple[PointTask, PointTask]]:
        """Cross-shard precise dependences not ordered by any fence.

        Must be empty for a sound analysis: this is the property the coarse
        stage's conservative fence insertion guarantees and its symbolic
        elision must preserve.
        """
        bad = []
        for prev, task in self.result.cross_edges:
            covered = False
            for preq in prev.requirements:
                for nreq in task.requirements:
                    if requirements_conflict(preq, nreq):
                        if coarse.covers_cross_edge(
                                prev.op.seq, task.op.seq, nreq.region,
                                nreq.fields | preq.fields):
                            covered = True
            if not covered:
                bad.append((prev, task))
        return bad
