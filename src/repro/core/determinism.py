"""Control-determinism checking (paper §3).

DCR requires all shards to make the *same sequence of runtime API calls*
("control determinism").  The check: for every API call from a shard of a
replicated task, compute a 128-bit hash capturing the call and its actual
arguments, then verify via an (asynchronous, batched) all-reduce that all
shards produced identical hashes.  On mismatch the runtime aborts with an
error naming the first divergent operation — the paper reports this is
sufficient for debugging.  With ``localize=True`` the monitor goes further:
it allgathers the per-call digests of the failed window and binary-searches
the first divergent call, attaching a :class:`DivergenceDiagnosis` naming
the culprit shard(s) — the foundation the recovery policies in
:mod:`repro.resilience` build on.

Hashing detail: raw Python object identities differ between shards even for
logically identical resources, so each shard's checker *interns* runtime
resources (regions, partitions, fields, futures...) into shard-local ids
assigned in API-call order.  Control determinism guarantees identical
numbering across shards, making the hashes comparable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..faults.injector import FaultInjector, ShardCrash
from ..obs.events import (CAT_DETERMINISM, CONTROL_SHARD, EV_DET_CHECK,
                          EV_DET_LOCALIZE)
from ..obs.profiler import Profiler, get_profiler
from .collectives import Collectives

__all__ = ["ControlDeterminismViolation", "DivergenceDiagnosis",
           "ShardHasher", "DeterminismMonitor", "stream_digest",
           "locate_divergence"]


def stream_digest(calls: Sequence[int]) -> int:
    """128-bit digest of a sequence of per-call digests.

    The canonical "control-determinism hash" of a call stream: used for
    window checks here, and by the multiprocess backend
    (:mod:`repro.dist`) to compare whole per-shard streams across process
    boundaries — so both backends fold digests identically.
    """
    acc = hashlib.blake2b(digest_size=16)
    for d in calls:
        acc.update(d.to_bytes(16, "little"))
    return int.from_bytes(acc.digest(), "little")


def locate_divergence(shard_ids: Sequence[int],
                      per_call: Sequence[Sequence[int]],
                      descriptions: Sequence[Sequence[str]],
                      call_counts: Sequence[int],
                      start: int, count: int) -> DivergenceDiagnosis:
    """Binary-search the first divergent call of a mismatched window.

    Pure function over already-gathered per-shard data, shared by the
    in-process monitor (which gathers via :class:`Collectives`) and the
    multiprocess backend (which gathers over the transport).  ``per_call``
    holds each shard's call digests for ``[start, start + count)`` and
    ``descriptions`` the matching call descriptions.

    Individual call digests can re-coincide after a divergence, so the
    search runs over *chained prefix* digests (prefix[i] folds in calls
    [0, i]), which are monotone: once the first differing call is
    included, every longer prefix disagrees too.
    """
    prefixes: List[List[int]] = []
    for calls in per_call:
        acc = hashlib.blake2b(digest_size=16)
        row: List[int] = []
        for d in calls:
            acc.update(d.to_bytes(16, "little"))
            row.append(int.from_bytes(acc.digest(), "little"))
        prefixes.append(row)
    lo, hi = 0, count - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if len({row[mid] for row in prefixes}) > 1:
            hi = mid
        else:
            lo = mid + 1
    off = lo
    seq = start + off
    digests = [calls[off] for calls in per_call]
    # Majority digest wins; ties break toward the lowest shard id's
    # digest, so a 1-vs-1 split blames the higher shard.
    tally: Dict[int, int] = {}
    for d in digests:
        tally[d] = tally.get(d, 0) + 1
    best = max(tally.values())
    majority = next(d for d in digests if tally[d] == best)
    divergent = tuple(s for s, d in zip(shard_ids, digests)
                      if d != majority)
    return DivergenceDiagnosis(
        seq=seq,
        shard_ids=tuple(shard_ids),
        shard_digests=tuple(digests),
        descriptions=tuple(descr[off] for descr in descriptions),
        divergent_shards=divergent,
        majority_digest=majority,
        call_counts=tuple(call_counts),
        window=(start, count),
    )


@dataclass(frozen=True)
class DivergenceDiagnosis:
    """Localized first point of control divergence (LOCALIZE output).

    Produced by :meth:`DeterminismMonitor.localize_window`: after a window
    hash mismatch, the per-call digests of the window are allgathered and
    the first divergent call index found by binary search over per-shard
    digest prefixes.  ``divergent_shards`` are the shards whose digest at
    ``seq`` differs from the majority digest (ties break toward the digest
    held by the lowest shard id).
    """

    seq: int                                  # global API-call index
    shard_ids: Tuple[int, ...]                # shards compared, ascending
    shard_digests: Tuple[int, ...]            # 128-bit digest at seq, per shard
    descriptions: Tuple[str, ...]             # call description at seq, per shard
    divergent_shards: Tuple[int, ...]         # minority shards at seq
    majority_digest: int
    call_counts: Tuple[int, ...]              # total calls recorded, per shard
    window: Tuple[int, int]                   # (start, count) of failed window

    def summary(self) -> str:
        pairs = ", ".join(
            f"shard {s}: {d!r}" for s, d in zip(self.shard_ids,
                                                self.descriptions))
        return (f"first divergence at API call #{self.seq} on shard(s) "
                f"{list(self.divergent_shards)} — {pairs}")


class ControlDeterminismViolation(RuntimeError):
    """Raised when shards diverge in their sequence of runtime API calls.

    Beyond the formatted message, carries structured fields so recovery
    policies (and tests) never have to parse strings:

    * ``seq`` — first divergent (or first missing) API-call index;
    * ``descriptions`` — per-shard call description at ``seq``;
    * ``shard_digests`` — per-shard 128-bit digest at ``seq`` (None for the
      unequal-count case, where the short shards made no call at ``seq``);
    * ``shard_ids`` — which shard each entry of the parallel lists refers
      to (defaults to 0..n-1);
    * ``call_counts`` — per-shard total recorded calls (unequal-count case);
    * ``diagnosis`` — full :class:`DivergenceDiagnosis` when LOCALIZE ran.
    """

    def __init__(self, seq: int, descriptions: Sequence[str],
                 shard_digests: Optional[Sequence[int]] = None,
                 shard_ids: Optional[Sequence[int]] = None,
                 call_counts: Optional[Sequence[int]] = None,
                 diagnosis: Optional[DivergenceDiagnosis] = None):
        self.seq = seq
        self.descriptions = list(descriptions)
        self.shard_digests = list(shard_digests) if shard_digests else None
        self.shard_ids = (list(shard_ids) if shard_ids is not None
                          else list(range(len(self.descriptions))))
        self.call_counts = list(call_counts) if call_counts else None
        self.diagnosis = diagnosis
        uniq = sorted(set(self.descriptions))
        msg = (f"control determinism violated at API call #{seq}: shards "
               f"disagree — {uniq}")
        if self.call_counts:
            per = ", ".join(f"shard {s}: {c} calls" for s, c in
                            zip(self.shard_ids, self.call_counts))
            short = [s for s, c in zip(self.shard_ids, self.call_counts)
                     if c == min(self.call_counts)]
            msg += f" (unequal call counts — {per}; short: {short})"
        if diagnosis is not None:
            msg += f"; {diagnosis.summary()}"
        super().__init__(msg)

    @property
    def divergent_shards(self) -> Optional[List[int]]:
        """Culprit shards when known (diagnosis or unequal counts)."""
        if self.diagnosis is not None:
            return list(self.diagnosis.divergent_shards)
        if self.call_counts:
            lo = min(self.call_counts)
            return [s for s, c in zip(self.shard_ids, self.call_counts)
                    if c == lo]
        if self.shard_digests and self.shard_ids:
            # Majority digest wins; ties break toward the lowest shard.
            tally: Dict[int, int] = {}
            for d in self.shard_digests:
                tally[d] = tally.get(d, 0) + 1
            best = max(tally.values())
            majority = next(d for d in self.shard_digests
                            if tally[d] == best)
            return [s for s, d in zip(self.shard_ids, self.shard_digests)
                    if d != majority]
        return None


class ShardHasher:
    """Per-shard API-call hasher with resource interning.

    When a :class:`~repro.faults.FaultInjector` is attached, two fault
    sites live here: ``hash_flip`` perturbs the digest (and tags the
    description) of one call — simulating a divergent control decision
    without changing the analyzed program — and ``shard_crash`` raises
    :class:`~repro.faults.ShardCrash` in place of recording a call.  Both
    are behind an ``enabled`` guard so the default path is unchanged.
    """

    def __init__(self, shard: int,
                 injector: Optional[FaultInjector] = None):
        self.shard = shard
        self.injector = injector
        self._intern: Dict[int, int] = {}
        self._next_local = 0
        self.calls: List[int] = []          # 128-bit hashes, in call order
        self.descriptions: List[str] = []   # human-readable, for error messages

    def intern(self, obj: Any) -> int:
        """Shard-local id for a runtime resource, by first-use order."""
        key = id(obj)
        local = self._intern.get(key)
        if local is None:
            local = self._next_local
            self._next_local += 1
            self._intern[key] = local
        return local

    def _canon(self, value: Any) -> bytes:
        """Canonical byte encoding of an argument value."""
        if value is None:
            return b"N"
        if isinstance(value, bool):
            return b"B1" if value else b"B0"
        if isinstance(value, int):
            return b"I" + str(value).encode()
        if isinstance(value, float):
            return b"F" + value.hex().encode()
        if isinstance(value, str):
            return b"S" + value.encode()
        if isinstance(value, bytes):
            return b"Y" + value
        if isinstance(value, (tuple, list)):
            inner = b",".join(self._canon(v) for v in value)
            return b"T(" + inner + b")"
        if isinstance(value, dict):
            items = sorted((str(k), v) for k, v in value.items())
            inner = b",".join(
                self._canon(k) + b"=" + self._canon(v) for k, v in items)
            return b"D(" + inner + b")"
        if isinstance(value, frozenset) or isinstance(value, set):
            inner = b",".join(sorted(self._canon(v) for v in value))
            return b"Z(" + inner + b")"
        # Runtime resource: intern by first-use order.
        return b"R" + str(self.intern(value)).encode()

    def record(self, api_call: str, *args: Any, **kwargs: Any) -> int:
        """Hash one API call; returns the 128-bit digest as an int."""
        inj = self.injector
        faulted = False
        if inj is not None and inj.enabled:
            call = len(self.calls)
            if inj.crash_call(self.shard, call):
                raise ShardCrash(self.shard, call)
            faulted = inj.flip_call(self.shard, call)
        h = hashlib.blake2b(digest_size=16)
        h.update(api_call.encode())
        for a in args:
            h.update(b"|")
            h.update(self._canon(a))
        for k in sorted(kwargs):
            h.update(b"|" + k.encode() + b"=")
            h.update(self._canon(kwargs[k]))
        if faulted:
            # Perturb only the digest: the analyzed call itself is intact,
            # so recovery re-analysis reproduces the fault-free task graph
            # (Theorem 1) while the determinism check sees a divergence.
            h.update(b"|<fault-injected>")
        digest = int.from_bytes(h.digest(), "little")
        self.calls.append(digest)
        self.descriptions.append(api_call + " [faulted]" if faulted
                                 else api_call)
        return digest


@dataclass
class _CheckWindow:
    """One pending batch of hashes awaiting the all-reduce."""

    start: int
    length: int


class DeterminismMonitor:
    """Coordinates the asynchronous hash all-reduce across shards.

    The real system hides the all-reduce latency by pipelining it with
    execution; here ``maybe_check`` is called after every recorded call and
    performs the collective once every ``batch`` calls are available on all
    shards (plus a final ``flush`` at task completion).  ``enabled=False``
    models the "No Safe" configurations of Fig. 21.

    Recovery hooks (all optional, default off):

    * ``injector`` — threaded into every :class:`ShardHasher`;
    * ``localize=True`` — on a window mismatch, allgather per-call digests
      and binary-search the first divergent call, raising with a full
      :class:`DivergenceDiagnosis` instead of a bare first-difference scan;
    * ``on_batch`` — callback ``(verified_count) -> None`` after each
      successful check, used by the runtime for batch-boundary snapshots;
    * ``quarantine(shard)`` / ``reset_shard(shard)`` — shrink the compared
      shard set after DEGRADE, or re-admit a shard with a fresh hasher for
      RESTART (it rejoins checking at the next batch boundary, once its
      re-execution catches back up to the verified frontier).
    """

    def __init__(self, num_shards: int, batch: int = 64, enabled: bool = True,
                 collectives: Optional[Collectives] = None,
                 profiler: Optional[Profiler] = None,
                 injector: Optional[FaultInjector] = None,
                 localize: bool = False,
                 on_batch: Optional[Callable[[int], None]] = None):
        self.injector = injector
        self.hashers = [ShardHasher(i, injector) for i in range(num_shards)]
        self.batch = max(1, batch)
        self.enabled = enabled
        self.localize = localize
        self.on_batch = on_batch
        self.profiler = profiler if profiler is not None else get_profiler()
        self.collectives = collectives or Collectives(
            num_shards, profiler=self.profiler)
        self._verified = 0
        self.checks_performed = 0
        self._active = set(range(num_shards))

    def hasher(self, shard: int) -> ShardHasher:
        return self.hashers[shard]

    # -- shard-set management (DEGRADE / RESTART) ----------------------------

    @property
    def active_shards(self) -> List[int]:
        return sorted(self._active)

    def quarantine(self, shard: int) -> None:
        """Stop comparing ``shard``; its recorded calls are abandoned."""
        self._active.discard(shard)
        if not self._active:
            raise ValueError("cannot quarantine the last active shard")

    def reset_shard(self, shard: int) -> None:
        """Re-admit ``shard`` with a fresh hasher (RESTART rejoin).

        The restarted shard replays its control stream from the beginning;
        checks stall (``_ready() <= 0``) until it catches back up to the
        verified frontier, i.e. it rejoins at the next batch boundary.
        """
        self.hashers[shard] = ShardHasher(shard, self.injector)
        self._active.add(shard)

    def _active_hashers(self) -> List[ShardHasher]:
        return [self.hashers[s] for s in sorted(self._active)]

    def _ready(self) -> int:
        """Number of call slots recorded by *all* shards but not yet checked."""
        avail = min(len(h.calls) for h in self._active_hashers())
        return max(0, avail - self._verified)

    def maybe_check(self) -> None:
        """Run the collective check if a full batch is ready on every shard."""
        if self.enabled and self._ready() >= self.batch:
            self._check(self._ready())

    def flush(self) -> None:
        """Check everything outstanding; also verifies equal call counts."""
        if not self.enabled:
            return
        hashers = self._active_hashers()
        counts = [len(h.calls) for h in hashers]
        if len(set(counts)) > 1:
            seq = min(counts)
            # Guard and index must agree on the *same* list: descriptions
            # grows in lockstep with calls, so index it under its own length.
            descr = [
                h.descriptions[seq] if seq < len(h.descriptions)
                else "<no call>"
                for h in hashers
            ]
            raise ControlDeterminismViolation(
                seq, descr,
                shard_ids=[h.shard for h in hashers],
                call_counts=counts)
        remaining = self._ready()
        if remaining > 0:
            self._check(remaining)

    # -- window digests & localization ---------------------------------------

    def window_digest(self, shard: int, start: int, count: int) -> int:
        """128-bit digest of one shard's calls ``[start, start+count)``."""
        return stream_digest(self.hashers[shard].calls[start:start + count])

    def localize_window(self, start: int, count: int) -> DivergenceDiagnosis:
        """Find the first divergent call in a mismatched window (LOCALIZE).

        Models the paper-faithful distributed protocol: every shard
        contributes its per-call digests for the window via one allgather
        (charged to :class:`Collectives` and the profiler), then each shard
        runs the same deterministic binary search over digest prefixes —
        window hashes are prefix-monotone, so the first index at which the
        prefix sets diverge is the first divergent call.
        """
        prof = self.profiler
        t0 = prof.now_us() if prof.enabled else 0.0
        shards = sorted(self._active)
        hashers = [self.hashers[s] for s in shards]
        # The allgather moves count 128-bit digests per shard; the payload
        # rides the same O(log N) schedule as any allgather.  Quarantined
        # slots are padded with the first active shard's stream so the
        # collective keeps its fixed width without affecting the search.
        per_call = [h.calls[start:start + count] for h in hashers]
        pad = self.collectives.num_shards - len(per_call)
        full = self.collectives.allgather(
            per_call + per_call[:1] * pad)[0][:len(shards)]
        # The binary search over chained prefix digests is shared with the
        # multiprocess backend (which gathers over the transport instead).
        diagnosis = locate_divergence(
            shards, full,
            [h.descriptions[start:start + count] for h in hashers],
            [len(h.calls) for h in hashers], start, count)
        seq = diagnosis.seq
        divergent = diagnosis.divergent_shards
        if prof.enabled:
            prof.complete(CONTROL_SHARD, CAT_DETERMINISM, EV_DET_LOCALIZE,
                          t0, prof.now_us() - t0, seq=seq,
                          shards=list(divergent), window=count)
            prof.count("determinism.localizations")
        return diagnosis

    def _check(self, count: int) -> None:
        prof = self.profiler
        t0 = prof.now_us() if prof.enabled else 0.0
        start = self._verified
        self.checks_performed += 1
        hashers = self._active_hashers()
        # One all-reduce over the batch: combine (window-hash, ok) pairs.
        window_hashes = [self.window_digest(h.shard, start, count)
                         for h in hashers]
        pad = self.collectives.num_shards - len(window_hashes)
        combined = self.collectives.allreduce(
            [(w, True) for w in window_hashes + window_hashes[:1] * pad],
            lambda a, b: (a[0], a[1] and b[1] and a[0] == b[0]))
        if not all(ok for (_w, ok) in combined):
            if self.localize:
                diagnosis = self.localize_window(start, count)
                raise ControlDeterminismViolation(
                    diagnosis.seq, list(diagnosis.descriptions),
                    shard_digests=list(diagnosis.shard_digests),
                    shard_ids=list(diagnosis.shard_ids),
                    diagnosis=diagnosis)
            # Locate the first divergent call for the error message.
            for off in range(count):
                seq = start + off
                digests = {h.calls[seq] for h in hashers}
                if len(digests) > 1:
                    raise ControlDeterminismViolation(
                        seq, [h.descriptions[seq] for h in hashers],
                        shard_digests=[h.calls[seq] for h in hashers],
                        shard_ids=[h.shard for h in hashers])
            raise ControlDeterminismViolation(start, ["<window mismatch>"])
        self._verified = start + count
        if prof.enabled:
            prof.complete(CONTROL_SHARD, CAT_DETERMINISM, EV_DET_CHECK,
                          t0, prof.now_us() - t0, calls=count,
                          batch=self.checks_performed)
            prof.count("determinism.batches")
            prof.count("determinism.calls_checked", count)
        if self.on_batch is not None:
            self.on_batch(self._verified)
