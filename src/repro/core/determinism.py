"""Control-determinism checking (paper §3).

DCR requires all shards to make the *same sequence of runtime API calls*
("control determinism").  The check: for every API call from a shard of a
replicated task, compute a 128-bit hash capturing the call and its actual
arguments, then verify via an (asynchronous, batched) all-reduce that all
shards produced identical hashes.  On mismatch the runtime aborts with an
error naming the first divergent operation — the paper reports this is
sufficient for debugging.

Hashing detail: raw Python object identities differ between shards even for
logically identical resources, so each shard's checker *interns* runtime
resources (regions, partitions, fields, futures...) into shard-local ids
assigned in API-call order.  Control determinism guarantees identical
numbering across shards, making the hashes comparable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..obs.events import CAT_DETERMINISM, CONTROL_SHARD, EV_DET_CHECK
from ..obs.profiler import Profiler, get_profiler
from .collectives import Collectives

__all__ = ["ControlDeterminismViolation", "ShardHasher", "DeterminismMonitor"]


class ControlDeterminismViolation(RuntimeError):
    """Raised when shards diverge in their sequence of runtime API calls."""

    def __init__(self, seq: int, descriptions: Sequence[str]):
        self.seq = seq
        self.descriptions = list(descriptions)
        uniq = sorted(set(self.descriptions))
        super().__init__(
            f"control determinism violated at API call #{seq}: shards "
            f"disagree — {uniq}")


class ShardHasher:
    """Per-shard API-call hasher with resource interning."""

    def __init__(self, shard: int):
        self.shard = shard
        self._intern: Dict[int, int] = {}
        self._next_local = 0
        self.calls: List[int] = []          # 128-bit hashes, in call order
        self.descriptions: List[str] = []   # human-readable, for error messages

    def intern(self, obj: Any) -> int:
        """Shard-local id for a runtime resource, by first-use order."""
        key = id(obj)
        local = self._intern.get(key)
        if local is None:
            local = self._next_local
            self._next_local += 1
            self._intern[key] = local
        return local

    def _canon(self, value: Any) -> bytes:
        """Canonical byte encoding of an argument value."""
        if value is None:
            return b"N"
        if isinstance(value, bool):
            return b"B1" if value else b"B0"
        if isinstance(value, int):
            return b"I" + str(value).encode()
        if isinstance(value, float):
            return b"F" + value.hex().encode()
        if isinstance(value, str):
            return b"S" + value.encode()
        if isinstance(value, bytes):
            return b"Y" + value
        if isinstance(value, (tuple, list)):
            inner = b",".join(self._canon(v) for v in value)
            return b"T(" + inner + b")"
        if isinstance(value, dict):
            items = sorted((str(k), v) for k, v in value.items())
            inner = b",".join(
                self._canon(k) + b"=" + self._canon(v) for k, v in items)
            return b"D(" + inner + b")"
        if isinstance(value, frozenset) or isinstance(value, set):
            inner = b",".join(sorted(self._canon(v) for v in value))
            return b"Z(" + inner + b")"
        # Runtime resource: intern by first-use order.
        return b"R" + str(self.intern(value)).encode()

    def record(self, api_call: str, *args: Any, **kwargs: Any) -> int:
        """Hash one API call; returns the 128-bit digest as an int."""
        h = hashlib.blake2b(digest_size=16)
        h.update(api_call.encode())
        for a in args:
            h.update(b"|")
            h.update(self._canon(a))
        for k in sorted(kwargs):
            h.update(b"|" + k.encode() + b"=")
            h.update(self._canon(kwargs[k]))
        digest = int.from_bytes(h.digest(), "little")
        self.calls.append(digest)
        self.descriptions.append(api_call)
        return digest


@dataclass
class _CheckWindow:
    """One pending batch of hashes awaiting the all-reduce."""

    start: int
    length: int


class DeterminismMonitor:
    """Coordinates the asynchronous hash all-reduce across shards.

    The real system hides the all-reduce latency by pipelining it with
    execution; here ``maybe_check`` is called after every recorded call and
    performs the collective once every ``batch`` calls are available on all
    shards (plus a final ``flush`` at task completion).  ``enabled=False``
    models the "No Safe" configurations of Fig. 21.
    """

    def __init__(self, num_shards: int, batch: int = 64, enabled: bool = True,
                 collectives: Optional[Collectives] = None,
                 profiler: Optional[Profiler] = None):
        self.hashers = [ShardHasher(i) for i in range(num_shards)]
        self.batch = max(1, batch)
        self.enabled = enabled
        self.profiler = profiler if profiler is not None else get_profiler()
        self.collectives = collectives or Collectives(
            num_shards, profiler=self.profiler)
        self._verified = 0
        self.checks_performed = 0

    def hasher(self, shard: int) -> ShardHasher:
        return self.hashers[shard]

    def _ready(self) -> int:
        """Number of call slots recorded by *all* shards but not yet checked."""
        return min(len(h.calls) for h in self.hashers) - self._verified

    def maybe_check(self) -> None:
        """Run the collective check if a full batch is ready on every shard."""
        if self.enabled and self._ready() >= self.batch:
            self._check(self._ready())

    def flush(self) -> None:
        """Check everything outstanding; also verifies equal call counts."""
        if not self.enabled:
            return
        counts = {len(h.calls) for h in self.hashers}
        if len(counts) > 1:
            seq = min(counts)
            descr = [
                h.descriptions[seq] if seq < len(h.calls) else "<no call>"
                for h in self.hashers
            ]
            raise ControlDeterminismViolation(seq, descr)
        remaining = self._ready()
        if remaining > 0:
            self._check(remaining)

    def _check(self, count: int) -> None:
        prof = self.profiler
        t0 = prof.now_us() if prof.enabled else 0.0
        start = self._verified
        self.checks_performed += 1
        # One all-reduce over the batch: combine (window-hash, ok) pairs.
        window_hashes = []
        for h in self.hashers:
            acc = hashlib.blake2b(digest_size=16)
            for d in h.calls[start:start + count]:
                acc.update(d.to_bytes(16, "little"))
            window_hashes.append(int.from_bytes(acc.digest(), "little"))
        combined = self.collectives.allreduce(
            [(w, True) for w in window_hashes],
            lambda a, b: (a[0], a[1] and b[1] and a[0] == b[0]))
        if not all(ok for (_w, ok) in combined):
            # Locate the first divergent call for the error message.
            for off in range(count):
                seq = start + off
                digests = {h.calls[seq] for h in self.hashers}
                if len(digests) > 1:
                    raise ControlDeterminismViolation(
                        seq, [h.descriptions[seq] for h in self.hashers])
            raise ControlDeterminismViolation(start, ["<window mismatch>"])
        self._verified = start + count
        if prof.enabled:
            prof.complete(CONTROL_SHARD, CAT_DETERMINISM, EV_DET_CHECK,
                          t0, prof.now_us() - t0, calls=count,
                          batch=self.checks_performed)
            prof.count("determinism.batches")
            prof.count("determinism.calls_checked", count)
