"""GC-safe deferred operations (paper §4.3).

Garbage-collector finalizers (Python/Lua) may delete regions or perform
detach operations at *arbitrary* points in each shard, which would violate
control determinism.  The remedy: such operations are *deferred* — each
shard announces the operation whenever its collector happens to run, and the
runtime periodically polls (with exponential back-off) whether **all**
shards have observed the same deferred operation.  Once they concur, the
operation is inserted at the same location in every shard's dependence
analysis stream.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Set

__all__ = ["DeferredOpManager"]


@dataclass
class _PendingOp:
    key: Hashable
    observed_by: Set[int] = field(default_factory=set)


class DeferredOpManager:
    """Consensus buffer for finalizer-issued operations.

    ``announce(shard, key)`` is called from a shard's finalizer; ``poll()``
    is called by the runtime between operations and returns (in a canonical,
    deterministic order) the keys every shard has announced, which the
    runtime then inserts into all shards' streams at the same point.

    Exponential back-off: when a poll yields nothing, the next poll is
    skipped for exponentially more ticks (capped), so an idle collector
    costs almost nothing; activity resets the interval, matching §4.3.
    """

    def __init__(self, num_shards: int, min_interval: int = 1,
                 max_interval: int = 1024):
        self.num_shards = num_shards
        self.min_interval = min_interval
        self.max_interval = max_interval
        self._pending: Dict[Hashable, _PendingOp] = {}
        self._announce_order: List[Hashable] = []
        self._interval = min_interval
        self._cooldown = 0
        self._active: Set[int] = set(range(num_shards))
        # Loopback-backend replicas announce from concurrent threads; the
        # shared pending map must mutate atomically.
        self._lock = threading.Lock()
        self.polls = 0            # polls actually performed
        self.skipped = 0          # polls suppressed by back-off

    def quarantine(self, shard: int) -> None:
        """Stop waiting for ``shard``'s announcements (DEGRADE recovery).

        Consensus now requires only the surviving shards — without this a
        quarantined shard's missing announcements would wedge every pending
        deferred op (and the runtime's drain loop) forever.
        """
        self._active.discard(shard)
        if not self._active:
            raise ValueError("cannot quarantine the last active shard")

    def restore(self, shard: int) -> None:
        """Re-admit ``shard`` to the consensus set (RESTART rejoin)."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"invalid shard {shard}")
        self._active.add(shard)

    def announce(self, shard: int, key: Hashable) -> None:
        """Shard ``shard``'s collector finalized the resource named ``key``."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"invalid shard {shard}")
        with self._lock:
            op = self._pending.get(key)
            if op is None:
                op = _PendingOp(key)
                self._pending[key] = op
                self._announce_order.append(key)
            op.observed_by.add(shard)

    def tick(self) -> List[Hashable]:
        """One runtime tick: maybe poll; returns ready operations (in the
        deterministic first-announced order) or an empty list."""
        if self._cooldown > 0:
            self._cooldown -= 1
            self.skipped += 1
            return []
        self.polls += 1
        with self._lock:
            ready = [
                key for key in self._announce_order
                if self._active <= self._pending[key].observed_by
            ]
            for key in ready:
                del self._pending[key]
            self._announce_order = [
                k for k in self._announce_order if k in self._pending]
        if ready:
            self._interval = self.min_interval
        else:
            self._interval = min(self._interval * 2, self.max_interval)
        self._cooldown = self._interval - 1
        return ready

    @property
    def outstanding(self) -> int:
        """Operations announced by at least one shard but not yet agreed."""
        return len(self._pending)

    def pending_keys(self) -> List[Hashable]:
        """Keys announced but not yet agreed, in announcement order.

        Used by the multiprocess runtime backend: replica announcements
        happen in forked copies of this manager, so once the replicas'
        call streams are verified byte-identical over the wire, the parent
        endorses the driver's announcements on their behalf.
        """
        return list(self._announce_order)
