"""Coarse-stage dependence analysis (paper §4.1, Fig. 9 top).

Every shard runs this stage over **all** operations, in program order.  The
stage discovers dependences at *task-group granularity* without enumerating
group points: each group is represented by its region-tree upper bound (the
partition named in the launch), and a field-epoch state machine per
(region tree, field) finds the prior operations a new one conflicts with.
Its cost is therefore independent of machine size — the property that makes
DCR scale.

For each discovered group-level dependence the stage decides whether a
*cross-shard fence* is needed (``requires_shard_fence`` in Fig. 9):

* trivially elided when only one shard exists, or when both operations are
  individual operations owned by the same shard (fine stages analyze their
  local stream in program order);
* **symbolically elided** for the common data-parallel case: two group
  launches over the same launch domain with the same sharding function where
  every conflicting requirement pair names the *same disjoint partition*
  through the *same projection function* — then every point-level dependence
  is provably shard-local (§4.1 observation 2);
* otherwise a fence scoped to the conflicting region and fields is inserted
  at the later operation's position, implemented at run time as a no-payload
  all-gather (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..obs.events import (CAT_COARSE, CONTROL_SHARD, EV_COARSE_GROUP,
                          EV_FENCE_ELIDE, EV_FENCE_INSERT)
from ..obs.profiler import Profiler, get_profiler
from ..regions import LogicalRegion, Partition, may_alias
from .operation import CoarseRequirement, Operation

__all__ = ["Fence", "CoarseResult", "CoarseAnalysis"]


def _region_contains(outer: LogicalRegion, inner: LogicalRegion) -> bool:
    """True when ``outer`` provably covers every point of ``inner``."""
    if outer.tree_id != inner.tree_id:
        return False
    if outer.is_ancestor_of(inner):
        return True
    if outer.index_space.structured and inner.index_space.structured:
        return outer.index_space.rect.contains_rect(inner.index_space.rect)
    return inner.index_space.point_set() <= outer.index_space.point_set()


@dataclass(frozen=True)
class Fence:
    """A scoped cross-shard fence inserted before operation ``at_seq``.

    Orders the fine-stage analysis of all prior operations touching
    ``region``/``fields`` (on every shard) before any later one.  A fence
    with ``region is None`` is a *global* analysis fence covering every
    region tree (used as the entry precondition of trace replays).
    """

    at_seq: int
    region: Optional[LogicalRegion]
    fields: frozenset


@dataclass
class CoarseResult:
    """Everything the coarse stage produced for one program."""

    deps: Set[Tuple[Operation, Operation]] = field(default_factory=set)
    fences: List[Fence] = field(default_factory=list)
    fences_elided: int = 0
    users_scanned: int = 0          # pairwise upper-bound tests performed
    ops_analyzed: int = 0

    def fence_positions(self) -> List[int]:
        return sorted({f.at_seq for f in self.fences})

    def covers_cross_edge(self, earlier_seq: int, later_seq: int,
                          region: LogicalRegion, fields: frozenset) -> bool:
        """Is a cross-shard point dependence (earlier -> later) on the given
        data ordered by some fence?  A fence at position p orders all fine
        analysis of ops with seq < p before ops with seq >= p for data
        aliasing its scope (each shard's fine stage runs in program order and
        the fence is a global all-gather at position p).
        """
        for f in self.fences:
            if earlier_seq < f.at_seq <= later_seq:
                if f.region is None:
                    return True
                if (f.fields & fields) and may_alias(f.region, region):
                    return True
        return False


class _FieldState:
    """Epoch lists for one (region-tree root, field): Legion-style."""

    __slots__ = ("write_epoch", "read_epoch")

    def __init__(self) -> None:
        # Entries are (op, coarse requirement) pairs.
        self.write_epoch: List[Tuple[Operation, CoarseRequirement]] = []
        self.read_epoch: List[Tuple[Operation, CoarseRequirement]] = []


class CoarseAnalysis:
    """Incremental coarse-stage analysis (one instance per DCR context).

    ``analyze(op)`` assigns the op its program-order ``seq`` and returns the
    newly discovered dependences and fences.  The same object on every shard
    would compute the same result; we run it once and charge its cost to all
    shards in the simulator.
    """

    def __init__(self, num_shards: int,
                 profiler: Optional[Profiler] = None):
        self.num_shards = num_shards
        self.profiler = profiler if profiler is not None else get_profiler()
        self.result = CoarseResult()
        self._state: Dict[Tuple[int, int], _FieldState] = {}

    # -- entry point -----------------------------------------------------------

    def analyze(self, op: Operation) -> Tuple[Set[Tuple[Operation, Operation]],
                                              List[Fence]]:
        if op.seq < 0:
            raise ValueError("pipeline must assign op.seq before analysis")
        prof = self.profiler
        profiling = prof.enabled
        if profiling:
            t0 = prof.now_us()
            scans0 = self.result.users_scanned
            elided0 = self.result.fences_elided
        self.result.ops_analyzed += 1

        dep_ops: Dict[Operation, List[Tuple[CoarseRequirement,
                                            CoarseRequirement]]] = {}
        for req in op.coarse_reqs:
            bound = req.bound_region()
            for fid in sorted(f.fid for f in req.fields):
                state = self._state.setdefault((bound.tree_id, fid),
                                               _FieldState())
                self._scan(op, req, bound, state, dep_ops)
        for req in op.coarse_reqs:
            bound = req.bound_region()
            for fid in sorted(f.fid for f in req.fields):
                state = self._state[(bound.tree_id, fid)]
                self._update(op, req, bound, state)

        new_deps: Set[Tuple[Operation, Operation]] = set()
        new_fences: List[Fence] = []
        for prev, pairs in dep_ops.items():
            new_deps.add((prev, op))
            fence = self._fence_for(prev, op, pairs)
            if fence is None:
                self.result.fences_elided += 1
            else:
                new_fences.append(fence)
        # Dedupe fences at the same position with identical scope.
        for f in new_fences:
            if f not in self.result.fences:
                self.result.fences.append(f)
        self.result.deps |= new_deps
        if profiling:
            self._profile_op(op, new_fences, t0, scans0, elided0)
        return new_deps, new_fences

    def _profile_op(self, op: Operation, fences: List[Fence], t0: float,
                    scans0: int, elided0: int) -> None:
        """Emit the coarse-group span and fence events (profiling only).

        The coarse stage runs identically on *every* shard (that is what
        makes its cost machine-size independent), so its span is charged to
        each shard's timeline, exactly as the simulator charges its cost.
        """
        prof = self.profiler
        dur = prof.now_us() - t0
        scans = self.result.users_scanned - scans0
        elided = self.result.fences_elided - elided0
        name = op.name or op.kind
        for shard in range(self.num_shards):
            prof.complete(shard, CAT_COARSE, EV_COARSE_GROUP, t0, dur,
                          op=name, seq=op.seq, scans=scans)
        for f in fences:
            region = f.region.name if f.region is not None else "<global>"
            prof.instant(CONTROL_SHARD, CAT_COARSE, EV_FENCE_INSERT,
                         at_seq=f.at_seq, region=region,
                         fields=len(f.fields))
            prof.metrics.count(f"coarse.fences.{region}")
        if elided:
            prof.instant(CONTROL_SHARD, CAT_COARSE, EV_FENCE_ELIDE,
                         op=name, seq=op.seq, count=elided)
        m = prof.metrics
        m.count("coarse.ops")
        m.count("coarse.scans", scans)
        m.count("coarse.fences_inserted", len(fences))
        m.count("coarse.fences_elided", elided)

    def register_replayed(self, op: Operation) -> None:
        """Fold a trace-replayed op into the epoch state without scanning.

        Replays skip the dependence scan (their structure comes from the
        recording), but their *effects on the epoch state* must still be
        applied — otherwise operations issued after the trace would compare
        against pre-trace state and miss dependences on replayed work.
        """
        self.result.ops_analyzed += 1
        for req in op.coarse_reqs:
            bound = req.bound_region()
            for fid in sorted(f.fid for f in req.fields):
                state = self._state.setdefault((bound.tree_id, fid),
                                               _FieldState())
                self._update(op, req, bound, state)

    # -- scanning ------------------------------------------------------------------

    def _scan(self, op: Operation, req: CoarseRequirement,
              bound: LogicalRegion, state: _FieldState,
              dep_ops: Dict[Operation, List[Tuple[CoarseRequirement,
                                                  CoarseRequirement]]]) -> None:
        def check(entries: Sequence[Tuple[Operation, CoarseRequirement]]) -> None:
            for prev_op, prev_req in entries:
                if prev_op is op:
                    continue
                self.result.users_scanned += 1
                if not prev_req.privilege.conflicts_with(req.privilege):
                    continue
                if may_alias(prev_req.bound_region(), bound):
                    dep_ops.setdefault(prev_op, []).append((prev_req, req))

        if req.privilege.writes:
            check(state.read_epoch)
            check(state.write_epoch)
        elif req.privilege.is_reduce:
            # Conflicts with writers and with different-op reducers/readers.
            check(state.read_epoch)
            check(state.write_epoch)
        else:  # reader
            check(state.write_epoch)
            # Readers also conflict with reducers parked in the read epoch.
            check([e for e in state.read_epoch
                   if e[1].privilege.is_reduce])

    def _update(self, op: Operation, req: CoarseRequirement,
                bound: LogicalRegion, state: _FieldState) -> None:
        entry = (op, req)
        if req.privilege.writes:
            # New write epoch for the covered data: drop dominated users
            # (any future conflict with them is transitively ordered via op).
            state.read_epoch = [
                e for e in state.read_epoch
                if not _region_contains(bound, e[1].bound_region())]
            state.write_epoch = [
                e for e in state.write_epoch
                if not _region_contains(bound, e[1].bound_region())]
            state.write_epoch.append(entry)
        else:
            if entry not in state.read_epoch:
                state.read_epoch.append(entry)

    # -- fence insertion / elision ----------------------------------------------------

    def _fence_for(self, prev: Operation, op: Operation,
                   pairs: Sequence[Tuple[CoarseRequirement, CoarseRequirement]]
                   ) -> Optional[Fence]:
        if self.num_shards == 1:
            return None
        if self._provably_shard_local(prev, op, pairs):
            return None
        # Scope the fence to the least upper bound of the conflicting data.
        preq, nreq = pairs[0]
        scope_region = preq.bound_region()
        scope_fields: frozenset = frozenset()
        for preq, nreq in pairs:
            if not _region_contains(scope_region, nreq.bound_region()):
                # Fall back to the common root, always a sound scope.
                scope_region = scope_region.root()
            scope_fields |= (preq.fields | nreq.fields)
        return Fence(at_seq=op.seq, region=scope_region, fields=scope_fields)

    def _provably_shard_local(
        self, prev: Operation, op: Operation,
        pairs: Sequence[Tuple[CoarseRequirement, CoarseRequirement]]) -> bool:
        """The symbolic proof of §4.1 observation 2."""
        if not prev.is_group and not op.is_group:
            return prev.owner_shard % self.num_shards == \
                op.owner_shard % self.num_shards
        if not (prev.is_group and op.is_group):
            return False
        if prev.launch_domain != op.launch_domain:
            return False
        assert prev.sharding is not None and op.sharding is not None
        if prev.sharding.sid != op.sharding.sid:
            return False
        for preq, nreq in pairs:
            if not (isinstance(preq.upper, Partition)
                    and isinstance(nreq.upper, Partition)):
                return False
            if preq.upper.uid != nreq.upper.uid:
                return False
            if not preq.upper.disjoint:
                return False
            pproj = preq.projection.pid if preq.projection else 0
            nproj = nreq.projection.pid if nreq.projection else 0
            if pproj != nproj:
                return False
        return True
