"""Coarse-stage dependence analysis (paper §4.1, Fig. 9 top).

Every shard runs this stage over **all** operations, in program order.  The
stage discovers dependences at *task-group granularity* without enumerating
group points: each group is represented by its region-tree upper bound (the
partition named in the launch), and a field-epoch state machine per
(region tree, field) finds the prior operations a new one conflicts with.
Its cost is therefore independent of machine size — the property that makes
DCR scale.

For each discovered group-level dependence the stage decides whether a
*cross-shard fence* is needed (``requires_shard_fence`` in Fig. 9):

* trivially elided when only one shard exists, or when both operations are
  individual operations owned by the same shard (fine stages analyze their
  local stream in program order);
* **symbolically elided** for the common data-parallel case: two group
  launches over the same launch domain with the same sharding function where
  every conflicting requirement pair names the *same disjoint partition*
  through the *same projection function* — then every point-level dependence
  is provably shard-local (§4.1 observation 2);
* otherwise a fence scoped to the conflicting region and fields is inserted
  at the later operation's position, implemented at run time as a no-payload
  all-gather (§4.2).

Scaling note (DePa, Westrick et al., PPoPP '22): ordering and conflict
queries are answered in O(1) by two structures from `repro.core.om`:

* every fence position carries an **order-maintenance label** on a single
  spine (:class:`~repro.core.om.OMLabeler`), and the :class:`FenceStore`
  projects fences onto *channels* — one global channel plus one per
  (scope region, field) — each holding dense per-position rank stamps
  (:class:`~repro.core.om.SeqStamps`).  ``covers`` is then one rank
  comparison per channel the query can touch, independent of how many
  fences exist (previously an O(log F) bisect plus a window walk);
* epoch buckets are keyed by **interned requirement classes**: each
  distinct (privilege, bound-region) pair gets a small integer class id,
  and the conflict decision for a (bucket class, query class) pair is a
  single flat ``dict[(int, int)]`` probe (previously a privilege-table
  lookup plus an LRU alias probe per bucket, re-hashing dataclasses and
  enums every scan).

Epoch entries additionally carry two-component *(coarse, fine)* timestamps:
the coarse component is the fence-spine OM node current at insertion, the
fine component a per-epoch insertion counter.  Comparing stamps compares
the *live* OM labels (never snapshots — labels move on relabels, spine
order does not), so stamp order provably equals insertion order and the
bucketed scan reproduces the naive scan's observable order exactly.

The indexed implementation is *observationally identical* to the naive
per-entry scan — same dependences in the same order, same fences, same
``users_scanned`` counts — a property pinned by the differential tests
(tests/core/test_indexed_equivalence.py against the reference
implementations in tests/helpers.py).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..obs.events import (CAT_COARSE, CONTROL_SHARD, EV_COARSE_GROUP,
                          EV_FENCE_ELIDE, EV_FENCE_INSERT)
from ..obs.profiler import Profiler, get_profiler
from ..oracle import Privilege
from ..regions import (LogicalRegion, Partition, cached_may_alias,
                       cached_region_contains, register_cache_clearer)
from .om import OMLabeler, OMNode, SeqStamps
from .operation import CoarseRequirement, Operation

__all__ = ["Fence", "FenceStore", "CoarseResult", "CoarseAnalysis",
           "clear_coarse_decision_caches", "coarse_decision_stats"]


def _region_contains(outer: LogicalRegion, inner: LogicalRegion) -> bool:
    """True when ``outer`` provably covers every point of ``inner``."""
    return cached_region_contains(outer, inner)


# -- interned requirement classes -------------------------------------------------
#
# A coarse scan's per-bucket decision depends only on (privilege, bound
# region) of both sides.  Each distinct pair is interned to a small int —
# its *class id* — and decisions live in a flat dict keyed on (bucket cid,
# query cid) int pairs.  Region uids are never reused and privileges are
# immutable, so a decision never goes stale; the tables are bounded only
# to cap memory in very long-lived processes (the service path), by
# resetting everything and bumping a generation that lazily invalidates
# every cid cached on requirement objects or bucket structures.

_MAX_CLASSES = 1 << 20
_MAX_DECISIONS = 1 << 22

_GEN = 0
_CLASS_IDS: Dict[Tuple[Privilege, int], int] = {}
_CLASS_REPS: List[Tuple[Privilege, LogicalRegion]] = []
_DECISIONS: Dict[Tuple[int, int], bool] = {}
_CONTAINS: Dict[Tuple[int, int], bool] = {}


def clear_coarse_decision_caches() -> None:
    """Reset the interned class/decision tables (tests and benchmarks;
    never required for correctness)."""
    global _GEN
    _CLASS_IDS.clear()
    del _CLASS_REPS[:]
    _DECISIONS.clear()
    _CONTAINS.clear()
    _GEN += 1


def coarse_decision_stats() -> Dict[str, int]:
    return {"classes": len(_CLASS_REPS), "decisions": len(_DECISIONS),
            "generation": _GEN}


# The class tables key on region uids; whenever the region caches are
# cleared because uids are about to be reused (fresh_id_epoch), these
# tables must go with them.
register_cache_clearer(clear_coarse_decision_caches)


def _intern_class(privilege: Privilege, bound: LogicalRegion) -> int:
    key = (privilege, bound.uid)
    cid = _CLASS_IDS.get(key)
    if cid is None:
        if len(_CLASS_REPS) >= _MAX_CLASSES:
            clear_coarse_decision_caches()
        cid = len(_CLASS_REPS)
        _CLASS_IDS[key] = cid
        _CLASS_REPS.append((privilege, bound))
    return cid


def _class_of(req: CoarseRequirement, bound: LogicalRegion) -> int:
    """Class id of a requirement, cached on the (frozen) object and
    revalidated against the table generation."""
    tag = getattr(req, "_om_ccid", None)
    if tag is not None and tag[0] == _GEN:
        return tag[1]
    cid = _intern_class(req.privilege, bound)
    object.__setattr__(req, "_om_ccid", (_GEN, cid))
    return cid


def _decide(bcid: int, qcid: int) -> bool:
    """Compute-and-memoize one (bucket, query) conflict decision from the
    class representatives — exactly the naive per-entry test."""
    bpriv, bregion = _CLASS_REPS[bcid]
    qpriv, qbound = _CLASS_REPS[qcid]
    hit = bool(bpriv.conflicts_with(qpriv)
               and cached_may_alias(bregion, qbound))
    if len(_DECISIONS) >= _MAX_DECISIONS:
        _DECISIONS.clear()
    _DECISIONS[(bcid, qcid)] = hit
    return hit


def _contains_fast(outer: LogicalRegion, inner: LogicalRegion) -> bool:
    """Flat-dict memo of ``region_contains`` (skips the LRU recency
    shuffle of the shared PairCache on the retirement hot path)."""
    key = (outer.uid, inner.uid)
    hit = _CONTAINS.get(key)
    if hit is None:
        hit = cached_region_contains(outer, inner)
        if len(_CONTAINS) >= _MAX_DECISIONS:
            _CONTAINS.clear()
        _CONTAINS[key] = hit
    return hit


def _sorted_fids(req) -> Tuple[int, ...]:
    """Sorted field ids of a requirement, computed once per object (the
    per-op analysis loops re-visit every requirement's fields several
    times; re-sorting them dominated the loop overhead)."""
    fids = getattr(req, "_om_fids", None)
    if fids is None:
        fids = tuple(sorted(f.fid for f in req.fields))
        object.__setattr__(req, "_om_fids", fids)
    return fids


@dataclass(frozen=True)
class Fence:
    """A scoped cross-shard fence inserted before operation ``at_seq``.

    Orders the fine-stage analysis of all prior operations touching
    ``region``/``fields`` (on every shard) before any later one.  A fence
    with ``region is None`` is a *global* analysis fence covering every
    region tree (used as the entry precondition of trace replays, and as
    the sound scope when one dependence spans multiple region trees).
    """

    at_seq: int
    region: Optional[LogicalRegion]
    fields: frozenset


class _Channel:
    """One scoped fence channel: all fences sharing a scope region,
    projected per field onto rank stamps."""

    __slots__ = ("uid", "region", "by_fid")

    def __init__(self, region: LogicalRegion) -> None:
        self.uid = region.uid
        self.region = region
        self.by_fid: Dict[int, SeqStamps] = {}


class FenceStore:
    """Deduplicated, insertion-ordered fence set with O(1) order queries.

    Presents the ``List[Fence]`` API the rest of the system grew up with
    (``append``/``extend``/``clear``/iteration/``len``/``==`` against
    lists), while maintaining:

    * a set for O(1) dedupe and membership (``add`` returns whether the
      fence was new — the pipeline's replay integration relies on this);
    * an **order-maintenance spine**: every fence position gets an
      :class:`~repro.core.om.OMNode` whose label answers "which of these
      two fences comes first?" in one integer comparison, and whose
      relative order survives relabeling (the labels move, the order does
      not — which is why trace-replay rebinding via :meth:`add` preserves
      every outstanding timestamp);
    * **channels** with dense rank stamps: one global channel plus one per
      (scope region, field id).  A fence registers its position on the
      channels it can order; ``covers`` compares two ranks per reachable
      channel instead of walking or bisecting the fence list, so its cost
      is flat in the number of fences (the fence-population scaling sweep
      in benchmarks/bench_headline.py guards exactly this).

    Soundness of the index: a fence is immutable and its position never
    changes, so insertion-time channel registration is final.
    """

    __slots__ = ("_fences", "_set", "_spine", "_keys", "_nodes",
                 "_global", "_scoped", "_alias_memo", "_tick")

    def __init__(self, fences: Sequence[Fence] = ()) -> None:
        self._fences: List[Fence] = []
        self._set: Set[Fence] = set()
        self._spine = OMLabeler()
        self._keys: List[Tuple[int, int]] = []    # sorted (at_seq, tick)
        self._nodes: List[OMNode] = []            # parallel spine nodes
        self._global = SeqStamps()
        self._scoped: Dict[int, Dict[int, _Channel]] = {}  # tree -> uid -> ch
        self._alias_memo: Dict[Tuple[int, int], bool] = {}
        self._tick = 0
        for f in fences:
            self.add(f)

    # -- mutation -----------------------------------------------------------------

    def add(self, fence: Fence) -> bool:
        """Insert unless an identical fence exists; True when inserted.

        Analysis inserts fences in program order (the monotone fast path:
        an O(1) spine append).  Out-of-order inserts — bulk loads, tests —
        bisect into the spine; the OM labeler absorbs the insert with an
        amortized O(1) relabel and every existing node keeps its relative
        order, so timestamps handed out earlier stay valid.
        """
        if fence in self._set:
            return False
        self._set.add(fence)
        self._fences.append(fence)
        self._tick += 1
        key = (fence.at_seq, self._tick)
        keys = self._keys
        if not keys or key >= keys[-1]:
            node = self._spine.insert_last()
            keys.append(key)
            self._nodes.append(node)
        else:
            idx = bisect_right(keys, key)
            node = self._spine.insert_before(self._nodes[idx])
            keys.insert(idx, key)
            self._nodes.insert(idx, node)
        region = fence.region
        if region is None:
            self._global.note(fence.at_seq, node)
        else:
            chans = self._scoped.setdefault(region.tree_id, {})
            chan = chans.get(region.uid)
            if chan is None:
                chan = _Channel(region)
                chans[region.uid] = chan
            by_fid = chan.by_fid
            for fl in fence.fields:
                ss = by_fid.get(fl.fid)
                if ss is None:
                    ss = SeqStamps()
                    by_fid[fl.fid] = ss
                ss.note(fence.at_seq, node)
        return True

    def append(self, fence: Fence) -> None:
        self.add(fence)

    def extend(self, fences: Sequence[Fence]) -> None:
        for f in fences:
            self.add(f)

    def clear(self) -> None:
        self._fences.clear()
        self._set.clear()
        self._spine = OMLabeler()
        self._keys.clear()
        self._nodes.clear()
        self._global = SeqStamps()
        self._scoped.clear()
        self._alias_memo.clear()

    # -- queries ------------------------------------------------------------------

    def covers(self, earlier_seq: int, later_seq: int,
               region: LogicalRegion, fields: frozenset) -> bool:
        """Any fence in (earlier_seq, later_seq] whose scope orders the
        given data?  One rank comparison on the global channel, then one
        per (aliasing scope, query field) channel — O(1) per probe and
        flat in the total fence population.

        Equivalent to the naive walk: a fence covers the edge iff it is
        global, or some field in ``f.fields & fields`` exists and
        ``may_alias(f.region, region)`` — i.e. iff the fence registered a
        position on a channel this query can reach.
        """
        if self._global.covers(earlier_seq, later_seq):
            return True
        chans = self._scoped.get(region.tree_id)
        if not chans:
            return False
        memo = self._alias_memo
        ruid = region.uid
        for chan in chans.values():
            mkey = (chan.uid, ruid)
            hit = memo.get(mkey)
            if hit is None:
                hit = cached_may_alias(chan.region, region)
                memo[mkey] = hit
            if not hit:
                continue
            by_fid = chan.by_fid
            for fl in fields:
                ss = by_fid.get(fl.fid)
                if ss is not None and ss.covers(earlier_seq, later_seq):
                    return True
        return False

    def era_node(self) -> Optional[OMNode]:
        """The spine node of the latest fence position — the *coarse*
        component epoch entries stamp at insertion (None before any
        fence).  Successive era nodes only ever move later on the spine,
        so stamps sorted by (live era label, fine counter) reproduce
        insertion order exactly."""
        nodes = self._nodes
        return nodes[-1] if nodes else None

    def positions(self) -> List[int]:
        return sorted({f.at_seq for f in self._fences})

    def om_stats(self) -> Dict[str, int]:
        """Order-maintenance accounting (benchmarks and tests)."""
        return {
            "spine": len(self._spine),
            "relabels": self._spine.relabels,
            "relabeled_nodes": self._spine.relabeled_nodes,
            "channels": 1 + sum(len(ch.by_fid)
                                for chans in self._scoped.values()
                                for ch in chans.values()),
        }

    def check_invariants(self) -> None:
        """Spine and channel consistency (test hook)."""
        self._spine.check_invariants()
        assert len(self._spine) == len(self._fences), \
            "spine does not cover every fence"
        assert self._keys == sorted(self._keys), "spine keys out of order"
        for a, b in zip(self._nodes, self._nodes[1:]):
            assert a.label < b.label, "spine nodes disagree with key order"
        self._global.check_invariants()
        for chans in self._scoped.values():
            for chan in chans.values():
                for ss in chan.by_fid.values():
                    ss.check_invariants()

    # -- list-compatible protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Fence]:
        return iter(self._fences)

    def __len__(self) -> int:
        return len(self._fences)

    def __bool__(self) -> bool:
        return bool(self._fences)

    def __contains__(self, fence: object) -> bool:
        return fence in self._set

    def __getitem__(self, index):
        return self._fences[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FenceStore):
            return self._fences == other._fences
        if isinstance(other, (list, tuple)):
            return self._fences == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover
        return f"FenceStore({self._fences!r})"


@dataclass
class CoarseResult:
    """Everything the coarse stage produced for one program."""

    deps: Set[Tuple[Operation, Operation]] = field(default_factory=set)
    fences: FenceStore = field(default_factory=FenceStore)
    fences_elided: int = 0
    users_scanned: int = 0          # pairwise upper-bound tests performed
    ops_analyzed: int = 0

    def fence_positions(self) -> List[int]:
        return sorted({f.at_seq for f in self.fences})

    def covers_cross_edge(self, earlier_seq: int, later_seq: int,
                          region: LogicalRegion, fields: frozenset) -> bool:
        """Is a cross-shard point dependence (earlier -> later) on the given
        data ordered by some fence?  A fence at position p orders all fine
        analysis of ops with seq < p before ops with seq >= p for data
        aliasing its scope (each shard's fine stage runs in program order and
        the fence is a global all-gather at position p).
        """
        return self.fences.covers(earlier_seq, later_seq, region, fields)


def _stamp_key(entry):
    """Sort key of a stamped epoch entry: the *live* label of its coarse
    OM node (relabel-safe — labels are never snapshotted), then the fine
    insertion counter."""
    node, idx = entry[0]
    return (node.label if node is not None else -1, idx)


class _EpochBucket:
    """All epoch entries sharing one requirement class."""

    __slots__ = ("cid", "priv", "region", "is_reduce", "entries")

    def __init__(self, cid: int, priv: Privilege,
                 region: LogicalRegion) -> None:
        self.cid = cid
        self.priv = priv
        self.region = region
        self.is_reduce = priv.is_reduce
        # [((coarse OM node | None, fine counter), op, req), ...]
        self.entries: List[Tuple] = []


def _null_clock() -> Optional[OMNode]:
    return None


class _Epoch:
    """One epoch list, bucketed by interned requirement class.

    All entries of a bucket share the decision inputs of the naive
    per-entry loop — privilege and bound region — so a scan makes *one*
    flat-table decision per bucket (an int-pair dict probe) and then emits
    the bucket's entries.  Every entry carries a two-component
    (coarse OM node, fine counter) timestamp; matches are re-sorted by the
    live stamp order, which provably equals insertion order (the clock's
    era node only moves later on the fence spine), so dependence pairs
    appear in exactly the order the naive scan would have produced them
    (the fence scope starts from ``pairs[0]``, so order is observable).
    """

    __slots__ = ("_buckets", "_members", "_op_counts", "_next", "_size",
                 "_gen", "_clock")

    def __init__(self, clock=_null_clock) -> None:
        self._buckets: Dict[int, _EpochBucket] = {}
        self._members: Set[Tuple] = set()      # (id(op), req) for dedupe
        self._op_counts: Dict[int, int] = {}   # id(op) -> live entry count
        self._next = 0
        self._size = 0
        self._gen = _GEN
        self._clock = clock

    def _refresh(self) -> None:
        """The class tables were reset (generation bump): re-intern every
        bucket's class so cids stay bijective with classes."""
        buckets = list(self._buckets.values())
        self._buckets = {}
        for b in buckets:
            b.cid = _intern_class(b.priv, b.region)
            self._buckets[b.cid] = b
        self._gen = _GEN

    def add(self, op: Operation, req: CoarseRequirement,
            bound: LogicalRegion, unique: bool = False) -> None:
        key = (id(op), req)
        if unique and key in self._members:
            return
        self._members.add(key)
        cid = _class_of(req, bound)
        if self._gen != _GEN:
            self._refresh()
        b = self._buckets.get(cid)
        if b is None:
            b = _EpochBucket(cid, req.privilege, bound)
            self._buckets[cid] = b
        b.entries.append(((self._clock(), self._next), op, req))
        self._next += 1
        self._size += 1
        self._op_counts[id(op)] = self._op_counts.get(id(op), 0) + 1

    def match(self, op: Operation, req: CoarseRequirement,
              bound: LogicalRegion, reduce_only: bool = False
              ) -> Tuple[int, List[Tuple]]:
        """(entries scanned, matches in insertion order) — exactly what the
        naive loop over (op, req) pairs reports for the same epoch."""
        if id(op) in self._op_counts:
            return self._match_with_self(op, req, bound, reduce_only)
        qcid = _class_of(req, bound)
        if self._gen != _GEN:
            self._refresh()
        scanned = 0
        matched: List[Tuple] = []
        decisions = _DECISIONS
        for b in self._buckets.values():
            if reduce_only and not b.is_reduce:
                continue
            entries = b.entries
            scanned += len(entries)
            hit = decisions.get((b.cid, qcid))
            if hit is None:
                hit = _decide(b.cid, qcid)
            if hit:
                matched.extend(entries)
        matched.sort(key=_stamp_key)
        return scanned, [(e[1], e[2]) for e in matched]

    def _match_with_self(self, op, req, bound, reduce_only):
        """Slow path preserving the naive same-op skip semantics (the op
        under analysis is normally never in the epochs; this guards the
        invariant rather than assuming it)."""
        qcid = _class_of(req, bound)
        if self._gen != _GEN:
            self._refresh()
        scanned = 0
        matched: List[Tuple] = []
        for b in self._buckets.values():
            if reduce_only and not b.is_reduce:
                continue
            live = [e for e in b.entries if e[1] is not op]
            scanned += len(live)
            hit = _DECISIONS.get((b.cid, qcid))
            if hit is None:
                hit = _decide(b.cid, qcid)
            if hit:
                matched.extend(live)
        matched.sort(key=_stamp_key)
        return scanned, [(e[1], e[2]) for e in matched]

    def retire_contained(self, bound: LogicalRegion) -> None:
        """Drop every entry whose bound region is covered by ``bound`` —
        the write-retirement rule, decided once per bucket."""
        doomed = [cid for cid, b in self._buckets.items()
                  if _contains_fast(bound, b.region)]
        for cid in doomed:
            b = self._buckets.pop(cid)
            self._size -= len(b.entries)
            for _stamp, op, req in b.entries:
                self._members.discard((id(op), req))
                n = self._op_counts.get(id(op), 0) - 1
                if n <= 0:
                    self._op_counts.pop(id(op), None)
                else:
                    self._op_counts[id(op)] = n

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Tuple[Operation, CoarseRequirement]]:
        entries = [e for b in self._buckets.values() for e in b.entries]
        entries.sort(key=_stamp_key)
        return iter((e[1], e[2]) for e in entries)


class _FieldState:
    """Epoch indexes for one (region-tree root, field): Legion-style."""

    __slots__ = ("write_epoch", "read_epoch")

    def __init__(self, clock=_null_clock) -> None:
        self.write_epoch = _Epoch(clock)
        self.read_epoch = _Epoch(clock)


class CoarseAnalysis:
    """Incremental coarse-stage analysis (one instance per DCR context).

    ``analyze(op)`` assigns the op its program-order ``seq`` and returns the
    newly discovered dependences and fences.  The same object on every shard
    would compute the same result; we run it once and charge its cost to all
    shards in the simulator.
    """

    def __init__(self, num_shards: int,
                 profiler: Optional[Profiler] = None):
        self.num_shards = num_shards
        self.profiler = profiler if profiler is not None else get_profiler()
        self.result = CoarseResult()
        self._clock = self.result.fences.era_node
        self._state: Dict[Tuple[int, int], _FieldState] = {}

    # -- entry point -----------------------------------------------------------

    def analyze(self, op: Operation) -> Tuple[Set[Tuple[Operation, Operation]],
                                              List[Fence]]:
        if op.seq < 0:
            raise ValueError("pipeline must assign op.seq before analysis")
        prof = self.profiler
        profiling = prof.enabled
        if profiling:
            t0 = prof.now_us()
            scans0 = self.result.users_scanned
            elided0 = self.result.fences_elided
        self.result.ops_analyzed += 1

        dep_ops: Dict[Operation, List[Tuple[CoarseRequirement,
                                            CoarseRequirement]]] = {}
        for req in op.coarse_reqs:
            bound = req.bound_region()
            for fid in _sorted_fids(req):
                state = self._state.setdefault((bound.tree_id, fid),
                                               _FieldState(self._clock))
                self._scan(op, req, bound, state, dep_ops)
        for req in op.coarse_reqs:
            bound = req.bound_region()
            for fid in _sorted_fids(req):
                state = self._state[(bound.tree_id, fid)]
                self._update(op, req, bound, state)

        new_deps: Set[Tuple[Operation, Operation]] = set()
        new_fences: List[Fence] = []
        for prev, pairs in dep_ops.items():
            new_deps.add((prev, op))
            fence = self._fence_for(prev, op, pairs)
            if fence is None:
                self.result.fences_elided += 1
            else:
                new_fences.append(fence)
        # Dedupe fences at the same position with identical scope: one
        # all-gather at a position orders everything its scope covers, so
        # duplicates are the same physical fence.  The *deduped* list is
        # what gets returned (and therefore recorded by tracing), so replay
        # integration and PipelineStats count exactly the fences that exist.
        inserted = [f for f in new_fences if self.result.fences.add(f)]
        self.result.deps |= new_deps
        if profiling:
            self._profile_op(op, inserted, t0, scans0, elided0)
        return new_deps, inserted

    def _profile_op(self, op: Operation, fences: List[Fence], t0: float,
                    scans0: int, elided0: int) -> None:
        """Emit the coarse-group span and fence events (profiling only).

        The coarse stage runs identically on *every* shard (that is what
        makes its cost machine-size independent), so its span is charged to
        each shard's timeline, exactly as the simulator charges its cost.
        """
        prof = self.profiler
        dur = prof.now_us() - t0
        scans = self.result.users_scanned - scans0
        elided = self.result.fences_elided - elided0
        name = op.name or op.kind
        for shard in range(self.num_shards):
            prof.complete(shard, CAT_COARSE, EV_COARSE_GROUP, t0, dur,
                          op=name, seq=op.seq, scans=scans)
        for f in fences:
            region = f.region.name if f.region is not None else "<global>"
            prof.instant(CONTROL_SHARD, CAT_COARSE, EV_FENCE_INSERT,
                         at_seq=f.at_seq, region=region,
                         fields=len(f.fields))
            prof.metrics.count(f"coarse.fences.{region}")
        if elided:
            prof.instant(CONTROL_SHARD, CAT_COARSE, EV_FENCE_ELIDE,
                         op=name, seq=op.seq, count=elided)
        m = prof.metrics
        m.count("coarse.ops")
        m.count("coarse.scans", scans)
        m.count("coarse.fences_inserted", len(fences))
        m.count("coarse.fences_elided", elided)

    def register_replayed(self, op: Operation) -> None:
        """Fold a trace-replayed op into the epoch state without scanning.

        Replays skip the dependence scan (their structure comes from the
        recording), but their *effects on the epoch state* must still be
        applied — otherwise operations issued after the trace would compare
        against pre-trace state and miss dependences on replayed work.

        Any fences the replay rebinds land through :meth:`FenceStore.add`
        *before* this runs (pipeline order), so the era node the new epoch
        entries stamp already reflects them — label preservation across
        replay is a property of the spine (order never changes), not of
        this method.
        """
        self.result.ops_analyzed += 1
        for req in op.coarse_reqs:
            bound = req.bound_region()
            for fid in _sorted_fids(req):
                state = self._state.setdefault((bound.tree_id, fid),
                                               _FieldState(self._clock))
                self._update(op, req, bound, state)

    # -- scanning ------------------------------------------------------------------

    def _scan(self, op: Operation, req: CoarseRequirement,
              bound: LogicalRegion, state: _FieldState,
              dep_ops: Dict[Operation, List[Tuple[CoarseRequirement,
                                                  CoarseRequirement]]]) -> None:
        priv = req.privilege

        def check(epoch: _Epoch, reduce_only: bool = False) -> None:
            scanned, matched = epoch.match(op, req, bound,
                                           reduce_only=reduce_only)
            self.result.users_scanned += scanned
            for prev_op, prev_req in matched:
                dep_ops.setdefault(prev_op, []).append((prev_req, req))

        if priv.writes:
            check(state.read_epoch)
            check(state.write_epoch)
        elif priv.is_reduce:
            # Conflicts with writers and with different-op reducers/readers.
            check(state.read_epoch)
            check(state.write_epoch)
        else:  # reader
            check(state.write_epoch)
            # Readers also conflict with reducers parked in the read epoch.
            check(state.read_epoch, reduce_only=True)

    def _update(self, op: Operation, req: CoarseRequirement,
                bound: LogicalRegion, state: _FieldState) -> None:
        if req.privilege.writes:
            # New write epoch for the covered data: drop dominated users
            # (any future conflict with them is transitively ordered via op).
            state.read_epoch.retire_contained(bound)
            state.write_epoch.retire_contained(bound)
            state.write_epoch.add(op, req, bound)
        else:
            state.read_epoch.add(op, req, bound, unique=True)

    # -- fence insertion / elision ----------------------------------------------------

    def _fence_for(self, prev: Operation, op: Operation,
                   pairs: Sequence[Tuple[CoarseRequirement, CoarseRequirement]]
                   ) -> Optional[Fence]:
        if self.num_shards == 1:
            return None
        if self._provably_shard_local(prev, op, pairs):
            return None
        # Scope the fence to the least upper bound of the conflicting data.
        # Both sides of every pair must be covered: the fence orders the
        # *earlier* op's fine analysis (preq's data) against the later one's
        # (nreq's data), so a scope containing only the later bounds would
        # under-synchronize.  A dependence spanning region trees has no
        # common ancestor at all — only a global fence is sound there.
        preq, nreq = pairs[0]
        scope_region: Optional[LogicalRegion] = preq.bound_region()
        scope_fields: frozenset = frozenset()
        for preq, nreq in pairs:
            scope_fields |= (preq.fields | nreq.fields)
            if scope_region is None:
                continue
            for b in (preq.bound_region(), nreq.bound_region()):
                if b.tree_id != scope_region.tree_id:
                    scope_region = None
                    break
                if not _region_contains(scope_region, b):
                    # Fall back to the common root, always a sound scope
                    # within one tree.
                    scope_region = scope_region.root()
        return Fence(at_seq=op.seq, region=scope_region, fields=scope_fields)

    def _provably_shard_local(
        self, prev: Operation, op: Operation,
        pairs: Sequence[Tuple[CoarseRequirement, CoarseRequirement]]) -> bool:
        """The symbolic proof of §4.1 observation 2."""
        if not prev.is_group and not op.is_group:
            return prev.owner_shard % self.num_shards == \
                op.owner_shard % self.num_shards
        if not (prev.is_group and op.is_group):
            return False
        if prev.launch_domain != op.launch_domain:
            return False
        assert prev.sharding is not None and op.sharding is not None
        if prev.sharding.sid != op.sharding.sid:
            return False
        for preq, nreq in pairs:
            if not (isinstance(preq.upper, Partition)
                    and isinstance(nreq.upper, Partition)):
                return False
            if preq.upper.uid != nreq.upper.uid:
                return False
            if not preq.upper.disjoint:
                return False
            pproj = preq.projection.pid if preq.projection else 0
            nproj = nreq.projection.pid if nreq.projection else 0
            if pproj != nproj:
                return False
        return True
