"""Coarse-stage dependence analysis (paper §4.1, Fig. 9 top).

Every shard runs this stage over **all** operations, in program order.  The
stage discovers dependences at *task-group granularity* without enumerating
group points: each group is represented by its region-tree upper bound (the
partition named in the launch), and a field-epoch state machine per
(region tree, field) finds the prior operations a new one conflicts with.
Its cost is therefore independent of machine size — the property that makes
DCR scale.

For each discovered group-level dependence the stage decides whether a
*cross-shard fence* is needed (``requires_shard_fence`` in Fig. 9):

* trivially elided when only one shard exists, or when both operations are
  individual operations owned by the same shard (fine stages analyze their
  local stream in program order);
* **symbolically elided** for the common data-parallel case: two group
  launches over the same launch domain with the same sharding function where
  every conflicting requirement pair names the *same disjoint partition*
  through the *same projection function* — then every point-level dependence
  is provably shard-local (§4.1 observation 2);
* otherwise a fence scoped to the conflicting region and fields is inserted
  at the later operation's position, implemented at run time as a no-payload
  all-gather (§4.2).

Scaling note: the epoch lists are *bucketed* by (privilege, bound-region
uid) and every containment/alias decision is memoized (`repro.regions.
cache`), so a scan makes one cached decision per distinct bound instead of
one tree walk per entry; fences live in a :class:`FenceStore` whose per-tree
seq-sorted index answers :meth:`CoarseResult.covers_cross_edge` by binary
search instead of a walk over every fence.  The bucketed implementation is
*observationally identical* to the naive per-entry scan — same dependences
in the same order, same fences, same ``users_scanned`` counts — a property
pinned by the differential tests (tests/core/test_indexed_equivalence.py
against the reference implementations in tests/helpers.py).
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..obs.events import (CAT_COARSE, CONTROL_SHARD, EV_COARSE_GROUP,
                          EV_FENCE_ELIDE, EV_FENCE_INSERT)
from ..obs.profiler import Profiler, get_profiler
from ..regions import (LogicalRegion, Partition, cached_may_alias,
                       cached_region_contains)
from .operation import CoarseRequirement, Operation

__all__ = ["Fence", "FenceStore", "CoarseResult", "CoarseAnalysis"]


def _region_contains(outer: LogicalRegion, inner: LogicalRegion) -> bool:
    """True when ``outer`` provably covers every point of ``inner``."""
    return cached_region_contains(outer, inner)


@dataclass(frozen=True)
class Fence:
    """A scoped cross-shard fence inserted before operation ``at_seq``.

    Orders the fine-stage analysis of all prior operations touching
    ``region``/``fields`` (on every shard) before any later one.  A fence
    with ``region is None`` is a *global* analysis fence covering every
    region tree (used as the entry precondition of trace replays, and as
    the sound scope when one dependence spans multiple region trees).
    """

    at_seq: int
    region: Optional[LogicalRegion]
    fields: frozenset


# Sorts after every real (at_seq, tick, fence) triple with the same at_seq,
# so bisect_right((s, _AFTER)) finds the first entry with at_seq > s.
_AFTER = float("inf")


class FenceStore:
    """Deduplicated, insertion-ordered fence set with positional indexes.

    Presents the ``List[Fence]`` API the rest of the system grew up with
    (``append``/``extend``/``clear``/iteration/``len``/``==`` against
    lists), while maintaining:

    * a set for O(1) dedupe and membership (``add`` returns whether the
      fence was new — the pipeline's replay integration relies on this);
    * a seq-sorted list per region tree plus one for global fences, so a
      "is some fence in (earlier, later] that aliases this region?" query
      bisects to the candidate window instead of scanning every fence.

    Soundness of the index: a fence is immutable and its position never
    changes, so insertion-time bucketing is final.
    """

    __slots__ = ("_fences", "_set", "_by_tree", "_global", "_tick")

    def __init__(self, fences: Sequence[Fence] = ()) -> None:
        self._fences: List[Fence] = []
        self._set: Set[Fence] = set()
        # tree_id -> sorted [(at_seq, tick, fence)]; tick breaks seq ties.
        self._by_tree: Dict[int, List[Tuple[int, int, Fence]]] = {}
        self._global: List[int] = []          # sorted at_seqs of global fences
        self._tick = 0
        for f in fences:
            self.add(f)

    # -- mutation -----------------------------------------------------------------

    def add(self, fence: Fence) -> bool:
        """Insert unless an identical fence exists; True when inserted."""
        if fence in self._set:
            return False
        self._set.add(fence)
        self._fences.append(fence)
        if fence.region is None:
            insort(self._global, fence.at_seq)
        else:
            self._tick += 1
            insort(self._by_tree.setdefault(fence.region.tree_id, []),
                   (fence.at_seq, self._tick, fence))
        return True

    def append(self, fence: Fence) -> None:
        self.add(fence)

    def extend(self, fences: Sequence[Fence]) -> None:
        for f in fences:
            self.add(f)

    def clear(self) -> None:
        self._fences.clear()
        self._set.clear()
        self._by_tree.clear()
        self._global.clear()

    # -- queries ------------------------------------------------------------------

    def covers(self, earlier_seq: int, later_seq: int,
               region: LogicalRegion, fields: frozenset) -> bool:
        """Any fence in (earlier_seq, later_seq] whose scope orders the
        given data?  O(log F) bisects to the candidate window; global
        fences cover everything, scoped ones need a field overlap and a
        (memoized) alias with their region."""
        g = self._global
        if g and bisect_right(g, earlier_seq) < bisect_right(g, later_seq):
            return True
        entries = self._by_tree.get(region.tree_id)
        if not entries:
            return False
        lo = bisect_right(entries, (earlier_seq, _AFTER))
        hi = bisect_right(entries, (later_seq, _AFTER))
        for i in range(lo, hi):
            f = entries[i][2]
            if (f.fields & fields) and cached_may_alias(f.region, region):
                return True
        return False

    def positions(self) -> List[int]:
        return sorted({f.at_seq for f in self._fences})

    # -- list-compatible protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Fence]:
        return iter(self._fences)

    def __len__(self) -> int:
        return len(self._fences)

    def __bool__(self) -> bool:
        return bool(self._fences)

    def __contains__(self, fence: object) -> bool:
        return fence in self._set

    def __getitem__(self, index):
        return self._fences[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FenceStore):
            return self._fences == other._fences
        if isinstance(other, (list, tuple)):
            return self._fences == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover
        return f"FenceStore({self._fences!r})"


@dataclass
class CoarseResult:
    """Everything the coarse stage produced for one program."""

    deps: Set[Tuple[Operation, Operation]] = field(default_factory=set)
    fences: FenceStore = field(default_factory=FenceStore)
    fences_elided: int = 0
    users_scanned: int = 0          # pairwise upper-bound tests performed
    ops_analyzed: int = 0

    def fence_positions(self) -> List[int]:
        return sorted({f.at_seq for f in self.fences})

    def covers_cross_edge(self, earlier_seq: int, later_seq: int,
                          region: LogicalRegion, fields: frozenset) -> bool:
        """Is a cross-shard point dependence (earlier -> later) on the given
        data ordered by some fence?  A fence at position p orders all fine
        analysis of ops with seq < p before ops with seq >= p for data
        aliasing its scope (each shard's fine stage runs in program order and
        the fence is a global all-gather at position p).
        """
        return self.fences.covers(earlier_seq, later_seq, region, fields)


class _Epoch:
    """One epoch list, bucketed by (privilege, bound-region uid).

    Entries are (insertion index, op, requirement) triples.  All entries of
    a bucket share the decision inputs of the naive per-entry loop —
    privilege and bound region — so a scan makes *one* memoized
    conflict+alias decision per bucket and then emits the bucket's entries.
    Matches are re-sorted by insertion index so dependence pairs appear in
    exactly the order the naive scan would have produced them (the fence
    scope starts from ``pairs[0]``, so order is observable).
    """

    __slots__ = ("_buckets", "_members", "_op_counts", "_next", "_size")

    def __init__(self) -> None:
        # (privilege, bound uid) -> (bound region, [(idx, op, req), ...])
        self._buckets: Dict[Tuple, Tuple[LogicalRegion, List[Tuple]]] = {}
        self._members: Set[Tuple] = set()      # (id(op), req) for dedupe
        self._op_counts: Dict[int, int] = {}   # id(op) -> live entry count
        self._next = 0
        self._size = 0

    def add(self, op: Operation, req: CoarseRequirement,
            bound: LogicalRegion, unique: bool = False) -> None:
        key = (id(op), req)
        if unique and key in self._members:
            return
        self._members.add(key)
        bkey = (req.privilege, bound.uid)
        slot = self._buckets.get(bkey)
        if slot is None:
            slot = (bound, [])
            self._buckets[bkey] = slot
        slot[1].append((self._next, op, req))
        self._next += 1
        self._size += 1
        self._op_counts[id(op)] = self._op_counts.get(id(op), 0) + 1

    def match(self, op: Operation, privilege,
              bound: LogicalRegion, reduce_only: bool = False
              ) -> Tuple[int, List[Tuple]]:
        """(entries scanned, matches in insertion order) — exactly what the
        naive loop over (op, req) pairs reports for the same epoch."""
        if id(op) in self._op_counts:
            return self._match_with_self(op, privilege, bound, reduce_only)
        scanned = 0
        matched: List[Tuple] = []
        for (bpriv, _uid), (bregion, entries) in self._buckets.items():
            if reduce_only and not bpriv.is_reduce:
                continue
            scanned += len(entries)
            if not bpriv.conflicts_with(privilege):
                continue
            if not cached_may_alias(bregion, bound):
                continue
            matched.extend(entries)
        matched.sort()
        return scanned, [(e[1], e[2]) for e in matched]

    def _match_with_self(self, op, privilege, bound, reduce_only):
        """Slow path preserving the naive same-op skip semantics (the op
        under analysis is normally never in the epochs; this guards the
        invariant rather than assuming it)."""
        scanned = 0
        matched: List[Tuple] = []
        for (bpriv, _uid), (bregion, entries) in self._buckets.items():
            if reduce_only and not bpriv.is_reduce:
                continue
            live = [e for e in entries if e[1] is not op]
            scanned += len(live)
            if not bpriv.conflicts_with(privilege):
                continue
            if not cached_may_alias(bregion, bound):
                continue
            matched.extend(live)
        matched.sort()
        return scanned, [(e[1], e[2]) for e in matched]

    def retire_contained(self, bound: LogicalRegion) -> None:
        """Drop every entry whose bound region is covered by ``bound`` —
        the write-retirement rule, decided once per bucket."""
        doomed = [bkey for bkey, (bregion, _entries) in self._buckets.items()
                  if cached_region_contains(bound, bregion)]
        for bkey in doomed:
            _region, entries = self._buckets.pop(bkey)
            self._size -= len(entries)
            for _idx, op, req in entries:
                self._members.discard((id(op), req))
                n = self._op_counts.get(id(op), 0) - 1
                if n <= 0:
                    self._op_counts.pop(id(op), None)
                else:
                    self._op_counts[id(op)] = n

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Tuple[Operation, CoarseRequirement]]:
        entries = [e for _reg, es in self._buckets.values() for e in es]
        entries.sort()
        return iter((e[1], e[2]) for e in entries)


class _FieldState:
    """Epoch indexes for one (region-tree root, field): Legion-style."""

    __slots__ = ("write_epoch", "read_epoch")

    def __init__(self) -> None:
        self.write_epoch = _Epoch()
        self.read_epoch = _Epoch()


class CoarseAnalysis:
    """Incremental coarse-stage analysis (one instance per DCR context).

    ``analyze(op)`` assigns the op its program-order ``seq`` and returns the
    newly discovered dependences and fences.  The same object on every shard
    would compute the same result; we run it once and charge its cost to all
    shards in the simulator.
    """

    def __init__(self, num_shards: int,
                 profiler: Optional[Profiler] = None):
        self.num_shards = num_shards
        self.profiler = profiler if profiler is not None else get_profiler()
        self.result = CoarseResult()
        self._state: Dict[Tuple[int, int], _FieldState] = {}

    # -- entry point -----------------------------------------------------------

    def analyze(self, op: Operation) -> Tuple[Set[Tuple[Operation, Operation]],
                                              List[Fence]]:
        if op.seq < 0:
            raise ValueError("pipeline must assign op.seq before analysis")
        prof = self.profiler
        profiling = prof.enabled
        if profiling:
            t0 = prof.now_us()
            scans0 = self.result.users_scanned
            elided0 = self.result.fences_elided
        self.result.ops_analyzed += 1

        dep_ops: Dict[Operation, List[Tuple[CoarseRequirement,
                                            CoarseRequirement]]] = {}
        for req in op.coarse_reqs:
            bound = req.bound_region()
            for fid in sorted(f.fid for f in req.fields):
                state = self._state.setdefault((bound.tree_id, fid),
                                               _FieldState())
                self._scan(op, req, bound, state, dep_ops)
        for req in op.coarse_reqs:
            bound = req.bound_region()
            for fid in sorted(f.fid for f in req.fields):
                state = self._state[(bound.tree_id, fid)]
                self._update(op, req, bound, state)

        new_deps: Set[Tuple[Operation, Operation]] = set()
        new_fences: List[Fence] = []
        for prev, pairs in dep_ops.items():
            new_deps.add((prev, op))
            fence = self._fence_for(prev, op, pairs)
            if fence is None:
                self.result.fences_elided += 1
            else:
                new_fences.append(fence)
        # Dedupe fences at the same position with identical scope: one
        # all-gather at a position orders everything its scope covers, so
        # duplicates are the same physical fence.  The *deduped* list is
        # what gets returned (and therefore recorded by tracing), so replay
        # integration and PipelineStats count exactly the fences that exist.
        inserted = [f for f in new_fences if self.result.fences.add(f)]
        self.result.deps |= new_deps
        if profiling:
            self._profile_op(op, inserted, t0, scans0, elided0)
        return new_deps, inserted

    def _profile_op(self, op: Operation, fences: List[Fence], t0: float,
                    scans0: int, elided0: int) -> None:
        """Emit the coarse-group span and fence events (profiling only).

        The coarse stage runs identically on *every* shard (that is what
        makes its cost machine-size independent), so its span is charged to
        each shard's timeline, exactly as the simulator charges its cost.
        """
        prof = self.profiler
        dur = prof.now_us() - t0
        scans = self.result.users_scanned - scans0
        elided = self.result.fences_elided - elided0
        name = op.name or op.kind
        for shard in range(self.num_shards):
            prof.complete(shard, CAT_COARSE, EV_COARSE_GROUP, t0, dur,
                          op=name, seq=op.seq, scans=scans)
        for f in fences:
            region = f.region.name if f.region is not None else "<global>"
            prof.instant(CONTROL_SHARD, CAT_COARSE, EV_FENCE_INSERT,
                         at_seq=f.at_seq, region=region,
                         fields=len(f.fields))
            prof.metrics.count(f"coarse.fences.{region}")
        if elided:
            prof.instant(CONTROL_SHARD, CAT_COARSE, EV_FENCE_ELIDE,
                         op=name, seq=op.seq, count=elided)
        m = prof.metrics
        m.count("coarse.ops")
        m.count("coarse.scans", scans)
        m.count("coarse.fences_inserted", len(fences))
        m.count("coarse.fences_elided", elided)

    def register_replayed(self, op: Operation) -> None:
        """Fold a trace-replayed op into the epoch state without scanning.

        Replays skip the dependence scan (their structure comes from the
        recording), but their *effects on the epoch state* must still be
        applied — otherwise operations issued after the trace would compare
        against pre-trace state and miss dependences on replayed work.
        """
        self.result.ops_analyzed += 1
        for req in op.coarse_reqs:
            bound = req.bound_region()
            for fid in sorted(f.fid for f in req.fields):
                state = self._state.setdefault((bound.tree_id, fid),
                                               _FieldState())
                self._update(op, req, bound, state)

    # -- scanning ------------------------------------------------------------------

    def _scan(self, op: Operation, req: CoarseRequirement,
              bound: LogicalRegion, state: _FieldState,
              dep_ops: Dict[Operation, List[Tuple[CoarseRequirement,
                                                  CoarseRequirement]]]) -> None:
        priv = req.privilege

        def check(epoch: _Epoch, reduce_only: bool = False) -> None:
            scanned, matched = epoch.match(op, priv, bound,
                                           reduce_only=reduce_only)
            self.result.users_scanned += scanned
            for prev_op, prev_req in matched:
                dep_ops.setdefault(prev_op, []).append((prev_req, req))

        if priv.writes:
            check(state.read_epoch)
            check(state.write_epoch)
        elif priv.is_reduce:
            # Conflicts with writers and with different-op reducers/readers.
            check(state.read_epoch)
            check(state.write_epoch)
        else:  # reader
            check(state.write_epoch)
            # Readers also conflict with reducers parked in the read epoch.
            check(state.read_epoch, reduce_only=True)

    def _update(self, op: Operation, req: CoarseRequirement,
                bound: LogicalRegion, state: _FieldState) -> None:
        if req.privilege.writes:
            # New write epoch for the covered data: drop dominated users
            # (any future conflict with them is transitively ordered via op).
            state.read_epoch.retire_contained(bound)
            state.write_epoch.retire_contained(bound)
            state.write_epoch.add(op, req, bound)
        else:
            state.read_epoch.add(op, req, bound, unique=True)

    # -- fence insertion / elision ----------------------------------------------------

    def _fence_for(self, prev: Operation, op: Operation,
                   pairs: Sequence[Tuple[CoarseRequirement, CoarseRequirement]]
                   ) -> Optional[Fence]:
        if self.num_shards == 1:
            return None
        if self._provably_shard_local(prev, op, pairs):
            return None
        # Scope the fence to the least upper bound of the conflicting data.
        # Both sides of every pair must be covered: the fence orders the
        # *earlier* op's fine analysis (preq's data) against the later one's
        # (nreq's data), so a scope containing only the later bounds would
        # under-synchronize.  A dependence spanning region trees has no
        # common ancestor at all — only a global fence is sound there.
        preq, nreq = pairs[0]
        scope_region: Optional[LogicalRegion] = preq.bound_region()
        scope_fields: frozenset = frozenset()
        for preq, nreq in pairs:
            scope_fields |= (preq.fields | nreq.fields)
            if scope_region is None:
                continue
            for b in (preq.bound_region(), nreq.bound_region()):
                if b.tree_id != scope_region.tree_id:
                    scope_region = None
                    break
                if not _region_contains(scope_region, b):
                    # Fall back to the common root, always a sound scope
                    # within one tree.
                    scope_region = scope_region.root()
        return Fence(at_seq=op.seq, region=scope_region, fields=scope_fields)

    def _provably_shard_local(
        self, prev: Operation, op: Operation,
        pairs: Sequence[Tuple[CoarseRequirement, CoarseRequirement]]) -> bool:
        """The symbolic proof of §4.1 observation 2."""
        if not prev.is_group and not op.is_group:
            return prev.owner_shard % self.num_shards == \
                op.owner_shard % self.num_shards
        if not (prev.is_group and op.is_group):
            return False
        if prev.launch_domain != op.launch_domain:
            return False
        assert prev.sharding is not None and op.sharding is not None
        if prev.sharding.sid != op.sharding.sid:
            return False
        for preq, nreq in pairs:
            if not (isinstance(preq.upper, Partition)
                    and isinstance(nreq.upper, Partition)):
                return False
            if preq.upper.uid != nreq.upper.uid:
                return False
            if not preq.upper.disjoint:
                return False
            pproj = preq.projection.pid if preq.projection else 0
            nproj = nreq.projection.pid if nreq.projection else 0
            if pproj != nproj:
                return False
        return True
