"""Trace capture and replay: memoized dependence analysis.

Legion's dynamic tracing (Lee et al., "Dynamic Tracing: Memoization of Task
Graphs for Dynamic Task-based Runtimes", SC'18) lets the runtime skip the
dependence analysis for a repeated fragment of the operation stream — e.g.
the body of a time-step loop — by recording the analysis products on first
execution and replaying them on subsequent, *signature-identical*
executions.  Fig. 21 of the DCR paper evaluates the interaction of tracing
with the control-determinism checks; `repro.models.dcr` charges a much
smaller per-op cost for replayed operations.

Replay is sound under two conditions, both enforced here:

* the replayed stream must match the recording operation-for-operation
  (kind, launch domain, sharding/projection functions, partitions, fields,
  privileges) — checked via signatures, raising :class:`TraceMismatch`;
* dependences that leave the trace (into operations issued before it) are
  not recorded; instead the replay's first operation carries a *global
  entry fence* ordering everything prior — strictly conservative, exactly
  like Legion's trace preconditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from .coarse import Fence
from .operation import Operation, PointTask

__all__ = ["TraceMismatch", "TraceCache"]


class TraceMismatch(RuntimeError):
    """The replayed operation stream diverged from the recording."""


def _op_signature(op: Operation) -> Tuple:
    from ..regions import Partition

    reqs = tuple(
        (
            cr.upper.uid,
            isinstance(cr.upper, Partition),
            tuple(sorted(f.fid for f in cr.fields)),
            cr.privilege.kind.value,
            cr.privilege.redop,
            cr.projection.pid if cr.projection else 0,
        )
        for cr in op.coarse_reqs
    )
    return (
        op.kind,
        op.launch_domain,
        op.sharding.sid if op.sharding else None,
        op.owner_shard if not op.is_group else None,
        reqs,
    )


@dataclass
class _TraceEntry:
    """Recorded analysis products for one op of the trace, as templates."""

    signature: Tuple
    fence_scopes: List[Tuple[object, frozenset]] = field(default_factory=list)
    # (source op offset within trace, source point, destination point)
    internal_edges: List[Tuple[int, Hashable, Hashable]] = field(default_factory=list)
    coarse_dep_offsets: List[int] = field(default_factory=list)


@dataclass
class _Recording:
    entries: List[_TraceEntry] = field(default_factory=list)


class TraceCache:
    """Per-pipeline store of trace recordings with record/replay state."""

    IDLE, RECORDING, REPLAYING = "idle", "recording", "replaying"

    def __init__(self) -> None:
        self._traces: Dict[int, _Recording] = {}
        self._state = self.IDLE
        self._tid: Optional[int] = None
        self._index = 0
        self._rec_ops: List[Operation] = []
        self._rec_tasks: Dict[Tuple[int, Hashable], PointTask] = {}
        self._replay_ops: List[Operation] = []
        self._replay_tasks: Dict[Tuple[int, Hashable], PointTask] = {}
        self._replay_edges: Dict[int, List[Tuple[PointTask, PointTask]]] = {}
        self.replays = 0
        self.recordings = 0

    # -- control ------------------------------------------------------------------

    def begin(self, trace_id: int) -> bool:
        """Enter record or replay mode; True when a replay will be served."""
        if self._state != self.IDLE:
            raise RuntimeError("traces do not nest")
        self._tid = trace_id
        self._index = 0
        if trace_id in self._traces:
            self._state = self.REPLAYING
            self._replay_ops = []
            self._replay_tasks = {}
            self._replay_edges = {}
            self.replays += 1
            return True
        self._state = self.RECORDING
        self._traces[trace_id] = _Recording()
        self._rec_ops = []
        self._rec_tasks = {}
        self.recordings += 1
        return False

    def end(self) -> None:
        if self._state == self.REPLAYING:
            rec = self._traces[self._tid]  # type: ignore[index]
            if self._index != len(rec.entries):
                raise TraceMismatch(
                    f"trace {self._tid} replay ended after {self._index} of "
                    f"{len(rec.entries)} operations")
        self._state = self.IDLE
        self._tid = None

    @property
    def active(self) -> str:
        return self._state

    # -- recording ------------------------------------------------------------------

    def observe(self, record) -> None:
        """Called by the pipeline for every freshly analyzed op record."""
        if self._state != self.RECORDING:
            return
        op = record.op
        offset_of = {id(o): i for i, o in enumerate(self._rec_ops)}
        entry = _TraceEntry(signature=_op_signature(op))
        for f in record.fences:
            entry.fence_scopes.append((f.region, f.fields))
        for prev, nxt in self._iter_in_edges(record):
            src = offset_of.get(id(prev.op))
            if src is None:
                continue  # external edge: covered by the replay entry fence
            entry.internal_edges.append((src, prev.point, nxt.point))
        for (prev_op, _op) in record.coarse_deps:
            src = offset_of.get(id(prev_op))
            if src is not None:
                entry.coarse_dep_offsets.append(src)
        self._traces[self._tid].entries.append(entry)  # type: ignore[index]
        for t in record.point_tasks:
            self._rec_tasks[(len(self._rec_ops), t.point)] = t
        self._rec_ops.append(op)
        self._index += 1

    @staticmethod
    def _iter_in_edges(record):
        """Precise in-edges of this record's point tasks.

        The fine stage computed them during ``analyze``; they are exactly the
        graph dependences whose destination belongs to this record.
        """
        dests: Set[PointTask] = set(record.point_tasks)
        # record.point_tasks were just analyzed; their in-edges are the graph
        # edges added during that analysis.  The pipeline stores them on the
        # record lazily via this attribute when tracing is active.
        for edge in getattr(record, "in_edges", ()):  # set by pipeline
            if edge[1] in dests:
                yield edge

    # -- replay -------------------------------------------------------------------------

    def try_replay(self, op: Operation, seq: int, num_shards: int):
        """Serve one op from the active replay, or return None."""
        if self._state != self.REPLAYING:
            return None
        from .pipeline import OpRecord  # local import avoids a cycle

        rec = self._traces[self._tid]  # type: ignore[index]
        if self._index >= len(rec.entries):
            raise TraceMismatch(
                f"trace {self._tid} replay received more operations than "
                f"were recorded ({len(rec.entries)})")
        entry = rec.entries[self._index]
        if entry.signature != _op_signature(op):
            raise TraceMismatch(
                f"trace {self._tid} op #{self._index} signature mismatch: "
                f"{op.name} does not match the recording")
        op.seq = seq
        point_tasks = [
            PointTask(op, p, op.shard_of(p, num_shards)) for p in op.points()]
        offset = len(self._replay_ops)
        for t in point_tasks:
            self._replay_tasks[(offset, t.point)] = t
        fences: List[Fence] = []
        if offset == 0:
            # Global entry fence: orders everything before the trace.
            fences.append(Fence(at_seq=seq, region=None,
                                fields=frozenset()))
        for scope_region, scope_fields in entry.fence_scopes:
            fences.append(Fence(at_seq=seq, region=scope_region,
                                fields=scope_fields))
        edges: List[Tuple[PointTask, PointTask]] = []
        by_point = {t.point: t for t in point_tasks}
        for src_off, src_point, dst_point in entry.internal_edges:
            src = self._replay_tasks.get((src_off, src_point))
            dst = by_point.get(dst_point)
            if src is not None and dst is not None:
                edges.append((src, dst))
        coarse_deps = {
            (self._replay_ops[off], op) for off in entry.coarse_dep_offsets
            if off < len(self._replay_ops)
        }
        self._replay_ops.append(op)
        record = OpRecord(
            op=op, coarse_deps=coarse_deps, fences=fences,
            point_tasks=point_tasks, coarse_scans=0, traced=True)
        self._replay_edges[id(record)] = edges
        self._index += 1
        return record

    def internal_edges_for(self, record) -> List[Tuple[PointTask, PointTask]]:
        return self._replay_edges.get(id(record), [])
